"""E8: class-hierarchy granularity locking [GARZ88].

Two claims: (a) a class-wide operation under granular locking takes one
class lock instead of N object locks; (b) intention modes still allow
object-level writers to run concurrently.  Lock-acquisition counts and
conflict outcomes are reported alongside wall-clock costs.
"""

import threading
import time

import pytest
from conftest import emit_bench_artifact, print_table, timed

from repro import AttributeDef, Database
from repro.errors import LockTimeoutError
from repro.txn.locks import IX, S, X, LockManager, class_resource, object_resource

N_OBJECTS = 2000


@pytest.fixture(scope="module")
def part_db():
    db = Database()
    db.define_class("Part", attributes=[AttributeDef("n", "Integer")])
    oids = [db.new("Part", {"n": position}).oid for position in range(N_OBJECTS)]
    return db, oids


def class_level_scan(locks, oids, txn_id):
    locks.acquire(txn_id, ("database", None), "IS")
    locks.acquire(txn_id, class_resource("Part"), S)
    locks.release_all(txn_id)


def object_level_scan(locks, oids, txn_id):
    locks.acquire(txn_id, ("database", None), "IS")
    locks.acquire(txn_id, class_resource("Part"), "IS")
    for oid in oids:
        locks.acquire(txn_id, object_resource(oid), S)
    locks.release_all(txn_id)


def test_class_granularity_scan_locking(part_db, benchmark):
    _db, oids = part_db
    locks = LockManager()
    benchmark(lambda: class_level_scan(locks, oids, 1))


def test_object_granularity_scan_locking(part_db, benchmark):
    _db, oids = part_db
    locks = LockManager()
    benchmark(lambda: object_level_scan(locks, oids, 1))


def test_lock_count_summary(part_db):
    _db, oids = part_db
    coarse = LockManager()
    t_coarse, _ = timed(class_level_scan, coarse, oids, 1)
    fine = LockManager()
    t_fine, _ = timed(object_level_scan, fine, oids, 1)
    print_table(
        "E8a: locks acquired for a %d-object class scan" % N_OBJECTS,
        ("granularity", "acquisitions", "ms"),
        [
            ("class-level (S on class)", coarse.stats.acquisitions, round(t_coarse * 1e3, 3)),
            ("object-level (S per object)", fine.stats.acquisitions, round(t_fine * 1e3, 3)),
        ],
    )
    assert coarse.stats.acquisitions == 2
    assert fine.stats.acquisitions == N_OBJECTS + 2
    assert t_coarse < t_fine


def test_intention_modes_allow_concurrent_writers(part_db):
    """Two object writers coexist (IX at class); a class scanner blocks."""
    _db, oids = part_db
    locks = LockManager()
    locks.acquire(1, class_resource("Part"), IX)
    locks.acquire(1, object_resource(oids[0]), X)
    locks.acquire(2, class_resource("Part"), IX)  # compatible with IX
    locks.acquire(2, object_resource(oids[1]), X)
    with pytest.raises(LockTimeoutError):
        locks.acquire(3, class_resource("Part"), S, timeout=0.05)
    locks.release_all(1)
    locks.release_all(2)
    locks.acquire(3, class_resource("Part"), S)  # now grantable
    locks.release_all(3)


def test_lock_escalation_bounds_lock_table(part_db):
    """Ablation: a txn touching many objects escalates to one class lock."""
    db, oids = part_db
    db.lock_escalation_threshold = 64
    try:
        with db.transaction() as txn:
            for oid in oids[:500]:
                db.update(oid, {"n": 1})
            held = db.locks.locks_held(txn.txn_id)
            object_locks = sum(1 for resource, _m in held if resource[0] == "object")
            assert db.locks.holds(txn.txn_id, class_resource("Part"), X)
            assert object_locks < 500
            print_table(
                "E8b: lock escalation (threshold 64, 500 object writes)",
                ("metric", "value"),
                [
                    ("object locks held", object_locks),
                    ("class lock", "X (escalated)"),
                    ("total locks", len(held)),
                ],
            )
            txn.abort()
    finally:
        db.lock_escalation_threshold = 256


def test_concurrent_object_writers_throughput(part_db):
    """Disjoint writers under hierarchy locking never conflict."""
    db, oids = part_db
    errors = []
    done = []

    def worker(start):
        try:
            with db.transaction():
                for position in range(start, start + 50):
                    db.update(oids[position], {"n": position * 10})
            done.append(start)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(s,)) for s in (0, 50, 100, 150)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors
    assert len(done) == 4
    assert db.locks.lock_count() == 0


def test_wait_event_profile_artifact(part_db):
    """E8c: wait-event export — a real conflict lands in SysWaitEvent.

    A writer holds X on one object while a reader blocks on it; the
    profiled Lock wait (with blocker/blockee txn ids) is queried back
    through the SysWaitEvent system view and exported as a bench
    artifact alongside the engine metric snapshot.
    """
    db, oids = part_db
    writer = db.txns.begin()
    db.update(oids[0], {"n": -1})
    started = threading.Event()

    def blocked_reader():
        with db.transaction():
            started.set()
            db.get_state(oids[0])  # blocks until the writer commits

    thread = threading.Thread(target=blocked_reader)
    thread.start()
    started.wait()
    time.sleep(0.05)
    writer.commit()
    thread.join(timeout=30)

    rows = db.select(
        "SysWaitEvent where kind = 'Lock' order by total_wait desc limit 10"
    )
    assert rows and rows[0]["total_wait"] > 0
    assert rows[0]["last_blocker"] == writer.txn_id
    print_table(
        "E8c: top wait events",
        ("kind", "target", "count", "total_wait"),
        [
            (row["kind"], row["target"], row["count"], round(row["total_wait"], 4))
            for row in rows
        ],
    )
    emit_bench_artifact(
        "e8_lock_waits",
        {
            "wait_events": rows,
            "recent": [event.to_dict() for event in db.waits.recent(16)],
        },
        db=db,
    )


def test_snapshot_readers_scan_lock_free(part_db):
    """E8d: MVCC snapshot readers take zero scan locks and never block.

    While a writer holds X on an object (IX on the class), a lock-based
    class scan would block behind the intention lock; the snapshot
    reader instead resolves the locked row through its before-image —
    zero lock acquisitions, verified against both the lock-manager
    counters and the SysLock view.
    """
    db, oids = part_db
    writer = db.txns.begin()
    db.update(oids[0], {"n": -777})
    try:
        acquisitions_before = db.locks.stats.acquisitions
        waits_before = db.locks.stats.blocks
        t_read, result = timed(db.execute, "Part where n > -100")
        assert len(result) >= N_OBJECTS - 1
        assert db.locks.stats.acquisitions == acquisitions_before
        assert db.locks.stats.blocks == waits_before
        # Every lock in the table belongs to the writer; the reader
        # left no footprint.
        lock_rows = db.select("SysLock")
        assert lock_rows and all(
            row["txn"] == writer.txn_id for row in lock_rows
        )
        snapshot_reads = db.metrics.counter("txn.snapshot.reads").value
        print_table(
            "E8d: snapshot scan vs writer holding X",
            ("metric", "value"),
            [
                ("rows read", len(result)),
                ("reader lock acquisitions", 0),
                ("reader lock waits", 0),
                ("snapshot resolves", snapshot_reads),
                ("scan ms", round(t_read * 1e3, 3)),
            ],
        )
    finally:
        writer.abort()
    emit_bench_artifact(
        "e8_snapshot_reads",
        {
            "rows_read": len(result),
            "reader_lock_acquisitions": 0,
            "locks_held_by_writer": len(lock_rows),
        },
        db=db,
    )
