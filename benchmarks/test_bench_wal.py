"""E13: durability cost and recovery correctness.

Commit throughput across durability settings (in-memory log, file log
without fsync, file log with fsync-on-commit), plus a measured crash
recovery replaying committed work and discarding losers.
"""

import os

import pytest
from conftest import print_table, timed

from repro import AttributeDef, Database

BATCH = 100


def insert_batch(db, count=BATCH, offset=0):
    with db.transaction():
        for position in range(count):
            db.new("Entry", {"n": offset + position})


def make_db(tmp_path, name, sync):
    path = str(tmp_path / name) if name else None
    db = Database(path, sync_on_commit=sync)
    db.define_class("Entry", attributes=[AttributeDef("n", "Integer")])
    return db


def test_commit_memory_log(tmp_path, benchmark):
    db = make_db(tmp_path, None, sync=False)
    counter = [0]

    def run():
        insert_batch(db, offset=counter[0])
        counter[0] += BATCH

    benchmark(run)


def test_commit_file_log_nosync(tmp_path, benchmark):
    db = make_db(tmp_path, "nosync.pages", sync=False)
    counter = [0]

    def run():
        insert_batch(db, offset=counter[0])
        counter[0] += BATCH

    benchmark(run)
    db.close()


def test_commit_file_log_fsync(tmp_path, benchmark):
    db = make_db(tmp_path, "sync.pages", sync=True)
    counter = [0]

    def run():
        insert_batch(db, offset=counter[0])
        counter[0] += BATCH

    benchmark(run)
    db.close()


def test_durability_cost_summary(tmp_path):
    rows = []
    times = {}
    for label, name, sync in (
        ("memory log", None, False),
        ("file log, no fsync", "a.pages", False),
        ("file log, fsync on commit", "b.pages", True),
    ):
        db = make_db(tmp_path, name, sync)
        t, _ = timed(lambda: [insert_batch(db, 20, offset=i * 20) for i in range(5)])
        times[label] = t
        rows.append((label, round(t * 1e3, 2)))
        if name:
            db.close()
    print_table("E13a: 5 transactions x 20 inserts", ("configuration", "ms"), rows)
    assert times["memory log"] <= times["file log, fsync on commit"] * 1.5


def test_recovery_time_and_correctness(tmp_path):
    path = str(tmp_path / "crashme.pages")
    db = Database(path, sync_on_commit=False)
    db.define_class("Entry", attributes=[AttributeDef("n", "Integer")])
    db.checkpoint()
    for batch in range(5):
        insert_batch(db, 50, offset=batch * 50)
    committed = db.count("Entry")
    txn = db.transaction()
    for position in range(25):
        db.new("Entry", {"n": 10_000 + position})
    # Crash with an open transaction: close files without checkpoint.
    db.storage.buffer.flush_all()
    db.storage.save_metadata()
    db.storage.pager.close()
    db.wal.close()
    del txn

    t_recover, reopened = timed(Database, path)
    survived = reopened.count("Entry")
    print_table(
        "E13b: crash recovery",
        ("metric", "value"),
        [
            ("committed before crash", committed),
            ("uncommitted in-flight", 25),
            ("entries after recovery", survived),
            ("recovery ms", round(t_recover * 1e3, 1)),
            ("wal bytes", os.path.getsize(path + ".wal")),
        ],
    )
    assert survived == committed
    reopened.close()
