"""E13: durability cost and recovery correctness.

Commit throughput across durability settings (in-memory log, file log
without fsync, file log with fsync-on-commit), plus a measured crash
recovery replaying committed work and discarding losers.  The group
commit comparison measures fsyncs and WALSync waits per commit when
concurrent committers share one covering sync.
"""

import os
import threading

import pytest
from conftest import print_table, timed

from repro import AttributeDef, Database

BATCH = 100


def insert_batch(db, count=BATCH, offset=0):
    with db.transaction():
        for position in range(count):
            db.new("Entry", {"n": offset + position})


def make_db(tmp_path, name, sync):
    path = str(tmp_path / name) if name else None
    db = Database(path, sync_on_commit=sync)
    db.define_class("Entry", attributes=[AttributeDef("n", "Integer")])
    return db


def test_commit_memory_log(tmp_path, benchmark):
    db = make_db(tmp_path, None, sync=False)
    counter = [0]

    def run():
        insert_batch(db, offset=counter[0])
        counter[0] += BATCH

    benchmark(run)


def test_commit_file_log_nosync(tmp_path, benchmark):
    db = make_db(tmp_path, "nosync.pages", sync=False)
    counter = [0]

    def run():
        insert_batch(db, offset=counter[0])
        counter[0] += BATCH

    benchmark(run)
    db.close()


def test_commit_file_log_fsync(tmp_path, benchmark):
    db = make_db(tmp_path, "sync.pages", sync=True)
    counter = [0]

    def run():
        insert_batch(db, offset=counter[0])
        counter[0] += BATCH

    benchmark(run)
    db.close()


def test_durability_cost_summary(tmp_path):
    rows = []
    times = {}
    for label, name, sync in (
        ("memory log", None, False),
        ("file log, no fsync", "a.pages", False),
        ("file log, fsync on commit", "b.pages", True),
    ):
        db = make_db(tmp_path, name, sync)
        t, _ = timed(lambda: [insert_batch(db, 20, offset=i * 20) for i in range(5)])
        times[label] = t
        rows.append((label, round(t * 1e3, 2)))
        if name:
            db.close()
    print_table("E13a: 5 transactions x 20 inserts", ("configuration", "ms"), rows)
    assert times["memory log"] <= times["file log, fsync on commit"] * 1.5


def _concurrent_commits(db, n_threads, txns_per_thread):
    def worker(base):
        for i in range(txns_per_thread):
            db.new("Entry", {"n": base + i})

    threads = [
        threading.Thread(target=worker, args=(t * txns_per_thread,))
        for t in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)


def test_group_commit_shares_fsyncs(tmp_path):
    """E13c: group commit — concurrent committers share WAL syncs.

    With group commit off, N durable commits cost N fsyncs and N WALSync
    waits; with it on, one leader's fsync covers every commit whose
    record it flushed, so syncs per commit drop below 1 under load.
    """
    results = {}
    for label, group in (("per-commit fsync", False), ("group commit", True)):
        db = Database(
            str(tmp_path / ("gc-%s.pages" % group)), group_commit=group
        )
        db.define_class("Entry", attributes=[AttributeDef("n", "Integer")])
        syncs0 = db.metrics.counter("wal.syncs").value
        t, _ = timed(_concurrent_commits, db, 8, 12)
        commits = 8 * 12
        syncs = db.metrics.counter("wal.syncs").value - syncs0
        wal_waits = [
            row
            for row in db.select("SysWaitEvent where kind = 'WALSync'")
        ]
        sync_waits = sum(row["count"] for row in wal_waits)
        batches = db.metrics.counter("wal.group_commit.batches").value
        results[label] = {
            "seconds": t,
            "syncs": syncs,
            "sync_waits": sync_waits,
            "batches": batches,
            "syncs_per_commit": syncs / commits,
        }
        assert db.count("Entry") == commits
        db.close()
    print_table(
        "E13c: 8 threads x 12 durable commits",
        ("configuration", "fsyncs", "WALSync waits", "batches", "syncs/commit", "ms"),
        [
            (
                label,
                r["syncs"],
                r["sync_waits"],
                r["batches"],
                round(r["syncs_per_commit"], 3),
                round(r["seconds"] * 1e3, 1),
            )
            for label, r in results.items()
        ],
    )
    # Group commit must collapse fsyncs (and the waits they cause)
    # below one per commit; per-commit mode pays one each.
    assert results["per-commit fsync"]["syncs"] >= 96
    assert results["group commit"]["syncs"] < results["per-commit fsync"]["syncs"]
    assert results["group commit"]["batches"] >= 1


def test_recovery_time_and_correctness(tmp_path):
    path = str(tmp_path / "crashme.pages")
    db = Database(path, sync_on_commit=False)
    db.define_class("Entry", attributes=[AttributeDef("n", "Integer")])
    db.checkpoint()
    for batch in range(5):
        insert_batch(db, 50, offset=batch * 50)
    committed = db.count("Entry")
    txn = db.transaction()
    for position in range(25):
        db.new("Entry", {"n": 10_000 + position})
    # Crash with an open transaction: close files without checkpoint.
    db.storage.buffer.flush_all()
    db.storage.save_metadata()
    db.storage.pager.close()
    db.wal.close()
    del txn

    t_recover, reopened = timed(Database, path)
    survived = reopened.count("Entry")
    print_table(
        "E13b: crash recovery",
        ("metric", "value"),
        [
            ("committed before crash", committed),
            ("uncommitted in-flight", 25),
            ("entries after recovery", survived),
            ("recovery ms", round(t_recover * 1e3, 1)),
            ("wal bytes", os.path.getsize(path + ".wal")),
        ],
    )
    assert survived == committed
    reopened.close()
