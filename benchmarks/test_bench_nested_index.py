"""E3: nested-attribute index vs. naive nested-predicate evaluation.

Section 3.2: a query with a predicate on a nested attribute
(Vehicle.manufacturer.location) either walks the aggregation hierarchy
per candidate (fetching the referenced company each time) or probes a
nested-attribute index that maps terminal keys straight to vehicle OIDs
[BERT89].  The maintenance cost the index trades for that speed is also
measured (intermediate-object updates).
"""

import pytest
from conftest import print_table, timed

from repro import Database
from repro.bench.schemas import build_vehicle_schema, populate_vehicles

QUERY = "SELECT v FROM Vehicle v WHERE v.manufacturer.location = 'Detroit'"


@pytest.fixture(scope="module")
def setup():
    db = Database()
    build_vehicle_schema(db)
    oids = populate_vehicles(db, n_vehicles=4000, n_companies=40, seed=3)
    return db, oids


def test_naive_nested_evaluation(setup, benchmark):
    db, _oids = setup
    assert "scan" in db.plan(QUERY).access.description
    result = benchmark(lambda: db.select(QUERY))
    assert result


def test_nested_index_evaluation(setup, benchmark):
    db, _oids = setup
    expected = [h.oid for h in db.select(QUERY)]
    if not db.indexes.names():
        db.create_nested_index("Vehicle", ["manufacturer", "location"])
    assert "nx_" in db.plan(QUERY).access.description
    result = benchmark(lambda: db.select(QUERY))
    assert [h.oid for h in result] == expected


def test_speedup_and_maintenance_summary(setup):
    db, oids = setup
    if "nx_Vehicle_manufacturer_location" in db.indexes.names():
        db.indexes.drop_index("nx_Vehicle_manufacturer_location")
    t_naive, naive_result = timed(db.select, QUERY)
    index = db.create_nested_index("Vehicle", ["manufacturer", "location"])
    t_indexed, indexed_result = timed(db.select, QUERY)
    assert [h.oid for h in naive_result] == [h.oid for h in indexed_result]

    # Maintenance: updating an intermediate (a company's location) must
    # recompute the keys of all dependent vehicles.
    company = oids["Company"][0]
    index.stats.reset()
    t_maint, _ = timed(db.update, company, {"location": "Flint"})
    recomputed = index.stats.recomputes
    db.update(company, {"location": "Detroit"})  # restore

    print_table(
        "E3: nested predicate over %d vehicles" % db.count("Vehicle"),
        ("strategy", "ms", "notes"),
        [
            ("naive nested evaluation", round(t_naive * 1e3, 2), "deref per candidate"),
            ("nested-attribute index", round(t_indexed * 1e3, 2), "%d matches" % len(indexed_result)),
            (
                "intermediate update",
                round(t_maint * 1e3, 2),
                "%d dependent targets recomputed" % recomputed,
            ),
        ],
    )
    assert t_indexed < t_naive, "nested index must beat naive evaluation"
    assert recomputed > 0
