"""E7: the optimizer's index-vs-scan crossover, discovered by the cost model.

Section 2.2: declarative queries made the query optimizer necessary —
it must "automatically arrive at an optimal plan ... such that the plan
will make use of appropriate access methods available in the system."
Earlier revisions of this bench hard-coded where the planner should
switch from index probe to extent scan; now ANALYZE statistics drive a
real cost model (``repro.query.cost``), so the sweep *asks the model*
where the crossover is and asserts the choices are consistent with its
own candidate costs: index probes on the selective side, one switch
point, extent scans beyond it, estimates matching observed rows exactly
on this uniform distribution.
"""

import pytest
from conftest import emit_bench_artifact, print_table, timed

from repro import AttributeDef, Database
from repro.bench.workloads import selectivity_values
from repro.query.ast import Comparison, Const, Path, Query
from repro.query.planner import ExtentScan, IndexEqProbe

N = 5000
#: distinct-count sweep: key k of "distinct d" matches N/d rows.
DISTINCTS = (2500, 500, 50, 10, 2, 1)


@pytest.fixture(scope="module")
def sweep_db():
    db = Database(use_locks=False)
    db.define_class("Row", attributes=[
        AttributeDef("bucket_%d" % d, "Integer") for d in DISTINCTS
    ])
    columns = {d: selectivity_values(N, d, seed=d) for d in DISTINCTS}
    for position in range(N):
        db.new(
            "Row",
            {"bucket_%d" % d: columns[d][position] for d in DISTINCTS},
        )
    for d in DISTINCTS:
        db.create_hierarchy_index("Row", "bucket_%d" % d)
    # The point of E7 since the cost model landed: the planner runs on
    # measured statistics, not live-count heuristics.
    db.analyze()
    return db


def query_for(distinct):
    return Query(
        "Row",
        where=Comparison("=", Path(("bucket_%d" % distinct,)), Const(0)),
    )


def test_selective_query_uses_index(sweep_db, benchmark):
    plan = sweep_db.plan(query_for(2500))
    assert plan.cost is not None and plan.cost.mode == "statistics"
    assert isinstance(plan.access, IndexEqProbe)
    benchmark(lambda: sweep_db.execute(query_for(2500)))


def test_unselective_query_uses_scan(sweep_db, benchmark):
    plan = sweep_db.plan(query_for(1))
    assert plan.cost is not None and plan.cost.mode == "statistics"
    assert isinstance(plan.access, ExtentScan)
    benchmark(lambda: sweep_db.execute(query_for(1)))


def test_crossover_summary(sweep_db):
    # The artifact's cost counters must reflect only this fixed sweep,
    # not however many warm-up iterations pytest-benchmark calibrated for
    # the two timing tests above (that count drifts with machine speed).
    sweep_db.metrics.reset()
    rows = []
    series = []
    choices = []
    for distinct in DISTINCTS:
        query = query_for(distinct)
        plan = sweep_db.plan(query)
        decision = plan.cost
        assert decision is not None and decision.mode == "statistics", (
            "E7 must exercise the statistics-driven path"
        )
        chosen_is_index = isinstance(plan.access, IndexEqProbe)
        choices.append("index" if chosen_is_index else "scan")
        by_kind = {c.kind: c for c in decision.candidates}
        scan_total = by_kind["extent-scan"].total
        index_total = by_kind["index-eq"].total
        # The choice must be exactly what the candidate costs dictate.
        assert chosen_is_index == (index_total < scan_total)
        t_chosen, result = timed(sweep_db.execute, query)
        # Uniform keys: the equality estimate (entries/distinct) must be
        # exact, and execution must confirm it.
        assert int(round(decision.estimated_rows)) == result.stats.matched == N // distinct

        # Force the other strategy for a wall-clock comparison.
        if chosen_is_index:
            forced = Query("Row", where=query.where)
            forced_plan = sweep_db.planner.plan(forced)
            forced_plan.access = ExtentScan(sorted(forced_plan.scope))
            forced_plan.residual = forced.where
            t_other, _ = timed(sweep_db._executor.execute, forced_plan)
        else:
            index = sweep_db.indexes.find_index(
                "Row", query.where.path.steps, {"Row"}
            )
            forced_plan = sweep_db.planner.plan(query)
            forced_plan.access = IndexEqProbe(index, 0)
            t_other, _ = timed(sweep_db._executor.execute, forced_plan)

        selectivity = len(result.oids) / N
        rows.append(
            (
                "%.2f%%" % (selectivity * 100),
                "index" if chosen_is_index else "scan",
                round(scan_total, 1),
                round(index_total, 1),
                round(t_chosen * 1e3, 2),
                round(t_other * 1e3, 2),
            )
        )
        series.append(
            {
                "distinct": distinct,
                "selectivity": selectivity,
                "chosen": "index" if chosen_is_index else "scan",
                "est_scan_total": scan_total,
                "est_index_total": index_total,
                "estimated_rows": decision.estimated_rows,
                "chosen_ms": t_chosen * 1e3,
                "forced_other_ms": t_other * 1e3,
                "examined": result.stats.examined,
                "matched": result.stats.matched,
                "index_probes": result.stats.index_probes,
                "operators": result.operator_stats(),
            }
        )
    # The cost model must discover one crossover inside the sweep: index
    # probes on the selective side, extent scans beyond, no flip-flops.
    assert "index" in choices and "scan" in choices, (
        "sweep must cross the index/scan boundary"
    )
    switch = choices.index("scan")
    assert choices == ["index"] * switch + ["scan"] * (len(choices) - switch), (
        "plan choice must switch exactly once along falling selectivity: %r"
        % (choices,)
    )
    crossover = {
        "below_distinct": DISTINCTS[switch - 1],
        "above_distinct": DISTINCTS[switch],
        "selectivity": series[switch]["selectivity"],
    }
    print_table(
        "E7: cost-model crossover at %.1f%% selectivity (N=%d)"
        % (crossover["selectivity"] * 100, N),
        ("selectivity", "chosen", "est scan", "est index", "chosen ms", "forced ms"),
        rows,
    )
    emit_bench_artifact(
        "e7_crossover",
        {"n": N, "crossover": crossover, "sweep": series},
        db=sweep_db,
    )
    # Wall-clock sanity at the sweep endpoints: the clearly-right choice
    # must actually be faster (middle points are informational — near
    # the crossover the two strategies are, by definition, comparable).
    assert series[0]["chosen_ms"] <= series[0]["forced_other_ms"] * 1.5
    assert series[-1]["chosen_ms"] <= series[-1]["forced_other_ms"] * 1.5
