"""E7: the optimizer's index-vs-scan crossover.

Section 2.2: declarative queries made the query optimizer necessary —
it must "automatically arrive at an optimal plan ... such that the plan
will make use of appropriate access methods available in the system."
A selectivity sweep shows the planner probing the index for selective
predicates and abandoning it for a scan as the predicate approaches the
whole extent, with the chosen plan tracking the faster strategy.
"""

import pytest
from conftest import emit_bench_artifact, print_table, timed

from repro import AttributeDef, Database
from repro.bench.workloads import selectivity_values
from repro.query.ast import Comparison, Const, Path, Query
from repro.query.planner import ExtentScan, IndexEqProbe

N = 5000
#: distinct-count sweep: key k of "distinct d" matches N/d rows.
DISTINCTS = (2500, 500, 50, 10, 2, 1)


@pytest.fixture(scope="module")
def sweep_db():
    db = Database(use_locks=False)
    db.define_class("Row", attributes=[
        AttributeDef("bucket_%d" % d, "Integer") for d in DISTINCTS
    ])
    columns = {d: selectivity_values(N, d, seed=d) for d in DISTINCTS}
    for position in range(N):
        db.new(
            "Row",
            {"bucket_%d" % d: columns[d][position] for d in DISTINCTS},
        )
    for d in DISTINCTS:
        db.create_hierarchy_index("Row", "bucket_%d" % d)
    return db


def query_for(distinct):
    return Query(
        "Row",
        where=Comparison("=", Path(("bucket_%d" % distinct,)), Const(0)),
    )


def test_selective_query_uses_index(sweep_db, benchmark):
    plan = sweep_db.plan(query_for(2500))
    assert isinstance(plan.access, IndexEqProbe)
    benchmark(lambda: sweep_db.execute(query_for(2500)))


def test_unselective_query_uses_scan(sweep_db, benchmark):
    plan = sweep_db.plan(query_for(1))
    assert isinstance(plan.access, ExtentScan)
    benchmark(lambda: sweep_db.execute(query_for(1)))


def test_crossover_summary(sweep_db):
    # The artifact's cost counters must reflect only this fixed sweep,
    # not however many warm-up iterations pytest-benchmark calibrated for
    # the two timing tests above (that count drifts with machine speed).
    sweep_db.metrics.reset()
    rows = []
    series = []
    saw_index = saw_scan = False
    for distinct in DISTINCTS:
        query = query_for(distinct)
        plan = sweep_db.plan(query)
        chosen_is_index = isinstance(plan.access, IndexEqProbe)
        saw_index |= chosen_is_index
        saw_scan |= not chosen_is_index
        t_chosen, result = timed(sweep_db.execute, query)

        # Force the other strategy for comparison.
        if chosen_is_index:
            forced = Query("Row", where=query.where)
            forced_plan = sweep_db.planner.plan(forced)
            forced_plan.access = ExtentScan(sorted(forced_plan.scope))
            forced_plan.residual = forced.where
            t_other, _ = timed(sweep_db._executor.execute, forced_plan)
        else:
            index = sweep_db.indexes.find_index(
                "Row", query.where.path.steps, {"Row"}
            )
            forced_plan = sweep_db.planner.plan(query)
            forced_plan.access = IndexEqProbe(index, 0)
            t_other, _ = timed(sweep_db._executor.execute, forced_plan)

        selectivity = len(result.oids) / N
        rows.append(
            (
                "%.2f%%" % (selectivity * 100),
                "index" if chosen_is_index else "scan",
                round(t_chosen * 1e3, 2),
                round(t_other * 1e3, 2),
                "yes" if t_chosen <= t_other * 1.5 else "NO",
            )
        )
        series.append(
            {
                "distinct": distinct,
                "selectivity": selectivity,
                "chosen": "index" if chosen_is_index else "scan",
                "chosen_ms": t_chosen * 1e3,
                "forced_other_ms": t_other * 1e3,
                "examined": result.stats.examined,
                "matched": result.stats.matched,
                "index_probes": result.stats.index_probes,
                "operators": result.operator_stats(),
            }
        )
    print_table(
        "E7: plan choice across selectivities (N=%d)" % N,
        ("selectivity", "chosen", "chosen ms", "forced-other ms", "chose well"),
        rows,
    )
    emit_bench_artifact("e7_crossover", {"n": N, "sweep": series}, db=sweep_db)
    assert saw_index and saw_scan, "sweep must cross the index/scan boundary"
    # The chosen plan should essentially never lose badly.
    assert all(row[4] == "yes" for row in rows)
