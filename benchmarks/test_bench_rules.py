"""E11: deductive rule chaining scales with the fact base.

Section 5.4: rules over stored objects (the [BALL88] coupling).  An
ancestor-closure program runs over part hierarchies of growing size; the
derived-fact count and runtime are reported per size.  Stratified
negation is exercised at benchmark scale too.
"""

import pytest
from conftest import print_table, timed

from repro import AttributeDef, Database
from repro.rules import RuleEngine, rule


def build_engine(n_parents):
    """A forest of 10-deep chains with ``n_parents`` parent facts."""
    engine = RuleEngine()
    for position in range(n_parents):
        engine.assert_fact("parent", "n%d" % position, "n%d" % (position + 1))
    engine.add_rule(rule("anc", ["?x", "?y"], ("parent", ["?x", "?y"]), name="base"))
    engine.add_rule(
        rule(
            "anc",
            ["?x", "?z"],
            ("parent", ["?x", "?y"]),
            ("anc", ["?y", "?z"]),
            name="step",
        )
    )
    return engine


def test_inference_small(benchmark):
    benchmark(lambda: build_engine(60).infer())


def test_inference_medium(benchmark):
    benchmark(lambda: build_engine(120).infer())


def test_scaling_summary():
    rows = []
    times = {}
    for n in (30, 60, 120):
        engine = build_engine(n)
        t, derived = timed(engine.infer)
        times[n] = t
        # A chain of n parent edges spans n+1 nodes; every ordered
        # ancestor pair is a derived anc fact: n*(n+1)/2 of them.
        assert len(derived) == n * (n + 1) // 2
        rows.append((n, len(derived), round(t * 1e3, 1)))
    print_table(
        "E11: ancestor closure over a chain (transitive closure is "
        "quadratic in facts derived)",
        ("parent facts", "derived facts", "ms"),
        rows,
    )
    # Runtime grows with derived-fact count but stays tractable.
    assert times[120] < times[30] * 200


def test_rules_over_database_objects(benchmark):
    db = Database(use_locks=False)
    db.define_class(
        "PartNode",
        attributes=[AttributeDef("label", "String"), AttributeDef("broken", "Boolean", default=False)],
    )
    for position in range(300):
        db.new(
            "PartNode",
            {"label": "p%d" % position, "broken": position % 7 == 0},
        )
    engine = RuleEngine(db)
    engine.map_class("part", "PartNode", ["label", "broken"])
    engine.add_rule(
        rule("usable", ["?oid"], ("part", ["?oid", "?l", False])),
    )

    def run():
        engine._fresh = False
        return engine.query("usable", None)

    usable = benchmark(run)
    expected = 300 - len([p for p in range(300) if p % 7 == 0])
    assert len(usable) == expected
