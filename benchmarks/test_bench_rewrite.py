"""E16: static rewrite throughput and plan-cache hit behavior.

Two phases over the Figure 1 population:

1. **rewrite sweep** — a generated battery of distinct queries, each
   carrying at least one rewritable shape (implied conjuncts, double
   negation, redundant IN lists), driven through the full front end.
   This exercises the ``rewrite.*`` counters the benchgate now gates:
   more rewrite work for the same battery is a regression.

2. **hot query** — one FIG1-style query executed repeatedly.  The first
   execution pays parse/analyze/rewrite/plan and populates the plan
   cache; every subsequent execution must be a deterministic cache hit
   (asserted exactly: N-1 hits for N runs, zero additional parses) with
   results identical to the first.  The contradiction variant runs with
   zero objects examined through the EmptyScan short circuit.

The emitted ``BENCH_rewrite`` artifact carries cold/hot timings plus the
engine metric snapshot (``query.plan_cache.*``, ``rewrite.*``), so perf
PRs diff cache behavior rather than stdout tables.
"""

import pytest
from conftest import emit_bench_artifact, print_table, timed

from repro import Database
from repro.bench.schemas import build_vehicle_schema, populate_vehicles

N_VEHICLES = 500
SWEEP_QUERIES = 120
HOT_RUNS = 200

HOT_QUERY = (
    "SELECT v FROM Vehicle v "
    "WHERE v.weight > 7500 AND v.manufacturer.location = 'Detroit'"
)
CONTRADICTION = (
    "SELECT v FROM Vehicle v WHERE v.weight > 7500 AND v.weight < 7500"
)


@pytest.fixture(scope="module")
def bench_db():
    db = Database()
    build_vehicle_schema(db)
    populate_vehicles(db, n_vehicles=N_VEHICLES, n_companies=20, seed=1990)
    yield db
    db.close()


def _sweep_query(i):
    """A distinct query whose WHERE always has something to rewrite."""
    low = 1000 + i * 37
    high = low - 1 if i % 10 == 0 else low + 4000  # every 10th: contradiction
    return (
        "SELECT v FROM Vehicle v WHERE v.weight > %d AND v.weight > %d "
        "AND v.weight < %d AND NOT NOT (v.color IN ('red', 'blue', 'red'))"
        % (low - 500, low, high)
    )


def test_rewrite_sweep_and_hot_query_cache(bench_db):
    db = bench_db

    # -- phase 1: rewrite sweep over distinct queries ----------------------
    sweep_seconds, _ = timed(
        lambda: [db.plan(_sweep_query(i)) for i in range(SWEEP_QUERIES)]
    )
    snap = db.metrics.snapshot()
    assert snap["rewrite.queries"] >= SWEEP_QUERIES
    assert snap["rewrite.rules_applied"] >= SWEEP_QUERIES
    assert snap["rewrite.contradictions"] == SWEEP_QUERIES // 10

    # -- phase 2: repeated hot query ---------------------------------------
    cold_seconds, first = timed(db.execute, HOT_QUERY)
    first_oids = list(first.oids)
    assert first_oids, "Detroit heavyweights exist by construction"
    hits_before = db.metrics.snapshot()["query.plan_cache.hits"]
    parses_before = db.metrics.snapshot()["query.parses"]

    hot_total = 0.0
    for _run in range(HOT_RUNS - 1):
        seconds, result = timed(db.execute, HOT_QUERY)
        hot_total += seconds
        assert list(result.oids) == first_oids

    after = db.metrics.snapshot()
    # Deterministic hit behavior: every re-execution is a cache hit on
    # the source fast path — no re-parse, no re-plan.
    assert after["query.plan_cache.hits"] - hits_before == HOT_RUNS - 1
    assert after["query.parses"] == parses_before
    hot_seconds = hot_total / (HOT_RUNS - 1)

    # -- contradiction short circuit ---------------------------------------
    empty_seconds, empty = timed(db.execute, CONTRADICTION)
    assert list(empty.oids) == []
    assert empty.stats.examined == 0

    rows = [
        ("rewrite sweep (%d queries)" % SWEEP_QUERIES, "%.1f" % (sweep_seconds * 1e3)),
        ("hot query, cold", "%.3f" % (cold_seconds * 1e3)),
        ("hot query, cached (avg)", "%.3f" % (hot_seconds * 1e3)),
        ("contradiction (empty scan)", "%.3f" % (empty_seconds * 1e3)),
    ]
    print_table("E16 rewrite & plan cache", ("phase", "ms"), rows)

    emit_bench_artifact(
        "rewrite",
        {
            "series": [
                {"plan": "sweep", "ms": sweep_seconds * 1e3},
                {"plan": "hot-cold", "ms": cold_seconds * 1e3},
                {"plan": "hot-cached", "ms": hot_seconds * 1e3},
                {"plan": "contradiction", "ms": empty_seconds * 1e3},
            ],
            "sweep_queries": SWEEP_QUERIES,
            "hot_runs": HOT_RUNS,
            "cache_hits": after["query.plan_cache.hits"] - hits_before,
            "cache_entries": len(db.plan_cache),
        },
        db,
    )
