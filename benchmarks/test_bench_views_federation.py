"""E10: views cost ~the underlying query; federation spans three engines.

Section 5.4 proposes views as virtual classes; the rewrite should add
only planning-time overhead.  Section 5.2's multidatabase scenario —
Employee in a relational system, Product in a hierarchical system,
Company in an OODB — runs as one federation under the common OO model.
"""

import pytest
from conftest import print_table, timed

from repro import AttributeDef, Database
from repro.bench.schemas import build_vehicle_schema, populate_vehicles
from repro.multidb import (
    Federation,
    HierarchicalAdapter,
    HierarchicalDatabase,
    ObjectAdapter,
    RelationalAdapter,
)
from repro.relational import RelationalEngine
from repro.views import attach as attach_views

DIRECT = "SELECT v FROM Vehicle v WHERE v.weight > 7500 AND v.color = 'red'"
VIA_VIEW = "SELECT h FROM Heavy h WHERE h.color = 'red'"


@pytest.fixture(scope="module")
def view_db():
    db = Database(use_locks=False)
    attach_views(db)
    build_vehicle_schema(db)
    populate_vehicles(db, n_vehicles=3000, n_companies=30, seed=10)
    db.create_hierarchy_index("Vehicle", "weight")
    db.views.define_view("Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500")
    return db


def test_direct_query(view_db, benchmark):
    benchmark(lambda: view_db.select(DIRECT))


def test_view_query(view_db, benchmark):
    benchmark(lambda: view_db.select(VIA_VIEW))


def test_view_overhead_summary(view_db):
    expected = [h.oid for h in view_db.select(DIRECT)]
    t_direct, _ = timed(lambda: [view_db.select(DIRECT) for _ in range(10)])
    t_view, via_view = timed(lambda: [view_db.select(VIA_VIEW) for _ in range(10)])
    assert [h.oid for h in via_view[0]] == expected
    print_table(
        "E10a: view rewrite overhead (10 runs, %d matches)" % len(expected),
        ("path", "ms"),
        [
            ("direct query", round(t_direct * 1e3, 2)),
            ("through view", round(t_view * 1e3, 2)),
        ],
    )
    # Views may cost a little planning overhead but nothing structural.
    assert t_view < t_direct * 2 + 0.05


@pytest.fixture(scope="module")
def federation():
    engine = RelationalEngine()
    engine.create_table(
        "Employee",
        [("emp_id", "int"), ("name", "str"), ("company", "str")],
        primary_key="emp_id",
    )
    for emp_id in range(200):
        engine.insert(
            "Employee",
            {
                "emp_id": emp_id,
                "name": "emp-%d" % emp_id,
                "company": "company-%d" % (emp_id % 10),
            },
        )

    hdb = HierarchicalDatabase()
    hdb.define_segment("ProductLine", ["line"])
    hdb.define_segment("Product", ["sku", "price"], parent="ProductLine")
    for line_no in range(5):
        line_id = hdb.insert("ProductLine", {"line": "line-%d" % line_no})
        for product_no in range(40):
            hdb.insert(
                "Product",
                {"sku": "P-%d-%d" % (line_no, product_no), "price": product_no},
                parent_id=line_id,
            )

    odb = Database()
    odb.define_class(
        "Company",
        attributes=[AttributeDef("name", "String"), AttributeDef("location", "String")],
    )
    for company_no in range(10):
        odb.new(
            "Company",
            {
                "name": "company-%d" % company_no,
                "location": "Detroit" if company_no % 2 == 0 else "Tokyo",
            },
        )

    federation = Federation()
    federation.register("relational", RelationalAdapter(engine))
    federation.register("hierarchical", HierarchicalAdapter(hdb))
    federation.register("objects", ObjectAdapter(odb, ["Company"]))
    return federation


def test_federated_query_each_source(federation, benchmark):
    def run():
        employees = federation.query(
            "SELECT e FROM Employee e WHERE e.company = 'company-2'"
        )
        products = federation.query(
            "SELECT p FROM Product p WHERE p.parent_id.line = 'line-1' AND p.price > 30"
        )
        companies = federation.query(
            "SELECT c FROM Company c WHERE c.location = 'Detroit'"
        )
        return employees, products, companies

    employees, products, companies = benchmark(run)
    assert len(employees) == 20
    assert len(products) == 9
    assert len(companies) == 5


def test_federation_summary(federation):
    rows = []
    for description, query in [
        ("relational", "SELECT e FROM Employee e WHERE e.company = 'company-2'"),
        ("hierarchical + parent path", "SELECT p FROM Product p WHERE p.parent_id.line = 'line-1'"),
        ("object", "SELECT c FROM Company c WHERE c.location = 'Detroit'"),
    ]:
        t, result = timed(federation.query, query)
        rows.append((description, len(result), round(t * 1e3, 2)))
    print_table(
        "E10b: one OQL surface over three engines",
        ("source", "rows", "ms"),
        rows,
    )
    assert federation.class_names()
