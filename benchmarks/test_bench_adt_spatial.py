"""E14: user-defined predicates in the optimization framework.

Section 5.5 flags integrating "user-defined predicates on user-defined
types into the optimization framework" as unsolved; kimdb's answer is
ADT access methods the planner can cost.  The VLSI rectangle workload
[STON83, BANE86] sweeps layout sizes and compares scan-with-residual
against the grid access method.
"""

import random

import pytest
from conftest import print_table, timed

from repro import AttributeDef, Database
from repro.adt import (
    attach,
    make_rect,
    rect_overlaps,
    register_rectangle_type,
    register_spatial_index,
)

QUERY = "SELECT c FROM Cell c WHERE overlaps(c.shape, [100, 100, 160, 160])"


def build_layout(n, with_grid):
    db = Database(use_locks=False)
    registry = attach(db)
    register_rectangle_type(registry)
    db.define_class(
        "Cell",
        attributes=[AttributeDef("layer", "Integer"), AttributeDef("shape", "Rectangle")],
    )
    if with_grid:
        register_spatial_index(registry, "Cell", "shape", cell_size=32)
    rng = random.Random(14)
    span = max(256, int((n * 64) ** 0.5))
    for _ in range(n):
        x, y = rng.randrange(span), rng.randrange(span)
        width, height = rng.randrange(1, 12), rng.randrange(1, 12)
        db.new(
            "Cell",
            {"layer": rng.randrange(4), "shape": make_rect(x, y, x + width, y + height)},
        )
    return db


@pytest.fixture(scope="module")
def layouts():
    return build_layout(4000, with_grid=False), build_layout(4000, with_grid=True)


def test_overlap_scan(layouts, benchmark):
    scan_db, _grid_db = layouts
    assert "scan" in scan_db.plan(QUERY).access.description
    benchmark(lambda: scan_db.select(QUERY))


def test_overlap_grid_index(layouts, benchmark):
    scan_db, grid_db = layouts
    assert "adt-index" in grid_db.plan(QUERY).access.description
    expected = {h["layer"] for h in scan_db.select(QUERY)}
    result = benchmark(lambda: grid_db.select(QUERY))
    assert {h["layer"] for h in result} <= expected | set(range(4))


def test_size_sweep_summary():
    rows = []
    speedups = {}
    from conftest import best_of

    for n in (1000, 4000, 12000):
        scan_db = build_layout(n, with_grid=False)
        grid_db = build_layout(n, with_grid=True)
        t_scan, scan_result = best_of(scan_db.select, QUERY)
        t_grid, grid_result = best_of(grid_db.select, QUERY)
        assert len(scan_result) == len(grid_result)
        for handle in grid_result:
            assert rect_overlaps(handle["shape"], 100, 100, 160, 160)
        speedups[n] = t_scan / t_grid if t_grid > 0 else float("inf")
        rows.append(
            (n, len(grid_result), round(t_scan * 1e3, 2), round(t_grid * 1e3, 2),
             round(speedups[n], 1))
        )
    print_table(
        "E14: rectangle overlap query, scan vs grid access method",
        ("rectangles", "matches", "scan ms", "grid ms", "speedup"),
        rows,
    )
    assert speedups[12000] > 3, "grid must win decisively on large layouts"
    # The advantage grows with layout size (fixed window, growing extent).
    assert speedups[12000] > speedups[1000]
