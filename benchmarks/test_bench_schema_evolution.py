"""E12: schema evolution is metadata-cost with lazy coercion.

[BANE87]'s ORION strategy: adding or dropping an attribute touches the
class object only; stored instances coerce on load.  The bench contrasts
lazy ``add_attribute`` with the eager rewrite path (``rename_attribute``
rewrites every instance) across extent sizes.
"""

import pytest
from conftest import print_table, timed

from repro import AttributeDef, Database
from repro.evolution import SchemaEvolution


def build(n):
    db = Database(use_locks=False)
    db.define_class(
        "Doc",
        attributes=[AttributeDef("title", "String"), AttributeDef("serial", "Integer")],
    )
    for position in range(n):
        db.new("Doc", {"title": "d%d" % position, "serial": position})
    return db


def test_lazy_add_attribute(benchmark):
    counter = [0]

    def run():
        db = build(500)
        evolution = SchemaEvolution(db)
        counter[0] += 1
        evolution.add_attribute(
            "Doc", AttributeDef("status_%d" % counter[0], "String", default="new")
        )

    benchmark(run)


def test_eager_rename_attribute(benchmark):
    def run():
        db = build(500)
        evolution = SchemaEvolution(db)
        evolution.rename_attribute("Doc", "title", "headline")

    benchmark(run)


def test_lazy_vs_eager_scaling_summary():
    rows = []
    lazy_times, eager_times = {}, {}
    for n in (500, 2000, 8000):
        db = build(n)
        evolution = SchemaEvolution(db)
        t_lazy, _ = timed(
            evolution.add_attribute, "Doc", AttributeDef("status", "String", default="new")
        )
        t_eager, rewritten = timed(evolution.rename_attribute, "Doc", "title", "headline")
        assert rewritten == n
        lazy_times[n] = t_lazy
        eager_times[n] = t_eager
        rows.append((n, round(t_lazy * 1e3, 3), round(t_eager * 1e3, 1)))
    print_table(
        "E12: add_attribute (lazy) vs rename_attribute (eager rewrite)",
        ("instances", "lazy ms", "eager ms"),
        rows,
    )
    # Lazy cost must not scale with the extent; eager must.
    assert lazy_times[8000] < lazy_times[500] * 10 + 0.005
    assert eager_times[8000] > eager_times[500] * 4
    # And lazy is orders cheaper at scale.
    assert lazy_times[8000] * 20 < eager_times[8000]


def test_coercion_correctness_after_lazy_change():
    db = build(100)
    evolution = SchemaEvolution(db)
    evolution.add_attribute("Doc", AttributeDef("status", "String", default="new"))
    evolution.drop_attribute("Doc", "serial")
    sample = db.select("SELECT d FROM Doc d LIMIT 5")
    for handle in sample:
        assert handle["status"] == "new"
        state = db.get_state(handle.oid)
        assert "serial" not in state.values


def test_first_read_pays_coercion_once(benchmark):
    db = build(2000)
    evolution = SchemaEvolution(db)
    evolution.add_attribute("Doc", AttributeDef("status", "String", default="new"))

    def read_all():
        return sum(1 for _ in db._scan_coerced("Doc"))

    assert benchmark(read_all) == 2000
