"""E1 (Figure 1): the paper's example schema and query, end to end.

"Find all vehicles that weigh more than 7500 lbs, and that are
manufactured by a company located in Detroit" — evaluated as a plain
extent scan and with the two index kinds Section 3.2 derives, all three
producing identical answers.
"""

from conftest import emit_bench_artifact, print_table, timed

from repro import Database
from repro.bench.schemas import FIG1_QUERY, build_vehicle_schema, populate_vehicles


def brute_force(db):
    out = []
    for cls in db.schema.hierarchy_of("Vehicle"):
        for state in db.storage.scan_class(cls):
            if state.values["weight"] <= 7500:
                continue
            maker = state.values.get("manufacturer")
            if maker is None:
                continue
            if db.get_state(maker).values["location"] == "Detroit":
                out.append(state.oid)
    return sorted(out)


def test_fig1_scan(vehicle_db_2k, benchmark):
    expected = brute_force(vehicle_db_2k)
    result = benchmark(lambda: vehicle_db_2k.select(FIG1_QUERY))
    assert [h.oid for h in result] == expected
    assert expected, "fixture must produce matches"


def test_fig1_with_hierarchy_index(vehicle_db_2k, benchmark):
    expected = brute_force(vehicle_db_2k)
    vehicle_db_2k.create_hierarchy_index("Vehicle", "weight")
    result = benchmark(lambda: vehicle_db_2k.select(FIG1_QUERY))
    assert [h.oid for h in result] == expected


def test_fig1_with_nested_index(vehicle_db_2k, benchmark):
    expected = brute_force(vehicle_db_2k)
    vehicle_db_2k.create_nested_index("Vehicle", ["manufacturer", "location"])
    plan = vehicle_db_2k.plan(FIG1_QUERY)
    assert "nx_Vehicle" in plan.access.description
    result = benchmark(lambda: vehicle_db_2k.select(FIG1_QUERY))
    assert [h.oid for h in result] == expected


def test_fig1_access_path_comparison(vehicle_db_2k):
    """Summary series: the same query under three access paths."""
    db = vehicle_db_2k
    expected = brute_force(db)
    rows = []
    scan_time, scan_result = timed(db.select, FIG1_QUERY)
    rows.append(("extent scan", db.plan(FIG1_QUERY).access.description, round(scan_time * 1e3, 2)))
    db.create_hierarchy_index("Vehicle", "weight")
    ch_time, ch_result = timed(db.select, FIG1_QUERY)
    rows.append(("class-hierarchy index", db.plan(FIG1_QUERY).access.description, round(ch_time * 1e3, 2)))
    db.create_nested_index("Vehicle", ["manufacturer", "location"])
    nx_time, nx_result = timed(db.select, FIG1_QUERY)
    rows.append(("nested-attribute index", db.plan(FIG1_QUERY).access.description, round(nx_time * 1e3, 2)))
    print_table(
        "E1: Figure 1 query (%d matches over %d vehicles)" % (len(expected), db.count("Vehicle")),
        ("access path", "plan", "ms"),
        rows,
    )
    emit_bench_artifact(
        "e1_fig1_query",
        {
            "matches": len(expected),
            "vehicles": db.count("Vehicle"),
            "series": [
                {"access_path": label, "plan": plan, "ms": ms}
                for label, plan, ms in rows
            ],
        },
        db=db,
    )
    assert (
        [h.oid for h in scan_result]
        == [h.oid for h in ch_result]
        == [h.oid for h in nx_result]
        == expected
    )
    # The nested index answers the most selective conjunct directly and
    # must beat the full scan.
    assert nx_time < scan_time
