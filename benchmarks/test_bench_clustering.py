"""E6: physical clustering of composite objects cuts page faults.

Section 4.2 lists physical clustering among the components needing
OODB-specific architecture; composite parts placed near their parents
turn a deep traversal into a handful of page reads.  Faults are counted
on a cold buffer pool, so the comparison is deterministic.
"""

import pytest
from conftest import print_table

from repro import Database
from repro.bench.workloads import define_assembly_schema
from repro.storage.clustering import CompositeClustering, NoClustering

GROUPS = 8
LENGTH = 64
LABEL = 160


def build(policy):
    db = Database(clustering=policy, buffer_capacity=4)
    define_assembly_schema(db)
    previous = [None] * GROUPS
    for position in range(LENGTH):
        for group in range(GROUPS):
            subassemblies = [previous[group]] if previous[group] is not None else []
            handle = db.new(
                "Assembly",
                {
                    "label": "g%d-%d-%s" % (group, position, "x" * LABEL),
                    "mass": 1,
                    "subassemblies": subassemblies,
                },
            )
            previous[group] = handle.oid
    return db, previous


def traverse(db, root):
    db.storage.drop_cache()
    db.storage.buffer.stats.reset()
    count = 0
    oid = root
    while oid is not None:
        state = db.storage.load(oid)
        count += 1
        children = state.values.get("subassemblies") or []
        oid = children[0] if children else None
    return count, db.storage.buffer.stats.faults


@pytest.fixture(scope="module")
def databases():
    clustered = build(CompositeClustering())
    scattered = build(NoClustering())
    return clustered, scattered


def test_clustered_cold_traversal(databases, benchmark):
    (db, heads), _ = databases

    def run():
        return traverse(db, heads[0])

    count, _faults = benchmark(run)
    assert count == LENGTH


def test_scattered_cold_traversal(databases, benchmark):
    _, (db, heads) = databases

    def run():
        return traverse(db, heads[0])

    count, _faults = benchmark(run)
    assert count == LENGTH


def test_fault_count_summary(databases):
    (clustered_db, clustered_heads), (scattered_db, scattered_heads) = databases
    rows = []
    total_c = total_s = 0
    for group in range(GROUPS):
        count_c, faults_c = traverse(clustered_db, clustered_heads[group])
        count_s, faults_s = traverse(scattered_db, scattered_heads[group])
        assert count_c == count_s == LENGTH
        total_c += faults_c
        total_s += faults_s
        if group < 3:
            rows.append((group, faults_c, faults_s, round(faults_s / max(1, faults_c), 1)))
    rows.append(("all %d" % GROUPS, total_c, total_s, round(total_s / max(1, total_c), 1)))
    print_table(
        "E6: cold-buffer faults per composite-chain traversal (%d objects/chain)" % LENGTH,
        ("chain", "clustered faults", "scattered faults", "ratio"),
        rows,
    )
    # Clustering must cut faults by a large factor (chain pages are
    # contiguous instead of striped across all groups).
    assert total_c * 3 <= total_s
