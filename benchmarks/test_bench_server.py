"""E15: multi-client server throughput over the wire protocol.

An 8-client mixed workload against one served database: four readers
running OQL queries and cursor streams over the Automobile subtree,
four writers running transactional updates over disjoint slices of the
Truck extent.  Reader and writer lock footprints are disjoint by
construction (S on Automobile classes vs IX/X under Truck), so the
request and row counts — the counters benchgate gates — are exact
functions of the workload, not of thread interleaving.

Reports throughput and client-observed latency percentiles, then
verifies the ISSUE's cleanup guarantee: killing a client mid-transaction
leaves no stranded locks or sessions (asserted through SysLock and
SysSession, the same views an operator would use).
"""

import threading
import time

import pytest
from conftest import emit_bench_artifact, print_table

from repro import Database
from repro.bench.schemas import build_vehicle_schema, populate_vehicles
from repro.server import Client, ConnectionPool, Server

N_VEHICLES = 1000
N_READERS = 4
N_WRITERS = 4
ROUNDS = 3
UPDATES_PER_ROUND = 5
STREAM_BATCH = 50


@pytest.fixture(scope="module")
def served_db():
    db = Database()
    build_vehicle_schema(db)
    oids = populate_vehicles(db, n_vehicles=N_VEHICLES, n_companies=20, seed=1990)
    server = Server(db, port=0, workers=8, lock_timeout=10.0)
    server.start()
    yield db, server, oids
    server.stop()
    db.close()


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _reader(pool, latencies, errors):
    try:
        with pool.connection() as c:
            for _round in range(ROUNDS):
                start = time.perf_counter()
                rows = c.query("Automobile where color = 'blue'")
                latencies.append(time.perf_counter() - start)
                assert rows, "blue automobiles exist by construction"
                start = time.perf_counter()
                streamed = sum(
                    1
                    for _row in c.query_stream(
                        "DomesticAutomobile", batch=STREAM_BATCH
                    )
                )
                latencies.append(time.perf_counter() - start)
                assert streamed == N_VEHICLES // 4
    except Exception as exc:  # pragma: no cover - failure reporting
        errors.append(exc)


def _writer(pool, my_trucks, latencies, errors):
    try:
        with pool.connection() as c:
            for round_no in range(ROUNDS):
                start = time.perf_counter()
                with c.transaction():
                    for position in range(UPDATES_PER_ROUND):
                        oid = my_trucks[
                            (round_no * UPDATES_PER_ROUND + position)
                            % len(my_trucks)
                        ]
                        c.update(oid, {"payload": 1000 + round_no})
                latencies.append(time.perf_counter() - start)
    except Exception as exc:  # pragma: no cover - failure reporting
        errors.append(exc)


def test_mixed_workload_throughput(served_db):
    db, server, oids = served_db
    trucks = oids["Truck"]
    slice_size = len(trucks) // N_WRITERS
    host, port = server.address

    requests_before = db.metrics.counter("server.requests").value
    errors = []
    read_latencies = []
    write_latencies = []
    with ConnectionPool(host, port, size=N_READERS + N_WRITERS) as pool:
        threads = [
            threading.Thread(target=_reader, args=(pool, read_latencies, errors))
            for _ in range(N_READERS)
        ] + [
            threading.Thread(
                target=_writer,
                args=(
                    pool,
                    trucks[w * slice_size : (w + 1) * slice_size],
                    write_latencies,
                    errors,
                ),
            )
            for w in range(N_WRITERS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        elapsed = time.perf_counter() - started
    assert not errors, errors

    requests = db.metrics.counter("server.requests").value - requests_before
    throughput = requests / elapsed if elapsed else 0.0
    reads = sorted(read_latencies)
    writes = sorted(write_latencies)
    all_ops = sorted(read_latencies + write_latencies)
    p50 = _percentile(all_ops, 0.50)
    p99 = _percentile(all_ops, 0.99)

    print_table(
        "E15: 8-client mixed workload (%d requests in %.2fs)" % (requests, elapsed),
        ("series", "ops", "p50 ms", "p99 ms"),
        [
            ("reader ops", len(reads), round(_percentile(reads, 0.5) * 1e3, 2),
             round(_percentile(reads, 0.99) * 1e3, 2)),
            ("writer txns", len(writes), round(_percentile(writes, 0.5) * 1e3, 2),
             round(_percentile(writes, 0.99) * 1e3, 2)),
            ("all", len(all_ops), round(p50 * 1e3, 2), round(p99 * 1e3, 2)),
        ],
    )

    # The workload is clean: everything committed, nothing held.
    assert not db.txns.active_transactions()
    assert db.select("SysLock") == []
    # Disjoint reader/writer subtrees: contention is structural zero.
    rows_streamed = db.metrics.counter("server.rows_streamed").value
    assert rows_streamed >= N_READERS * ROUNDS * (N_VEHICLES // 4)

    emit_bench_artifact(
        "server",
        {
            "clients": N_READERS + N_WRITERS,
            "requests": requests,
            "throughput_rps": round(throughput, 1),
            "p50_ms": round(p50 * 1e3, 3),
            "p99_ms": round(p99 * 1e3, 3),
            "reader_ops": len(reads),
            "writer_txns": len(writes),
            "rows_streamed": rows_streamed,
        },
        db=db,
    )


def test_kill_mid_txn_leaves_no_stranded_locks(served_db):
    """The hard constraint, measured where an operator would look."""
    db, server, oids = served_db
    target = oids["Truck"][0]
    host, port = server.address

    victim = Client(host, port)
    victim.begin()
    victim.update(target, {"payload": -1})
    # The victim's X lock is visible while it lives...
    held = db.select("SysLock where granted = true")
    assert any(row["txn"] == victim_txn_row(db) for row in held)
    victim.kill()

    deadline = time.perf_counter() + 10.0
    while time.perf_counter() < deadline and (
        db.select("SysSession") or db.txns.active_transactions()
    ):
        time.sleep(0.01)
    # ...and gone, with its session and transaction, once it is killed.
    assert db.select("SysSession") == []
    assert db.select("SysLock") == []
    assert not db.txns.active_transactions()
    with Client(host, port) as probe:
        probe.update(target, {"payload": 4242})
        assert probe.get(target)["values"]["payload"] == 4242


def victim_txn_row(db):
    active = db.txns.active_transactions()
    assert len(active) == 1
    return active[0]
