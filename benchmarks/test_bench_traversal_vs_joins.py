"""E4: navigational traversal vs. relational joins.

Section 3.3: "the applications have to use joins to express the
traversal from one object to other objects related to it.  Obviously,
the combined cost ... is simply intolerably expensive for such
applications."  The OO1 parts graph is traversed to increasing depths
navigationally (kimdb + swizzling workspace) and via repeated joins
(relational baseline).
"""

import pytest
from conftest import print_table, timed

from repro import Database
from repro.bench.oo1 import OO1Data, OO1KimDB, OO1Relational
from repro.relational import RelationalEngine
from repro.workspace import ObjectWorkspace

N_PARTS = 1500


@pytest.fixture(scope="module")
def engines():
    from repro.storage import StorageManager

    data = OO1Data(N_PARTS, seed=4)
    kim = OO1KimDB(Database(), data)
    # Paged relational engine: both systems pay real storage costs.
    rel = OO1Relational(RelationalEngine(StorageManager(buffer_capacity=256)), data)
    return data, kim, rel


def test_navigational_traversal(engines, benchmark):
    _data, kim, _rel = engines
    workspace = ObjectWorkspace(kim.db, policy="lazy")
    kim.traverse(1, depth=6, workspace=workspace)  # warm the workspace
    benchmark(lambda: kim.traverse(1, depth=6, workspace=workspace))


def test_join_traversal(engines, benchmark):
    _data, _kim, rel = engines
    benchmark(lambda: rel.traverse(1, depth=6))


def test_same_visit_counts(engines):
    _data, kim, rel = engines
    for depth in (1, 2, 3):
        assert kim.traverse(1, depth=depth) == rel.traverse(1, depth=depth)


def nested_loop_traverse(rel, root_part_id, depth):
    """Traversal via unindexed joins — the generic-RDBMS worst case."""
    visited = 1
    frontier = [{"part_id": root_part_id}]
    for _level in range(depth):
        joined = rel.engine.nested_loop_join(frontier, "part_id", "connection", "from_id")
        next_frontier = [{"part_id": row["to_id"]} for row in joined]
        parts = rel.engine.join(next_frontier, "part_id", "part", "part_id")
        visited += len(parts)
        frontier = next_frontier
        if not frontier:
            break
    return visited


def test_depth_sweep_summary(engines):
    from conftest import best_of

    _data, kim, rel = engines
    workspace = ObjectWorkspace(kim.db, policy="lazy")
    rows = []
    indexed_ratio = {}
    nested_ratio = {}
    for depth in (1, 2, 3, 4, 5, 6, 7):
        t_nav, visited_nav = best_of(kim.traverse, 1, depth, workspace)
        t_join, visited_join = best_of(rel.traverse, 1, depth)
        if depth <= 4:  # nested loops are prohibitive past shallow depths
            t_nested, visited_nested = best_of(
                nested_loop_traverse, rel, 1, depth, repeats=1
            )
            assert visited_nested == visited_nav
            nested_text = round(t_nested * 1e3, 2)
            nested_ratio[depth] = t_nested / t_nav
        else:
            nested_text = "-"
        assert visited_nav == visited_join
        indexed_ratio[depth] = t_join / t_nav if t_nav > 0 else float("inf")
        rows.append(
            (
                depth,
                visited_nav,
                round(t_nav * 1e3, 2),
                round(t_join * 1e3, 2),
                nested_text,
                round(indexed_ratio[depth], 2),
            )
        )
    print_table(
        "E4: traversal over %d-part OO1 graph (hot workspace)" % N_PARTS,
        ("depth", "visited", "nav ms", "indexed joins ms", "nested-loop joins ms", "ij/nav"),
        rows,
    )
    # The paper's "intolerably expensive" claim is about generic join
    # evaluation: nested-loop traversal must lose by orders of magnitude.
    assert nested_ratio[4] > 25, "unindexed joins must be catastrophically slower"
    # Even the best-case relational plan (every join column indexed, all
    # tables memory-resident) loses ground as the traversal deepens.
    assert indexed_ratio[7] > indexed_ratio[1] * 2, (
        "relative cost of indexed joins must grow with traversal depth"
    )
