"""E17: query-fingerprint statistics overhead and ANALYZE cost.

Two phases over the Figure 1 population:

1. **fingerprint sweep** — a deterministic battery of distinct query
   shapes, each executed a fixed number of times.  Every execution folds
   into the accumulator (``query.stats.recorded`` grows by exactly
   sweep x repeats), and the per-fingerprint call counts come out exact:
   the accumulator is bookkeeping, not sampling.  More ``query.stats.*``
   work for the same battery is a regression the benchgate flags.

2. **ANALYZE** — a full statistics collection over the populated
   schema and its indexes, measured and checked for exact row coverage
   (``analyze.rows_scanned`` counts every Vehicle and AutoCompany).

The emitted ``BENCH_querystats`` artifact carries both timings plus the
engine metric snapshot (``query.stats.*``, ``analyze.*``), so perf PRs
diff accumulator behavior rather than stdout tables.
"""

import pytest
from conftest import emit_bench_artifact, print_table, timed

from repro import Database
from repro.bench.schemas import build_vehicle_schema, populate_vehicles

N_VEHICLES = 500
N_COMPANIES = 20
SWEEP_SHAPES = 40
REPEATS = 5


@pytest.fixture(scope="module")
def bench_db():
    db = Database()
    build_vehicle_schema(db)
    populate_vehicles(db, n_vehicles=N_VEHICLES, n_companies=N_COMPANIES, seed=1990)
    db.create_class_index("Vehicle", "weight")
    yield db
    db.close()


def _sweep_query(i):
    """One of ``SWEEP_SHAPES`` structurally distinct queries."""
    low = 1000 + i * 190
    return "SELECT v FROM Vehicle v WHERE v.weight >= %d" % low


def test_fingerprint_sweep_and_analyze(bench_db):
    db = bench_db

    # -- phase 1: deterministic fingerprint sweep --------------------------
    recorded_before = db.metrics.snapshot().get("query.stats.recorded", 0)
    sweep_seconds, _ = timed(
        lambda: [
            db.execute(_sweep_query(i))
            for _rep in range(REPEATS)
            for i in range(SWEEP_SHAPES)
        ]
    )
    snap = db.metrics.snapshot()
    assert snap["query.stats.recorded"] - recorded_before == SWEEP_SHAPES * REPEATS
    assert snap["query.stats.fingerprints"] == SWEEP_SHAPES

    rows = db.select("SysQueryStat order by calls desc")
    assert len(rows) == SWEEP_SHAPES
    # Exact per-fingerprint call counts: every shape ran REPEATS times,
    # hitting the plan cache on every execution after its first.
    assert all(row["calls"] == REPEATS for row in rows)
    assert all(row["plan_cache_hits"] == REPEATS - 1 for row in rows)
    assert sum(row["rows_examined"] for row in rows) > 0

    # -- phase 2: ANALYZE --------------------------------------------------
    analyze_seconds, catalog = timed(db.analyze)
    snap = db.metrics.snapshot()
    assert snap["analyze.rows_scanned"] >= N_VEHICLES + N_COMPANIES
    # Class stats count *direct* instances; the population spreads the
    # vehicles over the Vehicle hierarchy (each with one drivetrain part),
    # so the hierarchy-wide total is what's exact.
    total_rows = sum(stat.rows for stat in catalog.class_stats.values())
    assert total_rows == 2 * N_VEHICLES + N_COMPANIES
    assert catalog.class_stats["Vehicle"].rows > 0
    weight_index = next(
        stat for stat in catalog.index_stats.values() if stat.path == "weight"
    )
    assert weight_index.entries > 0
    assert weight_index.distinct_keys > 0

    table = [
        (
            "fingerprint sweep (%d shapes x %d)" % (SWEEP_SHAPES, REPEATS),
            "%.1f" % (sweep_seconds * 1e3),
        ),
        ("ANALYZE (%d rows)" % (N_VEHICLES + N_COMPANIES), "%.1f" % (analyze_seconds * 1e3)),
    ]
    print_table("E17 query statistics & ANALYZE", ("phase", "ms"), table)

    emit_bench_artifact(
        "querystats",
        {
            "series": [
                {"plan": "sweep", "ms": sweep_seconds * 1e3},
                {"plan": "analyze", "ms": analyze_seconds * 1e3},
            ],
            "sweep_shapes": SWEEP_SHAPES,
            "repeats": REPEATS,
            "fingerprints": len(rows),
            "analyzed_classes": len(catalog.class_stats),
            "analyzed_indexes": len(catalog.index_stats),
        },
        db,
    )
