"""Shared helpers for the experiment benchmarks (E1-E14 in DESIGN.md).

Each benchmark module reproduces one qualitative claim of the paper and
prints a small table of the series it measured; EXPERIMENTS.md records
the observed numbers against the paper's stated expectations.
"""

import os
import time

import pytest

from repro import Database
from repro.bench.schemas import build_vehicle_schema, populate_vehicles
from repro.obs import write_bench_artifact


def emit_bench_artifact(name, data, db=None):
    """Drop ``BENCH_<name>.json`` next to this suite via the obs exporter.

    ``data`` is the benchmark's measured series; when ``db`` is given its
    engine-internal metric snapshot (buffer faults, lock waits, WAL
    flushes, index probes) rides along so perf PRs diff artifacts rather
    than stdout tables.
    """
    path = write_bench_artifact(
        name,
        data,
        registry=db.metrics if db is not None else None,
        tracer=db.tracer if db is not None else None,
        directory=os.path.dirname(os.path.abspath(__file__)),
    )
    print("bench artifact: %s" % path)
    return path


def timed(fn, *args, **kwargs):
    """(seconds, result) for one call."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def best_of(fn, *args, repeats=3, **kwargs):
    """(best seconds, result) over ``repeats`` calls — robust to GC noise."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        elapsed, result = timed(fn, *args, **kwargs)
        best = min(best, elapsed)
    return best, result


def print_table(title, headers, rows):
    """Render a small aligned table to stdout (visible with -s)."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print("\n== %s ==" % title)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def vehicle_db_2k():
    db = Database()
    build_vehicle_schema(db)
    populate_vehicles(db, n_vehicles=2000, n_companies=40, seed=1990)
    return db


@pytest.fixture
def vehicle_db_small():
    db = Database()
    build_vehicle_schema(db)
    populate_vehicles(db, n_vehicles=400, n_companies=16, seed=1990)
    return db
