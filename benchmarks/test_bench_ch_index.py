"""E2: one class-hierarchy index vs. a forest of single-class indexes.

Section 3.2: "it makes sense to maintain one index on the attribute for
all the classes in the class hierarchy rooted at the target class."  The
relational technique needs one index per class and a probe-and-union at
query time; the class-hierarchy index answers any sub-scope with one
probe.
"""

import pytest
from conftest import print_table, timed

from repro import Database
from repro.bench.schemas import (
    VEHICLE_CLASSES,
    build_vehicle_schema,
    populate_vehicles,
)


def make_db(n):
    db = Database()
    build_vehicle_schema(db)
    populate_vehicles(db, n_vehicles=n, n_companies=20, seed=2)
    return db


def hierarchy_lookup(index, weight, scope):
    return index.lookup_eq(weight, scope)


def forest_lookup(indexes, weight):
    out = []
    for index in indexes:
        out.extend(index.lookup_eq(weight))
    return sorted(set(out))


@pytest.fixture(scope="module")
def setup():
    db = make_db(4000)
    ch_index = db.create_hierarchy_index("Vehicle", "weight")
    forest = [db.create_class_index(cls, "weight") for cls in VEHICLE_CLASSES]
    scope = set(db.schema.hierarchy_of("Vehicle"))
    weights = sorted(
        {s.values["weight"] for s in db.storage.scan_class("Truck")}
    )[:50]
    return db, ch_index, forest, scope, weights


def test_equivalent_answers(setup):
    _db, ch_index, forest, scope, weights = setup
    for weight in weights:
        assert hierarchy_lookup(ch_index, weight, scope) == forest_lookup(forest, weight)


def test_ch_index_probe(setup, benchmark):
    _db, ch_index, _forest, scope, weights = setup
    benchmark(lambda: [hierarchy_lookup(ch_index, w, scope) for w in weights])


def test_index_forest_probe(setup, benchmark):
    _db, _ch_index, forest, _scope, weights = setup
    benchmark(lambda: [forest_lookup(forest, w) for w in weights])


def test_structure_count_and_summary(setup):
    db, ch_index, forest, scope, weights = setup
    t_ch, _ = timed(lambda: [hierarchy_lookup(ch_index, w, scope) for w in weights])
    t_forest, _ = timed(lambda: [forest_lookup(forest, w) for w in weights])
    print_table(
        "E2: hierarchy-scoped equality probes (%d keys, %d vehicles)"
        % (len(weights), db.count("Vehicle")),
        ("structure", "indexes", "entries", "ms"),
        [
            ("class-hierarchy index", 1, len(ch_index), round(t_ch * 1e3, 2)),
            (
                "single-class forest",
                len(forest),
                sum(len(i) for i in forest),
                round(t_forest * 1e3, 2),
            ),
        ],
    )
    # The forest needs 4 structures for the same entries.
    assert len(forest) == len(VEHICLE_CLASSES)
    assert sum(len(i) for i in forest) == len(ch_index)


def test_subscope_filtering_beats_forest_subset(setup):
    """Probing a sub-hierarchy (Automobile + DomesticAutomobile): the CH
    index filters one tree; the forest must pick the right subset of
    structures — and a *mis-scoped* forest query silently returns wrong
    extents, which is the operational pitfall [KIM89b] calls out."""
    db, ch_index, forest, _scope, weights = setup
    sub_scope = set(db.schema.hierarchy_of("Automobile"))
    for weight in weights[:10]:
        via_ch = ch_index.lookup_eq(weight, sub_scope)
        via_subset = sorted(
            set(
                oid
                for index in forest
                if index.target_class in sub_scope
                for oid in index.lookup_eq(weight)
            )
        )
        assert via_ch == via_subset
