"""E9: the OO1-style benchmark of Section 5.6, OODB vs. relational.

The paper calls for "a meaningful and common benchmark for
object-oriented database systems" exercising exactly the operations
relational benchmarks miss: identity lookup, navigational traversal and
connected inserts.  Both engines run the same generated dataset and the
same three operations.
"""

import pytest
from conftest import print_table, timed

from repro import Database
from repro.bench.oo1 import OO1Data, OO1KimDB, OO1Relational
from repro.relational import RelationalEngine
from repro.workspace import ObjectWorkspace

N_PARTS = 1200
LOOKUPS = 200


@pytest.fixture(scope="module")
def runners():
    from repro.storage import StorageManager

    data = OO1Data(N_PARTS, seed=9)
    kim = OO1KimDB(Database(), data)
    # Paged relational engine: both systems pay real storage costs.
    rel = OO1Relational(RelationalEngine(StorageManager(buffer_capacity=256)), data)
    return data, kim, rel


def test_oo1_lookup_kimdb(runners, benchmark):
    data, kim, _rel = runners
    ids = data.random_part_ids(LOOKUPS)
    found = benchmark(lambda: kim.lookup(ids))
    assert found == LOOKUPS


def test_oo1_lookup_relational(runners, benchmark):
    data, _kim, rel = runners
    ids = data.random_part_ids(LOOKUPS)
    found = benchmark(lambda: rel.lookup(ids))
    assert found == LOOKUPS


def test_oo1_traversal_kimdb(runners, benchmark):
    _data, kim, _rel = runners
    workspace = ObjectWorkspace(kim.db, policy="lazy")
    kim.traverse(1, workspace=workspace)
    benchmark(lambda: kim.traverse(1, workspace=workspace))


def test_oo1_traversal_relational(runners, benchmark):
    _data, _kim, rel = runners
    benchmark(lambda: rel.traverse(1))


def test_oo1_summary_table(runners):
    from conftest import best_of

    data, kim, rel = runners
    ids = data.random_part_ids(LOOKUPS, seed=21)
    t_lookup_k, _ = best_of(kim.lookup, ids)
    t_lookup_r, _ = best_of(rel.lookup, ids)
    workspace = ObjectWorkspace(kim.db, policy="lazy")
    visited_cold = kim.traverse(2, workspace=workspace)
    t_trav_k, visited_k = best_of(kim.traverse, 2, 7, workspace)
    t_trav_r, visited_r = best_of(rel.traverse, 2)
    assert visited_k == visited_r
    t_insert_k, _ = timed(kim.insert, 50)
    t_insert_r, _ = timed(rel.insert, 50)
    print_table(
        "E9: OO1 (%d parts, %d lookups, depth-7 traversal, 50 inserts)"
        % (N_PARTS, LOOKUPS),
        ("operation", "kimdb ms", "relational ms"),
        [
            ("lookup", round(t_lookup_k * 1e3, 1), round(t_lookup_r * 1e3, 1)),
            ("traversal (%d visits)" % visited_k, round(t_trav_k * 1e3, 1), round(t_trav_r * 1e3, 1)),
            ("insert", round(t_insert_k * 1e3, 1), round(t_insert_r * 1e3, 1)),
        ],
    )
    # OO1's signature result: the OODB wins traversal decisively; the
    # relational engine is competitive (or better) on flat lookups.
    assert t_trav_k < t_trav_r
    assert visited_cold > 0
