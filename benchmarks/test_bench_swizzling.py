"""E5: memory-resident object management — the order-of-magnitude claim.

Section 4.2: "the overhead incurred to access a memory-resident object
is still an order of magnitude higher than what is necessary for these
applications, running without an underlying database system, to access
an object in virtual memory by a few memory lookups."

Three access paths over the same hot set:

* unswizzled — every dereference goes back through the database layer;
* swizzled   — workspace with direct pointers after first touch;
* raw        — plain Python dicts, no database at all (the ceiling).
"""

import pytest
from conftest import print_table, timed

from repro import AttributeDef, Database
from repro.core.oid import OID
from repro.workspace import ObjectWorkspace

CHAIN = 400
PASSES = 30


@pytest.fixture(scope="module")
def chain_db():
    db = Database(use_locks=False)
    db.define_class(
        "Node",
        attributes=[AttributeDef("payload", "Integer"), AttributeDef("next", "Node")],
    )
    previous = None
    oids = []
    for position in reversed(range(CHAIN)):
        handle = db.new("Node", {"payload": position, "next": previous})
        previous = handle.oid
        oids.append(handle.oid)
    return db, previous  # head


def traverse_unswizzled(db, head):
    total = 0
    oid = head
    while oid is not None:
        state = db.get_state(oid)
        total += state.values["payload"]
        oid = state.values["next"]
    return total


def traverse_swizzled(workspace, head):
    total = 0
    node = workspace.load(head)
    while node is not None:
        total += node["payload"]
        node = node.ref("next")
    return total


def build_raw(db, head):
    nodes = {}
    oid = head
    order = []
    while oid is not None:
        state = db.get_state(oid)
        nodes[oid] = {"payload": state.values["payload"], "next": state.values["next"]}
        order.append(oid)
        oid = state.values["next"]
    for record in nodes.values():
        record["next"] = nodes.get(record["next"])
    return nodes[head]


def traverse_raw(head_record):
    total = 0
    node = head_record
    while node is not None:
        total += node["payload"]
        node = node["next"]
    return total


def test_unswizzled_traversal(chain_db, benchmark):
    db, head = chain_db
    benchmark(lambda: [traverse_unswizzled(db, head) for _ in range(PASSES)])


def test_swizzled_traversal(chain_db, benchmark):
    db, head = chain_db
    workspace = ObjectWorkspace(db, policy="lazy")
    traverse_swizzled(workspace, head)  # fault everything in once
    benchmark(lambda: [traverse_swizzled(workspace, head) for _ in range(PASSES)])


def test_raw_python_traversal(chain_db, benchmark):
    db, head = chain_db
    head_record = build_raw(db, head)
    benchmark(lambda: [traverse_raw(head_record) for _ in range(PASSES)])


def test_policy_ablation_and_summary(chain_db):
    db, head = chain_db
    expected = CHAIN * (CHAIN - 1) // 2

    t_unswizzled, total_u = timed(
        lambda: [traverse_unswizzled(db, head) for _ in range(PASSES)]
    )

    lazy = ObjectWorkspace(db, policy="lazy")
    t_cold, total_cold = timed(lambda: traverse_swizzled(lazy, head))
    t_hot, total_hot = timed(
        lambda: [traverse_swizzled(lazy, head) for _ in range(PASSES)]
    )

    eager = ObjectWorkspace(db, policy="eager")
    timed(lambda: eager.load(head))  # eager load pulls the chain closure
    t_eager_hot, _ = timed(
        lambda: [traverse_swizzled(eager, head) for _ in range(PASSES)]
    )

    head_record = build_raw(db, head)
    t_raw, total_raw = timed(lambda: [traverse_raw(head_record) for _ in range(PASSES)])

    assert total_u[0] == total_cold == total_hot[0] == total_raw[0] == expected

    per_pass = lambda t: round(t / PASSES * 1e6, 1)
    print_table(
        "E5: %d-node chain traversal (%d hot passes)" % (CHAIN, PASSES),
        ("access path", "us/pass", "vs raw"),
        [
            ("database layer (unswizzled)", per_pass(t_unswizzled),
             round(t_unswizzled / t_raw, 1)),
            ("workspace lazy, cold (faulting)", round(t_cold * 1e6, 1), "-"),
            ("workspace lazy, hot (swizzled)", per_pass(t_hot), round(t_hot / t_raw, 1)),
            ("workspace eager, hot", per_pass(t_eager_hot), round(t_eager_hot / t_raw, 1)),
            ("raw Python objects", per_pass(t_raw), 1.0),
        ],
    )
    # Shape assertions: swizzled beats unswizzled by a wide margin, and
    # raw in-memory access still beats the swizzled workspace (the
    # residual overhead the paper says CAx applications balk at).
    assert t_hot < t_unswizzled / 3
    assert t_raw < t_hot
