"""Lock escalation, range estimation, change_domain, explain analyze,
paged relational tables, WAL-truncation fuzzing."""

import random

import pytest

from repro import AttributeDef, Database
from repro.errors import SchemaEvolutionError
from repro.evolution import SchemaEvolution
from repro.index.btree import BTree
from repro.core.oid import OID
from repro.relational import RelationalEngine
from repro.storage import StorageManager


class TestLockEscalation:
    @pytest.fixture
    def edb(self):
        db = Database()
        db.lock_escalation_threshold = 10
        db.define_class("Item", attributes=[AttributeDef("n", "Integer")])
        return db

    def test_escalates_to_class_lock(self, edb):
        oids = [edb.new("Item", {"n": i}).oid for i in range(30)]
        with edb.transaction() as txn:
            for oid in oids:
                edb.update(oid, {"n": 0})
            # Past the threshold the class holds an exclusive lock and
            # object locks stop accumulating.
            assert edb.locks.holds(txn.txn_id, ("class", "Item"), "X")
            object_locks = [
                resource
                for resource, _mode in edb.locks.locks_held(txn.txn_id)
                if resource[0] == "object"
            ]
            assert len(object_locks) < 30
            txn.abort()

    def test_escalated_class_lock_blocks_other_writers(self, edb):
        oids = [edb.new("Item", {"n": i}).oid for i in range(15)]
        txn = edb.transaction()
        for oid in oids:
            edb.update(oid, {"n": 0})
        from repro.errors import LockTimeoutError

        with pytest.raises(LockTimeoutError):
            edb.locks.acquire(9999, ("class", "Item"), "IX", timeout=0.05)
        txn.abort()

    def test_no_escalation_below_threshold(self, edb):
        oids = [edb.new("Item", {"n": i}).oid for i in range(5)]
        with edb.transaction() as txn:
            for oid in oids:
                edb.update(oid, {"n": 0})
            assert not edb.locks.holds(txn.txn_id, ("class", "Item"), "X")
            txn.abort()


class TestRangeEstimation:
    def test_uniform_keys_interpolate(self):
        tree = BTree()
        for value in range(1000):
            tree.insert(value, "A", OID(value + 1))
        estimate = tree.estimate_range(low=900)
        assert 50 <= estimate <= 200  # true answer: 100

    def test_bounded_range(self):
        tree = BTree()
        for value in range(1000):
            tree.insert(value, "A", OID(value + 1))
        estimate = tree.estimate_range(low=250, high=500)
        assert 150 <= estimate <= 400  # true answer: 251

    def test_out_of_span_range_is_zero(self):
        tree = BTree()
        for value in range(100):
            tree.insert(value, "A", OID(value + 1))
        assert tree.estimate_range(low=1000) == 0

    def test_string_keys_fall_back(self):
        tree = BTree()
        for value in range(90):
            tree.insert("k%03d" % value, "A", OID(value + 1))
        assert tree.estimate_range(low="k010") == 30  # total // 3

    def test_empty_tree(self):
        assert BTree().estimate_range() == 0

    def test_planner_prefers_tight_ranges(self):
        db = Database(use_locks=False)
        db.define_class("Row", attributes=[AttributeDef("v", "Integer")])
        for value in range(2000):
            db.new("Row", {"v": value})
        db.create_hierarchy_index("Row", "v")
        tight = db.plan("SELECT r FROM Row r WHERE r.v > 1990")
        loose = db.plan("SELECT r FROM Row r WHERE r.v > 10")
        assert tight.estimated_cost < loose.estimated_cost
        assert "index-range" in tight.access.description
        # Nearly-whole-extent range falls back to a scan.
        assert "scan" in loose.access.description


class TestChangeDomain:
    @pytest.fixture
    def ddb(self):
        db = Database()
        db.define_class("Company")
        db.define_class("AutoCompany", superclasses=("Company",))
        db.define_class(
            "Vehicle", attributes=[AttributeDef("maker", "Company")]
        )
        return db

    def test_narrowing_with_conforming_instances(self, ddb):
        auto = ddb.new("AutoCompany")
        ddb.new("Vehicle", {"maker": auto.oid})
        evolution = SchemaEvolution(ddb)
        checked = evolution.change_domain("Vehicle", "maker", "AutoCompany")
        assert checked == 1
        assert ddb.schema.attribute("Vehicle", "maker").domain == "AutoCompany"

    def test_narrowing_with_violating_instance_refused(self, ddb):
        plain = ddb.new("Company")
        vehicle = ddb.new("Vehicle", {"maker": plain.oid})
        evolution = SchemaEvolution(ddb)
        with pytest.raises(SchemaEvolutionError):
            evolution.change_domain("Vehicle", "maker", "AutoCompany")
        # Nothing changed.
        assert ddb.schema.attribute("Vehicle", "maker").domain == "Company"
        assert ddb.exists(vehicle.oid)

    def test_unknown_domain_rejected(self, ddb):
        evolution = SchemaEvolution(ddb)
        with pytest.raises(SchemaEvolutionError):
            evolution.change_domain("Vehicle", "maker", "Ghost")

    def test_widening_always_allowed(self, ddb):
        auto = ddb.new("AutoCompany")
        ddb.new("Vehicle", {"maker": auto.oid})
        evolution = SchemaEvolution(ddb)
        evolution.change_domain("Vehicle", "maker", "Any")
        assert ddb.schema.attribute("Vehicle", "maker").domain == "Any"


class TestExplainAnalyze:
    def test_reports_plan_and_stats(self):
        db = Database()
        db.define_class("T", attributes=[AttributeDef("n", "Integer")])
        for value in range(50):
            db.new("T", {"n": value})
        db.create_hierarchy_index("T", "n")
        report = db.explain_analyze("SELECT t FROM T t WHERE t.n = 7")
        assert "index-eq" in report
        assert "objects examined: 1" in report
        assert "objects matched: 1" in report
        assert "index probes: 1" in report


class TestPagedRelationalTables:
    @pytest.fixture
    def paged(self):
        engine = RelationalEngine(StorageManager(buffer_capacity=8))
        engine.create_table(
            "t", [("k", "int"), ("s", "str")], primary_key="k"
        )
        for key in range(200):
            engine.insert("t", {"k": key, "s": "row-%d" % key})
        return engine

    def test_rows_live_on_pages(self, paged):
        table = paged.table("t")
        assert table.paged
        assert paged.storage.heap_for("table:t").page_count > 1

    def test_scan_and_pk_probe(self, paged):
        assert sum(1 for _ in paged.scan("t")) == 200
        assert paged.table("t").by_primary_key(123)["s"] == "row-123"

    def test_update_and_delete(self, paged):
        table = paged.table("t")
        row_id = next(rid for rid, row in table.scan() if row["k"] == 5)
        table.update(row_id, {"s": "changed"})
        assert table.get(row_id)["s"] == "changed"
        table.delete(row_id)
        assert table.by_primary_key(5) is None
        assert len(table) == 199

    def test_secondary_index_on_paged_table(self, paged):
        table = paged.table("t")
        table.create_index("s")
        assert table.index_lookup("s", "row-7")[0]["k"] == 7

    def test_joins_over_paged_tables(self, paged):
        paged.create_table("u", [("k", "int"), ("extra", "str")], primary_key="k")
        for key in range(0, 200, 2):
            paged.insert("u", {"k": key, "extra": "even"})
        joined = paged.join(list(paged.scan("u")), "k", "t", "k")
        assert len(joined) == 100
        assert all(row["extra"] == "even" for row in joined)


class TestWalTruncationFuzz:
    @pytest.mark.parametrize("seed", range(5))
    def test_any_log_prefix_recovers_consistently(self, tmp_path, seed):
        """Cutting the WAL at a random byte must never crash recovery and
        must yield a transaction-consistent prefix of the history."""
        import os

        path = str(tmp_path / ("fuzz-%d.pages" % seed))
        db = Database(path, sync_on_commit=False)
        db.define_class("Item", attributes=[AttributeDef("n", "Integer")])
        db.checkpoint()
        committed_states = []  # snapshot after each commit
        state = {}
        rng = random.Random(seed)
        for batch in range(10):
            with db.transaction():
                for _ in range(rng.randrange(1, 4)):
                    handle = db.new("Item", {"n": rng.randrange(100)})
                    state[handle.oid] = handle["n"]
            committed_states.append(dict(state))
        db.storage.buffer.flush_all()
        db.storage.save_metadata()
        db.storage.pager.close()
        db.wal.close()

        wal_path = path + ".wal"
        full = open(wal_path, "rb").read()
        cut = rng.randrange(1, len(full))
        with open(wal_path, "wb") as handle:
            handle.write(full[:cut])

        reopened = Database(path)
        survived = {
            s.oid: s.values["n"] for s in reopened.storage.scan_class("Item")
        }
        assert survived in ([{}] + committed_states), (
            "recovered state is not a committed prefix (cut at %d)" % cut
        )
        reopened.close()
