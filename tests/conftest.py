"""Shared fixtures for the kimdb test suite."""

import pytest

from repro import AttributeDef, Database
from repro.bench.schemas import build_vehicle_schema, populate_vehicles


@pytest.fixture
def db():
    """An ephemeral in-memory database."""
    database = Database()
    yield database


@pytest.fixture
def vehicle_db():
    """In-memory database with the Figure 1 schema, unpopulated."""
    database = Database()
    build_vehicle_schema(database)
    return database


@pytest.fixture
def populated_db():
    """Figure 1 schema with a deterministic medium population."""
    database = Database()
    build_vehicle_schema(database)
    oids = populate_vehicles(database, n_vehicles=200, n_companies=12, seed=1990)
    database.fixture_oids = oids
    return database


@pytest.fixture
def durable_path(tmp_path):
    """Path for a durable database's page file."""
    return str(tmp_path / "kimdb.pages")


@pytest.fixture
def shape_db():
    """Database with a tiny Shape hierarchy exercising methods."""
    from repro import MethodDef

    database = Database()

    def display(receiver):
        return "Shape@%s" % (receiver["name"],)

    def area(receiver):
        return 0

    database.define_class(
        "Shape",
        attributes=[AttributeDef("name", "String")],
        methods=[MethodDef("display", display), MethodDef("area", area)],
    )

    def rect_area(receiver):
        return receiver["width"] * receiver["height"]

    database.define_class(
        "RectangleShape",
        superclasses=("Shape",),
        attributes=[
            AttributeDef("width", "Integer", default=1),
            AttributeDef("height", "Integer", default=1),
        ],
        methods=[MethodDef("area", rect_area)],
    )

    def square_display(receiver):
        return "Square@%s" % (receiver["name"],)

    database.define_class(
        "Square",
        superclasses=("RectangleShape",),
        methods=[MethodDef("display", square_display)],
    )
    return database
