"""Semantic modeling extensions: roles [PERN90] and temporal data."""

import pytest

from repro import AttributeDef, Database
from repro.errors import KimDBError, SchemaError
from repro.semantics import attach_roles, attach_temporal


@pytest.fixture
def rdb():
    db = Database()
    attach_roles(db)
    db.define_class(
        "Person",
        attributes=[AttributeDef("name", "String", required=True)],
    )
    db.roles.define_role(
        "Employee",
        "Person",
        [AttributeDef("salary", "Integer"), AttributeDef("dept", "String")],
    )
    db.roles.define_role(
        "Customer", "Person", [AttributeDef("discount", "Integer", default=0)]
    )
    return db


class TestRoles:
    def test_role_class_created(self, rdb):
        assert rdb.schema.has_class("EmployeeRole")
        assert rdb.schema.attribute("EmployeeRole", "player").domain == "Person"

    def test_play_and_read_role(self, rdb):
        ann = rdb.new("Person", {"name": "ann"})
        rdb.roles.add_role(ann.oid, "Employee", {"salary": 50000, "dept": "eng"})
        assert rdb.roles.plays(ann.oid, "Employee")
        assert rdb.roles.get(ann.oid, "Employee", "salary") == 50000

    def test_multiple_roles_simultaneously(self, rdb):
        ann = rdb.new("Person", {"name": "ann"})
        rdb.roles.add_role(ann.oid, "Employee", {"salary": 1})
        rdb.roles.add_role(ann.oid, "Customer", {"discount": 10})
        assert rdb.roles.roles_of(ann.oid) == ["Customer", "Employee"]
        # Player identity and class are untouched (core concept 3 holds).
        assert rdb.class_of(ann.oid) == "Person"

    def test_duplicate_role_rejected(self, rdb):
        ann = rdb.new("Person", {"name": "ann"})
        rdb.roles.add_role(ann.oid, "Employee", {"salary": 1})
        with pytest.raises(SchemaError):
            rdb.roles.add_role(ann.oid, "Employee", {"salary": 2})

    def test_wrong_player_class_rejected(self, rdb):
        rdb.define_class("Robot")
        bot = rdb.new("Robot")
        with pytest.raises(SchemaError):
            rdb.roles.add_role(bot.oid, "Employee")

    def test_subclass_players_allowed(self, rdb):
        rdb.define_class("Manager", superclasses=("Person",))
        boss = rdb.new("Manager", {"name": "boss"})
        rdb.roles.add_role(boss.oid, "Employee", {"salary": 2})
        assert rdb.roles.plays(boss.oid, "Employee")

    def test_update_role_state(self, rdb):
        ann = rdb.new("Person", {"name": "ann"})
        rdb.roles.add_role(ann.oid, "Employee", {"salary": 1})
        rdb.roles.set(ann.oid, "Employee", {"salary": 99})
        assert rdb.roles.get(ann.oid, "Employee", "salary") == 99

    def test_drop_role(self, rdb):
        ann = rdb.new("Person", {"name": "ann"})
        role_oid = rdb.roles.add_role(ann.oid, "Employee", {"salary": 1})
        rdb.roles.drop_role(ann.oid, "Employee")
        assert not rdb.roles.plays(ann.oid, "Employee")
        assert not rdb.exists(role_oid)

    def test_player_delete_cascades_roles(self, rdb):
        ann = rdb.new("Person", {"name": "ann"})
        role_oid = rdb.roles.add_role(ann.oid, "Employee", {"salary": 1})
        rdb.delete(ann.oid)
        assert not rdb.exists(role_oid)

    def test_players_listing(self, rdb):
        people = [rdb.new("Person", {"name": "p%d" % i}) for i in range(3)]
        for person in people[:2]:
            rdb.roles.add_role(person.oid, "Employee", {"salary": 1})
        assert rdb.roles.players("Employee") == sorted(p.oid for p in people[:2])

    def test_query_role_predicate(self, rdb):
        rich = rdb.new("Person", {"name": "rich"})
        poor = rdb.new("Person", {"name": "poor"})
        rdb.roles.add_role(rich.oid, "Employee", {"salary": 90000})
        rdb.roles.add_role(poor.oid, "Employee", {"salary": 100})
        assert rdb.roles.query_role("Employee", "r.salary > 50000") == [rich.oid]

    def test_unknown_role_rejected(self, rdb):
        ann = rdb.new("Person", {"name": "ann"})
        with pytest.raises(SchemaError):
            rdb.roles.add_role(ann.oid, "Astronaut")


@pytest.fixture
def tdb():
    db = Database()
    attach_temporal(db)
    db.define_class(
        "Stock",
        attributes=[AttributeDef("symbol", "String"), AttributeDef("price", "Integer")],
    )
    return db


class TestTemporal:
    def test_history_recorded(self, tdb):
        stock = tdb.new("Stock", {"symbol": "KIM", "price": 10})
        tdb.update(stock.oid, {"price": 20})
        tdb.update(stock.oid, {"price": 30})
        history = tdb.temporal.history_of(stock.oid)
        assert [entry.state.values["price"] for entry in history] == [10, 20, 30]

    def test_as_of_reads_past_state(self, tdb):
        stock = tdb.new("Stock", {"symbol": "KIM", "price": 10})
        t1 = tdb.temporal.now
        tdb.update(stock.oid, {"price": 20})
        t2 = tdb.temporal.now
        tdb.update(stock.oid, {"price": 30})
        assert tdb.temporal.value_as_of(stock.oid, "price", t1) == 10
        assert tdb.temporal.value_as_of(stock.oid, "price", t2) == 20
        assert tdb.temporal.value_as_of(stock.oid, "price", tdb.temporal.now) == 30

    def test_before_birth_is_none(self, tdb):
        marker = tdb.temporal.now
        stock = tdb.new("Stock", {"symbol": "KIM", "price": 10})
        assert tdb.temporal.as_of(stock.oid, marker) is None
        with pytest.raises(KimDBError):
            tdb.temporal.value_as_of(stock.oid, "price", marker)

    def test_deleted_object_still_queryable_in_past(self, tdb):
        stock = tdb.new("Stock", {"symbol": "KIM", "price": 10})
        alive_at = tdb.temporal.now
        tdb.delete(stock.oid)
        assert not tdb.exists(stock.oid)
        past = tdb.temporal.as_of(stock.oid, alive_at)
        assert past.values["price"] == 10
        assert tdb.temporal.as_of(stock.oid, tdb.temporal.now) is None

    def test_lifetime(self, tdb):
        stock = tdb.new("Stock", {"symbol": "KIM", "price": 10})
        birth, death = tdb.temporal.lifetime_of(stock.oid)
        assert birth is not None and death is None
        tdb.delete(stock.oid)
        birth2, death2 = tdb.temporal.lifetime_of(stock.oid)
        assert birth2 == birth and death2 is not None

    def test_extent_as_of(self, tdb):
        a = tdb.new("Stock", {"symbol": "A", "price": 1})
        t1 = tdb.temporal.now
        b = tdb.new("Stock", {"symbol": "B", "price": 2})
        tdb.delete(a.oid)
        assert tdb.temporal.extent_as_of("Stock", t1) == [a.oid]
        assert tdb.temporal.extent_as_of("Stock", tdb.temporal.now) == [b.oid]

    def test_changed_between(self, tdb):
        a = tdb.new("Stock", {"symbol": "A", "price": 1})
        t1 = tdb.temporal.now
        tdb.update(a.oid, {"price": 2})
        b = tdb.new("Stock", {"symbol": "B", "price": 1})
        t2 = tdb.temporal.now
        assert tdb.temporal.changed_between(t1, t2) == sorted([a.oid, b.oid])
        assert tdb.temporal.changed_between(t2, t2 + 10) == []

    def test_aborted_transactions_leave_compensated_history(self, tdb):
        stock = tdb.new("Stock", {"symbol": "KIM", "price": 10})
        txn = tdb.transaction()
        tdb.update(stock.oid, {"price": 999})
        txn.abort()
        # The abort's compensation is itself recorded; the latest state
        # as of "now" is the committed one.
        assert tdb.temporal.value_as_of(stock.oid, "price", tdb.temporal.now) == 10

    def test_rollup_snapshot_count(self, tdb):
        stock = tdb.new("Stock", {"symbol": "KIM", "price": 10})
        for price in range(5):
            tdb.update(stock.oid, {"price": price})
        assert tdb.temporal.snapshot_count() == 6
