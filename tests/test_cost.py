"""The statistics-driven cost model (``repro.query.cost``).

Covers the PR-10 optimizer tentpole:

* selectivity estimation — equality via distinct-key counts, ranges via
  the equi-depth histogram with *provable* bounds (hypothesis checks
  ``floor <= true <= ceiling`` on randomized distributions);
* access-path choice — selective probes win, unselective predicates
  fall back to the scan even with an index available, ORDER BY + LIMIT
  walks the index only when the limit is small enough to pay off;
* oracle parity — the cost model may change *plans* but never query
  *results* (hypothesis compares against a forced extent scan);
* the staleness contract — a moved schema version or index epoch drops
  the model back to heuristics, with the EXPLAIN warning and the
  ``stale`` column on SysClassStat / SysIndexStat;
* the plan-cache re-cost protocol — a fresh ANALYZE re-costs cached
  entries, keeping stable winners and invalidating flipped ones;
* the ``query.cost.*`` metric family and the EXPLAIN ``-- cost --``
  section (estimated vs. SysQueryStat-observed rows);
* the ``python -m repro.tools.analyze --demo --explain`` CI smoke.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AttributeDef, Database
from repro.obs.stats import IndexStat, equi_depth_histogram
from repro.query.ast import And, Comparison, Const, Path, Query
from repro.query.cost import (
    CostModel,
    equality_rows,
    range_estimate,
)
from repro.query.planner import (
    ExtentScan,
    IndexEqProbe,
    IndexOrderScan,
    IndexRangeProbe,
)


def _stat_for(values, buckets=8):
    counts = sorted(Counter(values).items())
    boundaries, depths = equi_depth_histogram(counts, buckets)
    return IndexStat(
        "idx",
        "single-class",
        "C",
        "a",
        len(values),
        len(counts),
        boundaries,
        min(values),
        max(values),
        depths=depths,
    )


def _db(rows, index=True, **kwargs):
    db = Database(use_locks=False, **kwargs)
    db.define_class(
        "Item",
        attributes=[
            AttributeDef("a", "Integer"),
            AttributeDef("b", "Integer", default=0),
        ],
    )
    for row in rows:
        db.new("Item", row if isinstance(row, dict) else {"a": row})
    if index:
        db.create_class_index("Item", "a")
    return db


# -- histogram estimates (property) ------------------------------------------


class TestHistogramProperties:
    @given(
        values=st.lists(st.integers(-500, 500), min_size=1, max_size=300),
        buckets=st.integers(2, 16),
        bound_a=st.integers(-600, 600),
        bound_b=st.integers(-600, 600),
        include_low=st.booleans(),
        include_high=st.booleans(),
    )
    @settings(max_examples=300, deadline=None)
    def test_true_count_within_floor_and_ceiling(
        self, values, buckets, bound_a, bound_b, include_low, include_high
    ):
        low, high = min(bound_a, bound_b), max(bound_a, bound_b)
        stat = _stat_for(values, buckets)
        estimate = range_estimate(stat, low, include_low, high, include_high)
        true = sum(
            1
            for v in values
            if (v > low or (include_low and v == low))
            and (v < high or (include_high and v == high))
        )
        assert estimate.floor - 1e-9 <= true <= estimate.ceiling + 1e-9
        assert estimate.rows == pytest.approx(
            (estimate.floor + estimate.ceiling) / 2.0
        )

    @given(values=st.lists(st.integers(-100, 100), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_whole_domain_estimate_is_exact(self, values):
        stat = _stat_for(values)
        estimate = range_estimate(stat, None, True, None, True)
        assert estimate.floor == estimate.ceiling == len(values)
        assert estimate.rows == len(values)

    def test_equality_average_duplication_and_domain_clamp(self):
        stat = _stat_for([1, 1, 2, 2, 3, 3])
        assert equality_rows(stat, 2) == pytest.approx(2.0)
        assert equality_rows(stat, 99) == 0.0  # above the indexed domain
        assert equality_rows(stat, -1) == 0.0  # below it


# -- oracle parity (property): plan choice never changes results -------------


class TestOracleParity:
    @given(
        values=st.lists(st.integers(0, 30), min_size=1, max_size=60),
        op=st.sampled_from(["=", "!=", "<", "<=", ">", ">=", "in"]),
        constant=st.integers(-2, 32),
        second=st.one_of(st.none(), st.integers(0, 32)),
    )
    @settings(max_examples=25, deadline=None)
    def test_cost_model_plans_match_forced_scan(
        self, values, op, constant, second
    ):
        db = _db(values)
        db.analyze()
        const = [constant, constant + 3] if op == "in" else constant
        where = Comparison(op, Path(("a",)), Const(const))
        if second is not None:
            where = And([where, Comparison(">=", Path(("a",)), Const(second))])
        query = Query("Item", where=where)
        plan = db.plan(query)
        # Contradictions may be rewritten away before costing; every
        # query that *does* reach the planner must be stats-costed.
        assert plan.cost is None or plan.cost.mode == "statistics"
        chosen = db.execute(query)
        forced_plan = db.planner.plan(Query("Item", where=where))
        forced_plan.access = ExtentScan(sorted(forced_plan.scope))
        forced_plan.residual = where
        forced = db._executor.execute(forced_plan)
        assert sorted(chosen.oids) == sorted(forced.oids)
        db.close()


# -- access-path decisions ---------------------------------------------------


class TestCostDecisions:
    def test_selective_equality_probes_the_index(self):
        db = _db(list(range(200)))
        db.analyze()
        plan = db.plan("SELECT i FROM Item i WHERE i.a = 7")
        assert isinstance(plan.access, IndexEqProbe)
        assert plan.cost.mode == "statistics"
        assert plan.cost.chosen.kind == "index-eq"
        assert len(plan.cost.candidates) == 2

    def test_unselective_equality_prefers_scan_despite_index(self):
        db = _db([5] * 200)  # every row has a = 5
        db.analyze()
        plan = db.plan("SELECT i FROM Item i WHERE i.a = 5")
        assert isinstance(plan.access, ExtentScan)
        assert plan.cost.mode == "statistics"
        by_kind = {c.kind: c for c in plan.cost.candidates}
        assert by_kind["extent-scan"].total < by_kind["index-eq"].total

    def test_narrow_range_probes_wide_range_scans(self):
        db = _db(list(range(400)))
        db.analyze()
        narrow = db.plan("SELECT i FROM Item i WHERE i.a >= 395")
        wide = db.plan("SELECT i FROM Item i WHERE i.a >= 5")
        assert isinstance(narrow.access, IndexRangeProbe)
        assert isinstance(wide.access, ExtentScan)

    def test_ordered_walk_only_when_limit_is_small(self):
        db = _db(list(range(300)))
        db.analyze()
        small = db.plan("SELECT i FROM Item i ORDER BY i.a LIMIT 5")
        large = db.plan("SELECT i FROM Item i ORDER BY i.a LIMIT 300")
        assert isinstance(small.access, IndexOrderScan)
        assert isinstance(large.access, ExtentScan)

    def test_no_statistics_means_no_decision(self):
        db = _db(list(range(50)))
        plan = db.plan("SELECT i FROM Item i WHERE i.a = 7")
        assert plan.cost is None

    def test_missing_class_stat_falls_back(self):
        db = _db(list(range(50)))
        db.analyze()
        del db.statistics.class_stats["Item"]
        plan = db.plan("SELECT i FROM Item i WHERE i.a = 7")
        assert plan.cost is not None and plan.cost.mode == "heuristic"
        assert "missing from the ANALYZE catalog" in plan.cost.reason

    def test_conjunction_uses_independence_product(self):
        db = _db([{"a": i, "b": i % 2} for i in range(100)])
        db.analyze()
        model = CostModel(db.schema, db.indexes, db.statistics)
        where = And(
            [
                Comparison("=", Path(("a",)), Const(5)),
                Comparison("=", Path(("b",)), Const(1)),
            ]
        )
        decision = model.decide(Query("Item", where=where), {"Item"})
        # sel(a=5) = 1/100; sel(b=1) has no index -> default 0.1.
        assert decision.estimated_rows == pytest.approx(100 * 0.01 * 0.1)

    def test_snapshot_downgrade_hint_prices_probe_as_scan(self):
        db = _db(list(range(100)))
        db.analyze()
        with db.transaction():
            items = db.select("Item where a = 0")
            db.update(items[0].oid, {"a": 1000})
            # Version entries are live inside the transaction: a fresh
            # plan must price the index probe at scan cost and scan.
            db.plan_cache.clear()
            plan = db.plan("SELECT i FROM Item i WHERE i.a = 7")
            assert isinstance(plan.access, ExtentScan)
            probe = [c for c in plan.cost.candidates if c.kind == "index-eq"][0]
            assert "would execute as an extent scan" in probe.note
        # After commit the entries are reclaimed; the probe wins again.
        db.plan_cache.clear()
        plan = db.plan("SELECT i FROM Item i WHERE i.a = 7")
        assert isinstance(plan.access, IndexEqProbe)


# -- staleness ---------------------------------------------------------------


class TestStaleness:
    def test_index_epoch_move_falls_back_with_explain_warning(self):
        db = _db(list(range(100)))
        db.analyze()
        db.create_class_index("Item", "b")  # bumps the index epoch
        explain = db.explain("SELECT i FROM Item i WHERE i.a = 7")
        assert explain.plan.cost.mode == "heuristic"
        assert explain.plan.cost.stale_reason is not None
        text = explain.render()
        assert "-- cost --" in text
        assert "WARNING: statistics are stale" in text
        assert "index epoch moved" in text

    def test_sysviews_surface_stale_reason(self):
        db = _db(list(range(50)))
        db.analyze()
        fresh = db.select("SysClassStat")
        assert fresh and fresh[0]["stale"] == ""
        db.create_class_index("Item", "b")
        stale_rows = db.select("SysClassStat")
        assert "index epoch moved" in stale_rows[0]["stale"]
        index_rows = db.select("SysIndexStat")
        assert all("index epoch moved" in row["stale"] for row in index_rows)

    def test_reanalyze_clears_staleness(self):
        db = _db(list(range(50)))
        db.analyze()
        db.create_class_index("Item", "b")
        db.analyze()
        plan = db.plan("SELECT i FROM Item i WHERE i.a = 7")
        assert plan.cost.mode == "statistics"
        assert db.select("SysClassStat")[0]["stale"] == ""


# -- plan-cache re-cost protocol ---------------------------------------------


class TestPlanCacheRecost:
    SOURCE = "SELECT i FROM Item i WHERE i.a = 5"

    def test_stable_winner_survives_reanalyze(self):
        db = _db(list(range(100)))
        db.analyze()
        plan = db.plan(self.SOURCE)
        assert isinstance(plan.access, IndexEqProbe)
        db.analyze()  # nothing changed: the entry must survive
        assert db.metrics.counter("query.cost.plan_cache_recosts").value >= 1
        assert db.metrics.counter("query.cost.plan_cache_flips").value == 0
        again = db.plan(self.SOURCE)
        assert again.cached and isinstance(again.access, IndexEqProbe)

    def test_flipped_winner_is_invalidated(self):
        db = _db([5] * 100)
        db.analyze()
        plan = db.plan(self.SOURCE)
        assert isinstance(plan.access, ExtentScan)  # a=5 matches everything
        # Make the column selective, then re-ANALYZE: the winner flips
        # to the index probe and the cached scan entry must be dropped.
        for position, item in enumerate(db.select("Item")):
            db.update(item.oid, {"a": position})
        db.analyze()
        assert db.metrics.counter("query.cost.plan_cache_flips").value >= 1
        fresh = db.plan(self.SOURCE)
        assert not fresh.cached
        assert isinstance(fresh.access, IndexEqProbe)
        assert db.execute(self.SOURCE).stats.matched == 1

    def test_sysplancache_reports_cost_mode(self):
        db = _db(list(range(50)))
        db.analyze()
        db.plan(self.SOURCE)
        rows = db.select("SysPlanCache")
        assert rows and rows[0]["cost_mode"] == "statistics"


# -- metrics and EXPLAIN feedback --------------------------------------------


class TestCostObservability:
    def test_query_cost_metric_family(self):
        db = _db(list(range(100)))
        heuristic_before = db.metrics.counter(
            "query.cost.decisions_heuristic"
        ).value
        db.execute("SELECT i FROM Item i WHERE i.a = 7")
        assert (
            db.metrics.counter("query.cost.decisions_heuristic").value
            == heuristic_before + 1
        )
        db.analyze()
        db.execute("SELECT i FROM Item i WHERE i.a = 8")
        assert db.metrics.counter("query.cost.decisions_statistics").value == 1
        assert db.metrics.counter("query.cost.candidates").value == 2
        assert db.metrics.counter("query.cost.estimated_rows").value == 1
        assert db.metrics.counter("query.cost.actual_rows").value == 1
        db.create_class_index("Item", "b")
        db.execute("SELECT i FROM Item i WHERE i.a = 9")
        assert db.metrics.counter("query.cost.stale_fallbacks").value == 1

    def test_explain_shows_estimated_vs_observed(self):
        db = _db(list(range(80)))
        db.analyze()
        source = "SELECT i FROM Item i WHERE i.a < 4"
        db.execute(source)
        text = db.explain(source).render()
        assert "-- cost --" in text
        assert "model: statistics" in text
        assert "<- chosen" in text
        assert "observed (SysQueryStat" in text
        assert "estimated/observed rows:" in text

    def test_explain_without_stats_names_the_remedy(self):
        db = _db(list(range(10)))
        text = db.explain("SELECT i FROM Item i WHERE i.a = 1").render()
        assert "-- cost --" in text
        assert "run Database.analyze()" in text


# -- the CI plan-quality smoke ----------------------------------------------


class TestAnalyzeExplainSmoke:
    def test_demo_smoke_passes_and_writes_output(self, tmp_path):
        from repro.tools.analyze import main

        out = tmp_path / "plan-quality.txt"
        assert main(["--demo", "--explain", str(out)]) == 0
        text = out.read_text()
        assert "-- cost --" in text
        assert "model: statistics" in text
        assert "index-eq(" in text

    def test_explain_requires_demo(self, tmp_path):
        from repro.tools.analyze import main

        with pytest.raises(SystemExit):
            main(["--path", str(tmp_path / "x.kim"), "--explain", "out.txt"])
