"""Slotted pages: insert/read/update/delete, serialization."""

import pytest

from repro.errors import PageFullError, StorageError
from repro.storage.page import SlottedPage


@pytest.fixture
def page():
    return SlottedPage.empty(512)


class TestBasicOps:
    def test_insert_read(self, page):
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_slots_are_sequential(self, page):
        assert [page.insert(b"x") for _ in range(3)] == [0, 1, 2]

    def test_delete_then_read_fails(self, page):
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.read(slot)

    def test_double_delete_fails(self, page):
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.delete(slot)

    def test_deleted_slot_reused(self, page):
        first = page.insert(b"aaa")
        page.insert(b"bbb")
        page.delete(first)
        assert page.insert(b"ccc") == first

    def test_update_in_place(self, page):
        slot = page.insert(b"short")
        page.update(slot, b"longer-record")
        assert page.read(slot) == b"longer-record"

    def test_update_deleted_slot_fails(self, page):
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.update(slot, b"y")

    def test_slot_out_of_range(self, page):
        with pytest.raises(StorageError):
            page.read(5)

    def test_records_iterates_live_only(self, page):
        page.insert(b"a")
        dead = page.insert(b"b")
        page.insert(b"c")
        page.delete(dead)
        assert [(s, b) for s, b in page.records()] == [(0, b"a"), (2, b"c")]

    def test_counts(self, page):
        page.insert(b"a")
        dead = page.insert(b"b")
        page.delete(dead)
        assert page.slot_count == 2
        assert page.live_count == 1


class TestSpaceManagement:
    def test_page_full(self, page):
        page.insert(b"x" * 400)
        with pytest.raises(PageFullError):
            page.insert(b"y" * 200)

    def test_fits_accounts_for_slot_entry(self, page):
        assert page.fits(b"x" * 100)
        assert not page.fits(b"x" * 600)

    def test_record_larger_than_page_rejected(self, page):
        with pytest.raises(StorageError):
            page.insert(b"x" * 1000)

    def test_free_space_decreases(self, page):
        before = page.free_space
        page.insert(b"x" * 50)
        assert page.free_space < before

    def test_delete_frees_space(self, page):
        slot = page.insert(b"x" * 100)
        freed = page.free_space
        page.delete(slot)
        assert page.free_space > freed

    def test_update_too_big_raises_page_full(self, page):
        slot = page.insert(b"x" * 100)
        page.insert(b"y" * 300)
        with pytest.raises(PageFullError):
            page.update(slot, b"z" * 250)


class TestSerialization:
    def test_roundtrip(self, page):
        page.insert(b"alpha")
        dead = page.insert(b"beta")
        page.insert(b"gamma")
        page.delete(dead)
        loaded = SlottedPage.from_bytes(page.to_bytes())
        assert list(loaded.records()) == list(page.records())
        assert loaded.slot_count == page.slot_count

    def test_serialized_size_is_page_size(self, page):
        page.insert(b"data")
        assert len(page.to_bytes()) == 512

    def test_empty_page_roundtrip(self, page):
        loaded = SlottedPage.from_bytes(page.to_bytes())
        assert loaded.live_count == 0

    def test_tombstones_survive_roundtrip(self, page):
        slot = page.insert(b"x")
        page.delete(slot)
        loaded = SlottedPage.from_bytes(page.to_bytes())
        assert loaded.slot_count == 1
        assert loaded.live_count == 0
        # Slot must be reusable after reload.
        assert loaded.insert(b"y") == slot

    def test_binary_payload_preserved(self, page):
        payload = bytes(range(256)) * 1
        slot = page.insert(payload[:200])
        loaded = SlottedPage.from_bytes(page.to_bytes())
        assert loaded.read(slot) == payload[:200]
