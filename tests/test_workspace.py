"""Memory-resident object management: swizzling, faulting, write-back."""

import pytest

from repro import AttributeDef, Database
from repro.core.oid import OID
from repro.errors import KimDBError
from repro.workspace.cache import ObjectWorkspace
from repro.workspace.swizzle import Fault, MemoryObject


@pytest.fixture
def graph_db():
    db = Database()
    db.define_class(
        "Node",
        attributes=[
            AttributeDef("label", "String"),
            AttributeDef("next", "Node"),
            AttributeDef("links", "Node", multi=True),
        ],
    )
    return db


def make_chain(db, length):
    previous = None
    oids = []
    for position in reversed(range(length)):
        handle = db.new(
            "Node",
            {"label": "n%d" % position, "next": previous, "links": []},
        )
        previous = handle.oid
        oids.append(handle.oid)
    oids.reverse()
    return oids


class TestLoadingAndPolicies:
    def test_load_caches(self, graph_db):
        oids = make_chain(graph_db, 2)
        workspace = ObjectWorkspace(graph_db)
        first = workspace.load(oids[0])
        again = workspace.load(oids[0])
        assert first is again
        assert workspace.stats.hits == 1
        assert workspace.stats.faults == 1

    def test_lazy_policy_installs_fault_descriptors(self, graph_db):
        oids = make_chain(graph_db, 2)
        workspace = ObjectWorkspace(graph_db, policy="lazy")
        root = workspace.load(oids[0])
        assert isinstance(root.values["next"], Fault)
        assert len(workspace) == 1  # referenced node not loaded yet

    def test_eager_policy_loads_referenced(self, graph_db):
        oids = make_chain(graph_db, 3)
        workspace = ObjectWorkspace(graph_db, policy="eager")
        workspace.load(oids[0])
        # Eager pulls the closure (each load swizzles its own refs eagerly).
        assert len(workspace) == 3

    def test_none_policy_keeps_oids(self, graph_db):
        oids = make_chain(graph_db, 2)
        workspace = ObjectWorkspace(graph_db, policy="none")
        root = workspace.load(oids[0])
        assert isinstance(root.values["next"], OID)

    def test_unknown_policy_rejected(self, graph_db):
        with pytest.raises(KimDBError):
            ObjectWorkspace(graph_db, policy="telepathic")


class TestTraversal:
    def test_ref_faults_then_pointers(self, graph_db):
        oids = make_chain(graph_db, 3)
        workspace = ObjectWorkspace(graph_db, policy="lazy")
        root = workspace.load(oids[0])
        middle = root.ref("next")
        assert isinstance(middle, MemoryObject)
        assert middle["label"] == "n1"
        # After the first traversal the slot holds a direct pointer.
        assert root.values["next"] is middle
        faults_before = workspace.stats.faults
        assert root.ref("next") is middle
        assert workspace.stats.faults == faults_before

    def test_refs_multi(self, graph_db):
        targets = [graph_db.new("Node", {"label": "t%d" % i}) for i in range(3)]
        hub = graph_db.new("Node", {"links": [t.oid for t in targets]})
        workspace = ObjectWorkspace(graph_db)
        node = workspace.load(hub.oid)
        assert [n["label"] for n in node.refs("links")] == ["t0", "t1", "t2"]

    def test_closure(self, graph_db):
        oids = make_chain(graph_db, 5)
        workspace = ObjectWorkspace(graph_db)
        order = workspace.closure([oids[0]], ["next"])
        assert [m["label"] for m in order] == ["n0", "n1", "n2", "n3", "n4"]

    def test_closure_max_depth(self, graph_db):
        oids = make_chain(graph_db, 5)
        workspace = ObjectWorkspace(graph_db)
        order = workspace.closure([oids[0]], ["next"], max_depth=2)
        assert len(order) == 3

    def test_closure_handles_cycles(self, graph_db):
        a = graph_db.new("Node", {"label": "a"})
        b = graph_db.new("Node", {"label": "b", "next": a.oid})
        graph_db.update(a.oid, {"next": b.oid})
        workspace = ObjectWorkspace(graph_db)
        order = workspace.closure([a.oid], ["next"])
        assert len(order) == 2

    def test_dangling_reference_returns_none(self, graph_db):
        target = graph_db.new("Node", {"label": "gone"})
        source = graph_db.new("Node", {"label": "src", "next": target.oid})
        graph_db.delete(target.oid)
        workspace = ObjectWorkspace(graph_db)
        node = workspace.load(source.oid)
        assert node.ref("next") is None


class TestWriteBack:
    def test_set_marks_dirty_and_flush_persists(self, graph_db):
        node = graph_db.new("Node", {"label": "x"})
        workspace = ObjectWorkspace(graph_db)
        memory_object = workspace.load(node.oid)
        memory_object.set("label", "y")
        assert memory_object.dirty
        assert workspace.flush() == 1
        assert graph_db.get(node.oid)["label"] == "y"
        assert not memory_object.dirty

    def test_flush_unswizzles_pointers(self, graph_db):
        oids = make_chain(graph_db, 2)
        other = graph_db.new("Node", {"label": "other"})
        workspace = ObjectWorkspace(graph_db)
        root = workspace.load(oids[0])
        root.ref("next")  # swizzle to a direct pointer
        root.set("next", workspace.load(other.oid))  # pointer-valued write
        workspace.flush()
        assert graph_db.get_state(oids[0]).values["next"] == other.oid

    def test_flush_empty_is_zero(self, graph_db):
        assert ObjectWorkspace(graph_db).flush() == 0

    def test_database_features_still_apply_on_writeback(self, graph_db):
        # The paper's point: workspace writes go through the database, so
        # indexes stay consistent.
        index = graph_db.create_hierarchy_index("Node", "label")
        node = graph_db.new("Node", {"label": "before"})
        workspace = ObjectWorkspace(graph_db)
        memory_object = workspace.load(node.oid)
        memory_object.set("label", "after")
        workspace.flush()
        assert node.oid in index.lookup_eq("after")
        assert node.oid not in index.lookup_eq("before")

    def test_evict_dirty_rejected(self, graph_db):
        node = graph_db.new("Node", {"label": "x"})
        workspace = ObjectWorkspace(graph_db)
        memory_object = workspace.load(node.oid)
        memory_object.set("label", "y")
        with pytest.raises(KimDBError):
            workspace.evict(node.oid)
        workspace.flush()
        workspace.evict(node.oid)
        assert node.oid not in workspace
