"""Rollback must restore every attached subsystem, not just storage."""

import pytest

from repro import AttributeDef, Database
from repro.adt import attach as attach_adt
from repro.adt import make_rect, register_rectangle_type, register_spatial_index
from repro.composite import attach as attach_composites
from repro.semantics import attach_temporal


class TestSpatialGridAfterAbort:
    @pytest.fixture
    def sdb(self):
        db = Database()
        registry = attach_adt(db)
        register_rectangle_type(registry)
        db.define_class("Cell", attributes=[AttributeDef("shape", "Rectangle")])
        register_spatial_index(registry, "Cell", "shape", cell_size=8)
        return db

    QUERY = "SELECT c FROM Cell c WHERE overlaps(c.shape, [0, 0, 10, 10])"

    def test_aborted_insert_leaves_grid_clean(self, sdb):
        txn = sdb.transaction()
        sdb.new("Cell", {"shape": make_rect(1, 1, 3, 3)})
        txn.abort()
        assert sdb.select(self.QUERY) == []

    def test_aborted_move_restores_old_cells(self, sdb):
        cell = sdb.new("Cell", {"shape": make_rect(1, 1, 3, 3)})
        txn = sdb.transaction()
        sdb.update(cell.oid, {"shape": make_rect(100, 100, 103, 103)})
        txn.abort()
        assert [h.oid for h in sdb.select(self.QUERY)] == [cell.oid]
        far = "SELECT c FROM Cell c WHERE overlaps(c.shape, [99, 99, 104, 104])"
        assert sdb.select(far) == []

    def test_aborted_delete_restores_grid_entry(self, sdb):
        cell = sdb.new("Cell", {"shape": make_rect(1, 1, 3, 3)})
        txn = sdb.transaction()
        sdb.delete(cell.oid)
        txn.abort()
        assert [h.oid for h in sdb.select(self.QUERY)] == [cell.oid]


class TestCompositeLinksAfterAbort:
    @pytest.fixture
    def cdb(self):
        db = Database()
        attach_composites(db)
        db.define_class(
            "Box",
            attributes=[
                AttributeDef(
                    "items", "Box", multi=True, composite=True,
                    exclusive=True, dependent=True,
                ),
            ],
        )
        return db

    def test_aborted_reparenting_restores_links(self, cdb):
        item = cdb.new("Box", {"items": []})
        parent = cdb.new("Box", {"items": [item.oid]})
        txn = cdb.transaction()
        cdb.update(parent.oid, {"items": []})
        other = cdb.new("Box", {"items": [item.oid]})
        txn.abort()
        assert not cdb.exists(other.oid)
        assert cdb.composites.parents_of(item.oid) == [(parent.oid, "items")]
        # Exclusivity is enforceable again against the restored owner.
        from repro.errors import CompositeError

        with pytest.raises(CompositeError):
            cdb.new("Box", {"items": [item.oid]})

    def test_aborted_cascade_delete_restores_parts(self, cdb):
        item = cdb.new("Box", {"items": []})
        parent = cdb.new("Box", {"items": [item.oid]})
        txn = cdb.transaction()
        cdb.delete(parent.oid)
        assert not cdb.exists(item.oid)  # cascade ran inside the txn
        txn.abort()
        assert cdb.exists(parent.oid)
        assert cdb.exists(item.oid)
        assert cdb.composites.parents_of(item.oid) == [(parent.oid, "items")]


class TestTemporalAfterAbort:
    def test_compensations_recorded_in_history(self):
        db = Database()
        attach_temporal(db)
        db.define_class("T", attributes=[AttributeDef("n", "Integer")])
        obj = db.new("T", {"n": 1})
        txn = db.transaction()
        db.update(obj.oid, {"n": 2})
        txn.abort()
        history = db.temporal.history_of(obj.oid)
        # write(1), write(2), compensating write(1).
        assert [e.state.values["n"] for e in history] == [1, 2, 1]
        assert db.temporal.value_as_of(obj.oid, "n", db.temporal.now) == 1
