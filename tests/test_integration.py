"""Cross-subsystem integration scenarios."""

import pytest

from repro import AttributeDef, Database
from repro.authz import attach as attach_authz
from repro.bench.schemas import FIG1_QUERY, build_vehicle_schema, populate_vehicles
from repro.composite import attach as attach_composites
from repro.errors import CompositeError, VersionError
from repro.evolution import SchemaEvolution
from repro.rules import RuleEngine, rule
from repro.storage.clustering import CompositeClustering
from repro.versions import attach as attach_versions
from repro.versions import attach_notifications
from repro.views import attach as attach_views
from repro.workspace import ObjectWorkspace


@pytest.fixture
def full_db():
    """A database with every optional subsystem attached."""
    db = Database(clustering=CompositeClustering())
    attach_composites(db)
    attach_notifications(db)
    attach_versions(db)
    attach_views(db)
    build_vehicle_schema(db)
    populate_vehicles(db, n_vehicles=120, n_companies=10, seed=99)
    return db


class TestFullStack:
    def test_fig1_query_with_everything_attached(self, full_db):
        result = full_db.select(FIG1_QUERY)
        assert result
        for handle in result:
            assert handle["weight"] > 7500
            assert handle.fetch("manufacturer")["location"] == "Detroit"

    def test_composite_drivetrain_cascades(self, full_db):
        vehicle = full_db.select("SELECT v FROM Vehicle v LIMIT 1")[0]
        drivetrain = vehicle.fetch("drivetrain")
        full_db.delete(vehicle.oid)
        assert not full_db.exists(drivetrain.oid)

    def test_drivetrain_exclusive(self, full_db):
        vehicle = full_db.select("SELECT v FROM Vehicle v LIMIT 1")[0]
        with pytest.raises(CompositeError):
            full_db.new(
                "Vehicle",
                {"weight": 1, "drivetrain": vehicle["drivetrain"]},
            )

    def test_index_view_txn_interplay(self, full_db):
        full_db.create_hierarchy_index("Vehicle", "weight")
        full_db.views.define_view(
            "Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500"
        )
        before = len(full_db.select("SELECT h FROM Heavy h"))
        txn = full_db.transaction()
        added = full_db.new("Vehicle", {"weight": 9999})
        assert len(full_db.select("SELECT h FROM Heavy h")) == before + 1
        txn.abort()
        assert len(full_db.select("SELECT h FROM Heavy h")) == before
        assert not full_db.exists(added.oid)

    def test_workspace_edit_visible_to_queries_after_flush(self, full_db):
        full_db.create_hierarchy_index("Vehicle", "color")
        vehicle = full_db.select("SELECT v FROM Vehicle v LIMIT 1")[0]
        workspace = ObjectWorkspace(full_db)
        memory_object = workspace.load(vehicle.oid)
        memory_object.set("color", "chartreuse")
        assert full_db.select("SELECT v FROM Vehicle v WHERE v.color = 'chartreuse'") == []
        workspace.flush()
        result = full_db.select("SELECT v FROM Vehicle v WHERE v.color = 'chartreuse'")
        assert [h.oid for h in result] == [vehicle.oid]

    def test_version_freeze_blocks_workspace_writeback(self, full_db):
        oid = full_db.versions.create_versioned("Company", {"name": "vc"})
        full_db.versions.promote(oid)  # frozen
        workspace = ObjectWorkspace(full_db)
        memory_object = workspace.load(oid)
        memory_object.set("name", "renamed")
        with pytest.raises(VersionError):
            workspace.flush()

    def test_evolution_then_query_new_attribute(self, full_db):
        evolution = SchemaEvolution(full_db)
        evolution.add_attribute(
            "Vehicle", AttributeDef("recalled", "Boolean", default=False)
        )
        some = full_db.select("SELECT v FROM Vehicle v LIMIT 3")
        full_db.update(some[0].oid, {"recalled": True})
        recalled = full_db.select("SELECT v FROM Vehicle v WHERE v.recalled = true")
        assert [h.oid for h in recalled] == [some[0].oid]

    def test_rules_over_evolving_schema(self, full_db):
        engine = RuleEngine(full_db)
        engine.map_class("company", "Company", ["location"])
        engine.add_rule(rule("detroit", ["?c"], ("company", ["?c", "Detroit"])))
        count_before = len(engine.query("detroit", None))
        full_db.new("Company", {"name": "new", "location": "Detroit"})
        engine._fresh = False
        assert len(engine.query("detroit", None)) == count_before + 1

    def test_aggregate_over_hierarchy(self, full_db):
        rows = full_db.execute(
            "SELECT COUNT(v) FROM Vehicle v GROUP BY v.color"
        ).rows
        assert sum(row["count(*)"] for row in rows) == full_db.count("Vehicle")


class TestDurableFullStack:
    def test_reopen_with_subsystems_reattached(self, durable_path):
        db = Database(durable_path, clustering=CompositeClustering())
        attach_composites(db)
        build_vehicle_schema(db)
        oids = populate_vehicles(db, n_vehicles=40, n_companies=6, seed=5)
        db.create_hierarchy_index("Vehicle", "weight")
        expected = [h.oid for h in db.select(FIG1_QUERY)]
        db.close()

        reopened = Database(durable_path)
        composites = attach_composites(reopened)
        # Indexes are rebuilt by re-creating them (catalog holds schema).
        reopened.create_hierarchy_index("Vehicle", "weight")
        assert [h.oid for h in reopened.select(FIG1_QUERY)] == expected
        # Composite links were re-derived from storage.
        vehicle_oid = expected[0] if expected else oids["Vehicle"][0]
        drivetrain = reopened.get(vehicle_oid)["drivetrain"]
        assert composites.parents_of(drivetrain) == [(vehicle_oid, "drivetrain")]
        reopened.close()

    def test_crash_recovery_preserves_query_results(self, durable_path):
        db = Database(durable_path)
        build_vehicle_schema(db)
        db.checkpoint()
        populate_vehicles(db, n_vehicles=30, n_companies=5, seed=77)
        expected_count = db.count("Vehicle")
        # Crash without checkpoint.
        db.storage.buffer.flush_all()
        db.storage.save_metadata()
        db.storage.pager.close()
        db.wal.close()

        reopened = Database(durable_path)
        assert reopened.count("Vehicle") == expected_count
        result = reopened.select("SELECT v FROM Vehicle v WHERE v.weight > 7500")
        for handle in result:
            assert handle["weight"] > 7500
        reopened.close()


class TestAuthzIntegration:
    def test_view_authz_and_aggregates(self, full_db):
        authz = attach_authz(full_db)
        authz.add_role("analyst")
        full_db.views.define_view(
            "Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500"
        )
        authz.grant("analyst", "read", "Heavy")
        with authz.as_subject("analyst"):
            rows = full_db.execute("SELECT COUNT(h) FROM Heavy h").rows
            assert rows[0]["count(*)"] > 0
