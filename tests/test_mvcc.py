"""MVCC snapshot reads and group-commit WAL batching.

The snapshot contract: a read-only query sees exactly the database as of
its begin timestamp — repeatable across concurrent commits, lock-free
(zero scan locks), read-your-own-writes inside a transaction — and the
version store reclaims before-images once the last snapshot that could
need them closes.  The group-commit contract: concurrent committers
share WAL fsyncs without ever surfacing a commit whose covering fsync
did not complete.
"""

import os
import threading

import pytest

from repro import AttributeDef, Database
from repro.txn import wal as wal_module


def _vehicle_db(**kwargs):
    db = Database(**kwargs)
    db.define_class(
        "Vehicle",
        attributes=[
            AttributeDef("weight", "Integer"),
            AttributeDef("color", "String", default="white"),
        ],
    )
    for i in range(12):
        db.new("Vehicle", {"weight": 1000 + i, "color": ("red", "blue")[i % 2]})
    return db


def _weights(db):
    result = db.execute("select v.weight from Vehicle v where v.weight >= 0")
    return sorted(row["weight"] for row in result.rows)


def _in_thread(fn):
    """Run ``fn`` on a fresh thread (its own thread-local transaction)."""
    errors = []

    def runner():
        try:
            fn()
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join()
    if errors:
        raise errors[0]


class TestSnapshotReads:
    def test_read_your_own_writes(self):
        db = _vehicle_db()
        try:
            with db.transaction():
                handle = db.new("Vehicle", {"weight": 5000})
                db.update(handle.oid, {"weight": 6000})
                result = db.execute("Vehicle where weight = 6000")
                assert result.oids == [handle.oid]
                # The pre-update value is the txn's own history, not a
                # visible version.
                assert db.execute("Vehicle where weight = 5000").oids == []
        finally:
            db.close()

    def test_repeatable_reads_across_concurrent_commit(self):
        db = _vehicle_db()
        try:
            with db.transaction():
                before = _weights(db)

                def writer():
                    db.new("Vehicle", {"weight": 9999})
                    victim = db.select("Vehicle where weight = 1000")[0]
                    db.update(victim.oid, {"weight": 8888})
                    gone = db.select("Vehicle where weight = 1001")[0]
                    db.delete(gone.oid)

                _in_thread(writer)
                # Same transaction, same snapshot: the concurrent
                # insert, update and delete are all invisible.
                assert _weights(db) == before
            # A fresh query after the transaction sees the new world.
            after = _weights(db)
            assert 9999 in after and 8888 in after
            assert 1000 not in after and 1001 not in after
        finally:
            db.close()

    def test_snapshot_reads_take_zero_scan_locks(self):
        db = _vehicle_db()
        try:
            baseline = db.locks.stats.acquisitions
            result = db.execute("Vehicle where weight > 1003")
            assert len(result) == 8
            assert db.locks.stats.acquisitions == baseline
            with db.select_iter("Vehicle where color = 'red'") as stream:
                assert sum(1 for _ in stream) == 6
            assert db.locks.stats.acquisitions == baseline
        finally:
            db.close()

    def test_snapshot_vs_lock_parity_oracle(self):
        """Single-threaded, the two read strategies are indistinguishable."""
        mvcc = _vehicle_db(snapshot_reads=True)
        locking = _vehicle_db(snapshot_reads=False)
        queries = [
            "Vehicle where weight > 1004",
            "Vehicle where color = 'blue' and weight < 1010",
            "select v.weight from Vehicle v where v.weight >= 1000",
            "SELECT v FROM Vehicle v ORDER BY v.weight LIMIT 5",
        ]
        try:
            for db in (mvcc, locking):
                victim = db.select("Vehicle where weight = 1002")[0]
                db.update(victim.oid, {"color": "green"})
                gone = db.select("Vehicle where weight = 1007")[0]
                db.delete(gone.oid)
                db.new("Vehicle", {"weight": 1042, "color": "red"})
            for q in queries:
                left, right = mvcc.execute(q), locking.execute(q)
                if left.rows is not None:
                    assert left.rows == right.rows, q
                else:
                    assert [str(o) for o in left.oids] == [
                        str(o) for o in right.oids
                    ], q
        finally:
            mvcc.close()
            locking.close()

    def test_open_stream_shields_reader_from_delete(self):
        db = _vehicle_db()
        try:
            stream = db.select_iter("Vehicle where weight >= 1000")
            first = next(stream)
            victim = db.select("Vehicle where weight = 1011")[0]
            db.delete(victim.oid)
            remaining = {h.oid for h in stream}
            # The deleted object is resurrected from its before-image.
            assert victim.oid in remaining | {first.oid}
            assert len(remaining) == 11
        finally:
            db.close()

    def test_gc_reclaims_after_last_snapshot_closes(self):
        db = _vehicle_db()
        try:
            reclaimed = db.metrics.counter("txn.snapshot.gc_reclaimed")
            stream = db.select_iter("Vehicle where weight >= 1000")
            next(stream)
            victim = db.select("Vehicle where weight = 1005")[0]
            db.update(victim.oid, {"weight": 7777})
            # The live stream snapshot pins the before-image.
            assert db.version_store.entry_count > 0
            before = reclaimed.value
            stream.close()
            assert db.version_store.entry_count == 0
            assert reclaimed.value > before
        finally:
            db.close()

    def test_index_probe_downgrades_when_versions_live(self):
        db = _vehicle_db()
        db.create_class_index("Vehicle", "weight")
        try:
            downgrades = db.metrics.counter("txn.snapshot.plan_downgrades")
            with db.transaction():
                assert db.execute("Vehicle where weight = 1003").oids
                before = downgrades.value

                def writer():
                    victim = db.select("Vehicle where weight = 1003")[0]
                    db.update(victim.oid, {"weight": 4444})

                _in_thread(writer)
                # The index now points 1003 -> nothing; the snapshot
                # must still find the row via the downgraded scan.
                result = db.execute("Vehicle where weight = 1003")
                assert len(result.oids) == 1
                assert downgrades.value > before
                assert any("downgraded" in note for note in result.plan.notes)
        finally:
            db.close()

    def test_syssnapshot_view_reports_live_snapshots(self):
        db = _vehicle_db()
        try:
            with db.transaction():
                db.execute("Vehicle where weight > 1000")  # opens the snapshot
                rows = db.select("SysSnapshot")
                assert len(rows) == 1
                assert rows[0]["txn"] is not None
                assert rows[0]["ts"] >= 0
            assert db.select("SysSnapshot") == []
        finally:
            db.close()

    def test_snapshot_reads_off_restores_scan_locks(self):
        db = _vehicle_db(snapshot_reads=False)
        try:
            baseline = db.locks.stats.acquisitions
            with db.transaction():
                db.execute("Vehicle where weight > 1003")
                assert db.locks.stats.acquisitions > baseline
            assert db.version_store.entry_count == 0
        finally:
            db.close()


class TestGroupCommit:
    def test_concurrent_commits_share_fsyncs(self, tmp_path):
        db = Database(str(tmp_path / "gc.pages"))
        db.define_class("Item", attributes=[AttributeDef("n", "Integer")])
        started = threading.Event()
        release = threading.Event()
        real_fsync = wal_module.fsync_file

        def gated_fsync(handle):
            started.set()
            release.wait(5.0)
            real_fsync(handle)

        n_writers = 6
        batches = db.metrics.counter("wal.group_commit.batches")
        commits = db.metrics.counter("wal.group_commit.commits")
        batches_before, commits_before = batches.value, commits.value
        wal_module.fsync_file = gated_fsync
        try:
            threads = [
                threading.Thread(target=db.new, args=("Item", {"n": i}))
                for i in range(n_writers)
            ]
            for t in threads:
                t.start()
                started.wait(5.0)
            # All writers are appended (leader stuck in fsync, the rest
            # parked on the group-commit condition) before any sync
            # completes; release and let one fsync cover the stragglers.
            deadline = [t for t in threads]
            for _ in range(500):
                if len(db.wal._pending) >= n_writers:
                    break
                threading.Event().wait(0.01)
            release.set()
            for t in deadline:
                t.join(10.0)
        finally:
            wal_module.fsync_file = real_fsync
        assert commits.value - commits_before == n_writers
        assert 0 < batches.value - batches_before < n_writers
        assert db.count("Item") == n_writers
        db.close()

    def test_group_commit_off_syncs_each_commit(self, tmp_path):
        db = Database(str(tmp_path / "nogc.pages"), group_commit=False)
        db.define_class("Item", attributes=[AttributeDef("n", "Integer")])
        batches = db.metrics.counter("wal.group_commit.batches")
        syncs_before = db.metrics.counter("wal.syncs").value
        for i in range(4):
            db.new("Item", {"n": i})
        assert batches.value == 0
        assert db.metrics.counter("wal.syncs").value == syncs_before + 4
        db.close()

    def test_commit_not_durable_until_covering_fsync(self, tmp_path):
        """Crash between batch append and batch fsync: none of the
        batched transactions may replay as committed."""
        path = str(tmp_path / "batchcrash.pages")
        db = Database(path)
        db.define_class("Item", attributes=[AttributeDef("n", "Integer")])
        db.new("Item", {"n": 1})
        db.checkpoint()
        wal_path = path + ".wal"
        durable_size = os.path.getsize(wal_path)

        started = threading.Event()

        def failing_fsync(handle):
            started.set()
            raise OSError("injected: power lost before fsync")

        real_fsync = wal_module.fsync_file
        failures = []

        def writer(n):
            try:
                db.new("Item", {"n": n})
            except Exception as exc:
                failures.append(exc)

        wal_module.fsync_file = failing_fsync
        try:
            threads = [
                threading.Thread(target=writer, args=(100 + i,))
                for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10.0)
        finally:
            wal_module.fsync_file = real_fsync
        # Every batched committer saw the failure — no false durability.
        assert len(failures) == 2
        # Crash without flushing dirty pages; whatever the WAL buffered
        # past the last completed fsync is lost with the page cache.
        db.storage.pager.close()
        db.wal.close()
        with open(wal_path, "r+b") as fh:
            fh.truncate(durable_size)

        reopened = Database(path)
        values = sorted(
            state.values["n"] for state in reopened.storage.scan_class("Item")
        )
        assert values == [1]
        reopened.close()


class TestHandleSnapshotReads:
    """Handle attribute reads (``h["attr"]``) follow the txn snapshot.

    PR-8 follow-up: queries inside a transaction read the begin
    snapshot, but ``h["attr"]`` used to chase current stored state — a
    read inside one transaction could watch a concurrent commit change
    an attribute between two accesses.  ``Database.read_state`` routes
    handle reads through ``Snapshot.resolve`` so both paths agree.
    """

    def test_handle_read_is_repeatable_across_concurrent_commit(self):
        db = _vehicle_db()
        try:
            handle = db.select("Vehicle where weight = 1000")[0]
            with db.transaction():
                assert handle["weight"] == 1000  # opens the txn snapshot

                def writer():
                    db.update(handle.oid, {"weight": 4444})

                _in_thread(writer)
                # The committed update is invisible to the handle read,
                # exactly as it is to a query in this transaction.
                assert handle["weight"] == 1000
                assert handle.state().values["weight"] == 1000
                assert handle.to_dict()["weight"] == 1000
                assert db.execute(
                    "Vehicle where weight = 4444"
                ).oids == []
            # Transaction over: the handle sees the new world.
            assert handle["weight"] == 4444
        finally:
            db.close()

    def test_handle_read_sees_own_writes(self):
        db = _vehicle_db()
        try:
            with db.transaction():
                handle = db.new("Vehicle", {"weight": 7000})
                assert handle["weight"] == 7000
                db.update(handle.oid, {"weight": 7001})
                assert handle["weight"] == 7001
        finally:
            db.close()

    def test_handle_read_survives_concurrent_delete(self):
        db = _vehicle_db()
        try:
            handle = db.select("Vehicle where weight = 1002")[0]
            with db.transaction():
                assert handle["weight"] == 1002

                def writer():
                    db.delete(handle.oid)

                _in_thread(writer)
                # Deleted under our feet, but our snapshot still has it.
                assert handle["weight"] == 1002
        finally:
            db.close()

    def test_get_state_still_reads_current_state(self):
        # The locking read path is unchanged: inside the same
        # transaction whose handle read sees the snapshot, get_state
        # returns the concurrently committed current state (and takes
        # its read lock).  The lock-conflict tests elsewhere depend on
        # this blocking behavior.
        db = _vehicle_db()
        try:
            handle = db.select("Vehicle where weight = 1004")[0]
            with db.transaction():
                assert handle["weight"] == 1004

                def writer():
                    db.update(handle.oid, {"weight": 5555})

                _in_thread(writer)
                assert handle["weight"] == 1004
                assert db.get_state(handle.oid).values["weight"] == 5555
        finally:
            db.close()

    def test_handle_read_outside_transaction_is_current(self):
        db = _vehicle_db()
        try:
            handle = db.select("Vehicle where weight = 1006")[0]
            db.update(handle.oid, {"weight": 3333})
            assert handle["weight"] == 3333
            assert db.read_state(handle.oid).values["weight"] == 3333
        finally:
            db.close()

    def test_handle_read_with_snapshots_off_matches_get_state(self):
        db = _vehicle_db(snapshot_reads=False)
        try:
            handle = db.select("Vehicle where weight = 1008")[0]
            with db.transaction():
                assert handle["weight"] == 1008
                db.update(handle.oid, {"weight": 2222})
                assert handle["weight"] == 2222
        finally:
            db.close()
