"""Hierarchical database, federation, OSQL migration."""

import pytest

from repro import AttributeDef, Database
from repro.errors import FederationError, QuerySyntaxError
from repro.multidb import (
    Federation,
    HierarchicalAdapter,
    HierarchicalDatabase,
    ObjectAdapter,
    RelationalAdapter,
    run_osql,
    translate_sql,
)
from repro.relational import RelationalEngine


@pytest.fixture
def hdb():
    hdb = HierarchicalDatabase("products")
    hdb.define_segment("ProductLine", ["line"])
    hdb.define_segment("Product", ["sku", "price"], parent="ProductLine")
    trucks = hdb.insert("ProductLine", {"line": "trucks"})
    cars = hdb.insert("ProductLine", {"line": "cars"})
    hdb.insert("Product", {"sku": "T-100", "price": 50}, parent_id=trucks)
    hdb.insert("Product", {"sku": "T-200", "price": 70}, parent_id=trucks)
    hdb.insert("Product", {"sku": "C-1", "price": 30}, parent_id=cars)
    return hdb


class TestHierarchicalDatabase:
    def test_roots_and_children(self, hdb):
        roots = hdb.roots("ProductLine")
        assert [r.fields["line"] for r in roots] == ["trucks", "cars"]
        children = hdb.children(roots[0].record_id)
        assert [c.fields["sku"] for c in children] == ["T-100", "T-200"]

    def test_parent_navigation(self, hdb):
        product = next(hdb.scan("Product"))
        assert hdb.parent(product.record_id).fields["line"] == "trucks"

    def test_root_has_no_parent(self, hdb):
        root = hdb.roots("ProductLine")[0]
        assert hdb.parent(root.record_id) is None

    def test_child_requires_parent(self, hdb):
        with pytest.raises(FederationError):
            hdb.insert("Product", {"sku": "X"})

    def test_root_takes_no_parent(self, hdb):
        root = hdb.roots("ProductLine")[0]
        with pytest.raises(FederationError):
            hdb.insert("ProductLine", {"line": "x"}, parent_id=root.record_id)

    def test_wrong_parent_segment_rejected(self, hdb):
        product = next(hdb.scan("Product"))
        with pytest.raises(FederationError):
            hdb.insert("Product", {"sku": "Y"}, parent_id=product.record_id)

    def test_unknown_fields_rejected(self, hdb):
        with pytest.raises(FederationError):
            hdb.insert("ProductLine", {"bogus": 1})

    def test_duplicate_segment_rejected(self, hdb):
        with pytest.raises(FederationError):
            hdb.define_segment("Product", ["x"])


@pytest.fixture
def federation(hdb):
    engine = RelationalEngine()
    engine.create_table(
        "Employee",
        [("emp_id", "int"), ("name", "str"), ("company", "str")],
        primary_key="emp_id",
    )
    engine.insert("Employee", {"emp_id": 1, "name": "alice", "company": "GM"})
    engine.insert("Employee", {"emp_id": 2, "name": "bob", "company": "Ford"})

    odb = Database()
    odb.define_class(
        "Company",
        attributes=[AttributeDef("name", "String"), AttributeDef("location", "String")],
    )
    odb.new("Company", {"name": "GM", "location": "Detroit"})
    odb.new("Company", {"name": "Ford", "location": "Dearborn"})

    federation = Federation()
    federation.register("relational", RelationalAdapter(engine))
    federation.register("hierarchical", HierarchicalAdapter(hdb))
    federation.register("objects", ObjectAdapter(odb, ["Company"]))
    return federation


class TestFederation:
    def test_catalog_spans_sources(self, federation):
        names = federation.class_names()
        assert {"Employee", "Product", "ProductLine", "Company"} <= set(names)
        assert federation.source_of("Employee") == "relational"
        assert federation.source_of("Company") == "objects"

    def test_duplicate_virtual_class_rejected(self, federation, hdb):
        with pytest.raises(FederationError):
            federation.register("again", HierarchicalAdapter(hdb))

    def test_scan_each_source(self, federation):
        assert len(list(federation.scan("Employee"))) == 2
        assert len(list(federation.scan("Product"))) == 3
        assert len(list(federation.scan("Company"))) == 2

    def test_query_relational_source(self, federation):
        rows = federation.query("SELECT e FROM Employee e WHERE e.company = 'GM'")
        assert [r["name"] for r in rows] == ["alice"]

    def test_query_hierarchical_with_parent_path(self, federation):
        rows = federation.query(
            "SELECT p FROM Product p WHERE p.parent_id.line = 'trucks'"
        )
        assert sorted(r["sku"] for r in rows) == ["T-100", "T-200"]

    def test_query_object_source(self, federation):
        rows = federation.query("SELECT c FROM Company c WHERE c.location = 'Detroit'")
        assert [r["name"] for r in rows] == ["GM"]

    def test_projection_and_order(self, federation):
        rows = federation.query(
            "SELECT p.sku FROM Product p ORDER BY p.price DESC LIMIT 2"
        )
        assert [r["sku"] for r in rows] == ["T-200", "T-100"]

    def test_unknown_class_rejected(self, federation):
        with pytest.raises(FederationError):
            federation.query("SELECT x FROM Ghost x")

    def test_boolean_operators(self, federation):
        rows = federation.query(
            "SELECT p FROM Product p WHERE p.price > 20 AND NOT p.sku = 'C-1'"
        )
        assert sorted(r["sku"] for r in rows) == ["T-100", "T-200"]


class TestOsql:
    def test_translation_shape(self):
        translated = translate_sql(
            "SELECT name, weight FROM Vehicle WHERE weight > 7500 "
            "ORDER BY weight DESC LIMIT 3"
        )
        assert translated.oql == (
            "SELECT x.name, x.weight FROM Vehicle x WHERE x.weight > 7500 "
            "ORDER BY x.weight DESC LIMIT 3"
        )

    def test_star_translation(self):
        assert translate_sql("SELECT * FROM Vehicle").oql == "SELECT x FROM Vehicle x"

    def test_only_mode_preserves_sql_semantics(self):
        assert "FROM ONLY Vehicle" in translate_sql("SELECT * FROM Vehicle", only=True).oql

    def test_where_keywords_untouched(self):
        translated = translate_sql(
            "SELECT name FROM T WHERE a = 'x' AND NOT b = 3"
        )
        assert "x.a" in translated.oql and "x.b" in translated.oql
        assert "x.NOT" not in translated.oql and "x.AND" not in translated.oql

    def test_dotted_columns_become_paths(self):
        translated = translate_sql(
            "SELECT name FROM Vehicle WHERE manufacturer.location = 'Detroit'"
        )
        assert "x.manufacturer.location" in translated.oql

    def test_bad_sql_rejected(self):
        with pytest.raises(QuerySyntaxError):
            translate_sql("DELETE FROM Vehicle")

    def test_run_osql_against_object_database(self):
        db = Database()
        db.define_class(
            "Customer",
            attributes=[AttributeDef("name", "String"), AttributeDef("age", "Integer")],
        )
        db.new("Customer", {"name": "ann", "age": 30})
        db.new("Customer", {"name": "bob", "age": 40})
        rows = run_osql(db, "SELECT name FROM Customer WHERE age > 35")
        assert rows == [{"name": "bob"}]
        handles = run_osql(db, "SELECT * FROM Customer")
        assert len(handles) == 2

    def test_same_sql_runs_on_both_engines(self):
        # The migration-path promise: identical SQL text against the
        # relational engine (via federation) and the OODB.
        sql = "SELECT name FROM Customer WHERE age > 35"
        db = Database()
        db.define_class(
            "Customer",
            attributes=[AttributeDef("name", "String"), AttributeDef("age", "Integer")],
        )
        db.new("Customer", {"name": "bob", "age": 40})
        oo_rows = run_osql(db, sql)

        engine = RelationalEngine()
        engine.create_table("Customer", [("name", "str"), ("age", "int")])
        engine.insert("Customer", {"name": "bob", "age": 40})
        federation = Federation()
        federation.register("rel", RelationalAdapter(engine))
        translated = translate_sql(sql)
        rel_rows = federation.query(translated.oql)
        assert [r["name"] for r in rel_rows] == [r["name"] for r in oo_rows] == ["bob"]
