"""Physical clustering: placement policies and fault-count effects."""

import pytest

from repro import AttributeDef, Database
from repro.bench.workloads import build_assembly, define_assembly_schema
from repro.storage.clustering import (
    AttributeClustering,
    CompositeClustering,
    NoClustering,
)


def traversal_faults(db, root_oid):
    """Cold-cache page faults for a full composite traversal."""
    db.storage.drop_cache()
    db.storage.buffer.stats.reset()
    stack = [root_oid]
    seen = set()
    while stack:
        oid = stack.pop()
        if oid in seen:
            continue
        seen.add(oid)
        state = db.storage.load(oid)
        for child in state.values.get("subassemblies", []):
            stack.append(child)
    return db.storage.buffer.stats.faults, len(seen)


class TestPolicies:
    def test_no_clustering_returns_none(self):
        db = Database(clustering=NoClustering())
        define_assembly_schema(db)
        child = db.new("Assembly", {"label": "c", "subassemblies": []})
        state = db.get_state(child.oid)
        assert NoClustering().neighbour_for(db.schema, state) is None

    def test_composite_policy_nominates_part(self):
        db = Database()
        define_assembly_schema(db)
        child = db.new("Assembly", {"label": "c", "subassemblies": []})
        parent_state_values = {
            "label": "p",
            "mass": 1,
            "subassemblies": [child.oid],
        }
        from repro.core.obj import ObjectState
        from repro.core.oid import OID

        state = ObjectState(OID(999), "Assembly", parent_state_values)
        assert CompositeClustering().neighbour_for(db.schema, state) == child.oid

    def test_attribute_policy_scoped_to_class(self):
        db = Database()
        db.define_class("T", attributes=[AttributeDef("ref", "T")])
        db.define_class("U", attributes=[AttributeDef("ref", "T")])
        target = db.new("T")
        policy = AttributeClustering("T", "ref")
        from repro.core.obj import ObjectState
        from repro.core.oid import OID

        t_state = ObjectState(OID(100), "T", {"ref": target.oid})
        u_state = ObjectState(OID(101), "U", {"ref": target.oid})
        assert policy.neighbour_for(db.schema, t_state) == target.oid
        assert policy.neighbour_for(db.schema, u_state) is None


def build_interleaved_chains(db, groups=8, length=48, label_size=180):
    """Round-robin creation of ``groups`` composite chains.

    Object j of group i is created at time ``j * groups + i``, so without
    clustering the heap pages hold stripes of every group; with
    :class:`CompositeClustering` each object is placed near the chain
    predecessor it references.  Returns the head OID of each chain.
    """
    previous = [None] * groups
    for position in range(length):
        for group in range(groups):
            subassemblies = [previous[group]] if previous[group] is not None else []
            handle = db.new(
                "Assembly",
                {
                    "label": "g%d-%d-%s" % (group, position, "x" * label_size),
                    "mass": 1,
                    "subassemblies": subassemblies,
                },
            )
            previous[group] = handle.oid
    return previous  # chain heads (each references the whole chain)


class TestClusteringEffect:
    def test_clustered_traversal_touches_fewer_pages(self):
        clustered = Database(clustering=CompositeClustering(), buffer_capacity=4)
        define_assembly_schema(clustered)
        heads_c = build_interleaved_chains(clustered)

        scattered = Database(clustering=NoClustering(), buffer_capacity=4)
        define_assembly_schema(scattered)
        heads_s = build_interleaved_chains(scattered)

        faults_clustered, visited_c = traversal_faults(clustered, heads_c[0])
        faults_scattered, visited_s = traversal_faults(scattered, heads_s[0])
        assert visited_c == visited_s == 48
        # One chain lives on a fraction of the pages when clustered.
        assert faults_clustered < faults_scattered / 2

    def test_deep_assembly_tree_clusters(self):
        clustered = Database(clustering=CompositeClustering(), buffer_capacity=4)
        define_assembly_schema(clustered)
        root = build_assembly(clustered, depth=5, fanout=2, seed=1)
        faults, visited = traversal_faults(clustered, root)
        assert visited == 2 ** 6 - 1
        # The whole tree should occupy only a handful of pages.
        assert faults <= clustered.storage.heap_for("Assembly").page_count

    def test_explicit_near_hint_wins(self):
        db = Database()
        define_assembly_schema(db)
        anchor = db.new("Assembly", {"label": "anchor"})
        # Fill unrelated pages.
        db.define_class("Noise", attributes=[AttributeDef("filler", "String")])
        for _ in range(20):
            db.new("Noise", {"filler": "x" * 100})
        friend = db.new("Assembly", {"label": "friend"}, near=anchor.oid)
        anchor_rid = db.storage.directory.lookup(anchor.oid).rid
        friend_rid = db.storage.directory.lookup(friend.oid).rid
        assert anchor_rid.page_id == friend_rid.page_id
