"""Deterministic fault-injection torture: seeded crashes, exact recovery.

Every test drives a random workload through a :class:`FaultPlan` that
crashes the simulated process at an injected I/O operation — tearing the
in-flight write, dropping a random suffix of unsynced writes — then
recovers and asserts the surviving state is *exactly* a legal committed
state.  All randomness derives from the seed, so any failure replays
with::

    FAULT_TORTURE_SEED=<seed> python -m pytest tests/test_fault_torture.py

The one legal ambiguity: a crash during the commit append/fsync itself
may persist or lose that commit (both are correct crash outcomes), so
the acceptable states are "everything confirmed committed" and, when the
crash hit mid-commit, that plus the in-flight transaction.
"""

import os
import random

import pytest

from repro import AttributeDef, Database
from repro.errors import KimDBError, PageCorruptError
from repro.faults import FaultPlan, FaultyFile, InjectedCrash, wrap_file
from repro.storage.page import SlottedPage

#: The fixed seed matrix CI always runs, plus an optional extra seed
#: derived from the CI run number (FAULT_TORTURE_SEED) so every CI run
#: explores one new point of the space.  FAULT_TORTURE_SEED_COUNT widens
#: the fixed matrix (the weekly CI sweep runs 64 seeds instead of 24).
TORTURE_SEEDS = list(range(int(os.environ.get("FAULT_TORTURE_SEED_COUNT", "24"))))
_extra = os.environ.get("FAULT_TORTURE_SEED")
if _extra is not None:
    TORTURE_SEEDS.append(int(_extra))


def _fresh_db(path, **kwargs):
    db = Database(path, **kwargs)
    if "Item" not in {c.name for c in db.schema.user_classes()}:
        db.define_class("Item", attributes=[AttributeDef("n", "Integer")])
    return db


def _setup(path):
    """Create the database and durably checkpoint the schema, unfaulted."""
    db = _fresh_db(path)
    db.checkpoint()
    db.close()


def current_state(db):
    return {
        state.oid: state.values["n"] for state in db.storage.scan_class("Item")
    }


def run_workload_until_crash(db, rng, n_txns, out):
    """Random inserts/updates/deletes; maintains ``out["acceptable"]``.

    ``out["acceptable"]`` always holds the list of state dicts a
    post-crash recovery may legally show, kept current because the
    injected crash unwinds straight through this function: the
    confirmed-committed state, plus (only while inside a commit call)
    that state with the in-flight transaction applied.
    """
    confirmed = current_state(db)
    live = list(confirmed)
    out["acceptable"] = [dict(confirmed)]
    for _ in range(n_txns):
        commit = rng.random() < 0.8
        txn = db.txns.begin()
        local = {}
        local_deletes = set()
        for _ in range(rng.randrange(1, 5)):
            action = rng.random()
            if action < 0.55 or not live:
                handle = db.new("Item", {"n": rng.randrange(1000)})
                local[handle.oid] = handle["n"]
            elif action < 0.85:
                oid = rng.choice(live)
                if oid in local_deletes or not db.exists(oid):
                    continue
                value = rng.randrange(1000)
                db.update(oid, {"n": value})
                local[oid] = value
            else:
                oid = rng.choice(live)
                if oid in local_deletes or not db.exists(oid):
                    continue
                db.delete(oid)
                local_deletes.add(oid)
                local.pop(oid, None)
        if not commit:
            txn.abort()
            continue
        with_inflight = dict(confirmed)
        with_inflight.update(local)
        for oid in local_deletes:
            with_inflight.pop(oid, None)
        # A crash inside commit() may land on either side of the
        # durability point; afterwards the commit is a fact.
        out["acceptable"] = [dict(confirmed), with_inflight]
        txn.commit()
        confirmed = with_inflight
        out["acceptable"] = [dict(confirmed)]
        live = list(confirmed)


class TestCrashTortureMatrix:
    @pytest.mark.parametrize("seed", TORTURE_SEEDS)
    def test_injected_crash_recovers_exactly_committed_state(self, tmp_path, seed):
        path = str(tmp_path / ("fault-%d.pages" % seed))
        _setup(path)
        rng = random.Random(seed ^ 0xD1CE)
        # Crash points sweep the whole workload: early (schema barely
        # touched), mid-stream, and deep into page write-back territory.
        crash_after = 5 + (seed * 13) % 220
        plan = FaultPlan(seed, crash_after=crash_after)
        out = {"acceptable": [{}]}
        with plan:
            try:
                db = _fresh_db(path, buffer_capacity=4)
                run_workload_until_crash(db, rng, n_txns=40, out=out)
                db.close()
            except InjectedCrash:
                pass
        assert plan.crashed, "crash point %d never fired (seed %d)" % (
            crash_after,
            seed,
        )
        recovered = Database(path)
        survived = current_state(recovered)
        recovered.close()
        assert survived in out["acceptable"], (
            "seed %d crash@%d: recovered %d objects, not a legal committed "
            "state (acceptable sizes %r)"
            % (seed, crash_after, len(survived), [len(a) for a in out["acceptable"]])
        )
        # Second recovery sees the same state: recovery is idempotent.
        again = Database(path)
        assert current_state(again) == survived
        again.close()


class TestCrashDuringRecovery:
    @pytest.mark.parametrize("seed", [3, 11, 17, 29])
    def test_crash_during_recovery_then_clean_recovery(self, tmp_path, seed):
        path = str(tmp_path / ("rec-crash-%d.pages" % seed))
        _setup(path)
        rng = random.Random(seed)
        first = FaultPlan(seed, crash_after=40 + seed)
        out = {"acceptable": [{}]}
        with first:
            try:
                db = _fresh_db(path, buffer_capacity=4)
                run_workload_until_crash(db, rng, n_txns=40, out=out)
                db.close()
            except InjectedCrash:
                pass
        assert first.crashed

        # Crash again, mid-recovery this time.
        second = FaultPlan(seed + 1000, crash_after=3)
        with second:
            try:
                Database(path)
            except InjectedCrash:
                pass
        # Whether or not the second crash fired before recovery finished,
        # a clean recovery must still land on a legal committed state:
        # recovery is restartable from any interruption point.
        recovered = Database(path)
        survived = current_state(recovered)
        recovered.close()
        assert survived in out["acceptable"]


class TestChecksumAndRepair:
    def test_flipped_byte_raises_naming_the_page(self):
        page = SlottedPage.empty(512)
        page.insert(b"hello world")
        data = bytearray(page.to_bytes())
        data[100] ^= 0x41
        with pytest.raises(PageCorruptError) as exc_info:
            SlottedPage.from_bytes(bytes(data), page_id=7)
        assert exc_info.value.page_id == 7
        assert "page 7" in str(exc_info.value)

    def test_round_trip_verifies_clean(self):
        page = SlottedPage.empty(512)
        slot = page.insert(b"payload")
        restored = SlottedPage.from_bytes(page.to_bytes(), page_id=3)
        assert restored.read(slot) == b"payload"

    def test_all_zero_page_is_checksum_exempt(self):
        SlottedPage.verify_bytes(bytes(512), page_id=1)  # must not raise

    def test_torn_page_repaired_from_image_log(self, tmp_path):
        path = str(tmp_path / "repair.pages")
        _setup(path)
        db = _fresh_db(path)
        with db.transaction():
            for i in range(30):
                db.new("Item", {"n": i})
        expected = current_state(db)
        # Flush pages (logging durable images) but do NOT checkpoint:
        # the image log must survive for repair.
        db.storage.buffer.flush_all()
        db.storage.save_metadata()
        db.storage.pager.close()
        db.wal.close()

        # Tear a data page on disk: keep its first half, zero the rest.
        from repro.storage.pager import FilePager

        with open(path, "r+b") as handle:
            offset = FilePager.HEADER_SIZE  # page 0: the Item heap page
            handle.seek(offset)
            good = handle.read(4096)
            assert len(good) == 4096, "page 0 missing from the file"
            torn = good[:2048] + bytes(2048)
            assert torn != good, "page 0 back half was already empty"
            handle.seek(offset)
            handle.write(torn)

        recovered = Database(path)
        assert current_state(recovered) == expected
        reimaged = [
            row["value"]
            for row in recovered.select(
                "SysStat where name = 'recovery.pages_reimaged'"
            )
        ]
        assert reimaged == [1]
        recovered.close()

    def test_fault_metric_family_visible_via_sysstat(self):
        db = Database()
        names = {row["name"] for row in db.select("SysStat")}
        assert "fault.page_corruptions" in names
        assert "fault.wal_torn_tail" in names
        db.close()


class TestFaultPrimitives:
    def test_transient_errors_are_bounded_and_counted(self, tmp_path):
        path = str(tmp_path / "transient.pages")
        _setup(path)
        plan = FaultPlan(7, os_error_rate=0.2, os_error_budget=3)
        with plan:
            db = _fresh_db(path)
            stored = 0
            for i in range(40):
                try:
                    txn = db.txns.begin()
                    db.new("Item", {"n": i})
                    txn.commit()
                    stored += 1
                except OSError:
                    # A transient EIO anywhere in the transaction aborts
                    # it; the abort itself may hit another injected
                    # error, but the budget bounds the retries.
                    current = db.txns.current
                    while current is not None and current.is_active:
                        try:
                            current.abort()
                        except OSError:
                            continue
                        break
            while True:
                try:
                    db.close()
                    break
                except OSError:
                    continue
        assert plan.os_error_budget == 0, "error budget never exhausted"
        assert stored >= 37  # at most 3 transactions lost to EIO
        survived = Database(path)
        assert len(current_state(survived)) == stored
        survived.close()

    def test_lying_fsync_failures_are_detected_not_silent(self, tmp_path):
        """With lying fsyncs all durability bets are off; what remains
        guaranteed is that recovery either reaches *some* consistent
        state or fails with a typed error — never silent garbage."""
        path = str(tmp_path / "liar.pages")
        _setup(path)
        plan = FaultPlan(99, crash_after=120, lying_fsync_rate=1.0)
        out = {"acceptable": [{}]}
        with plan:
            try:
                db = _fresh_db(path, buffer_capacity=4)
                run_workload_until_crash(db, random.Random(99), n_txns=40, out=out)
                db.close()
            except InjectedCrash:
                pass
        assert plan.crashed
        try:
            recovered = Database(path)
            for state in recovered.storage.scan_class("Item"):
                assert isinstance(state.values["n"], int)
            recovered.close()
        except KimDBError:
            pass  # detected corruption is an acceptable outcome

    def test_wrap_file_is_identity_without_plan(self, tmp_path):
        handle = open(str(tmp_path / "plain"), "wb")
        assert wrap_file(handle, "x") is handle
        handle.close()

    def test_same_seed_same_fault_schedule(self, tmp_path):
        ops = []
        for round_no in range(2):
            path = str(tmp_path / ("det-%d.pages" % round_no))
            _setup(path)
            plan = FaultPlan(1234, crash_after=30)
            with plan:
                try:
                    db = _fresh_db(path)
                    with db.transaction():
                        for i in range(100):
                            db.new("Item", {"n": i})
                    db.close()
                except InjectedCrash:
                    pass
            ops.append(plan.io_ops)
        assert ops[0] == ops[1]

    def test_injected_crash_is_not_an_exception(self):
        assert not issubclass(InjectedCrash, Exception)
        assert issubclass(InjectedCrash, BaseException)

    def test_faulty_file_undo_restores_overwrites(self, tmp_path):
        path = str(tmp_path / "undo.bin")
        with open(path, "wb") as handle:
            handle.write(b"A" * 64)
        plan = FaultPlan(5)
        raw = open(path, "r+b")
        proxy = FaultyFile(raw, "undo-test", plan)
        proxy.seek(16)
        proxy.write(b"B" * 8)

        class _DropAll:
            """rng stub: keep a zero-length prefix of unsynced writes."""

            @staticmethod
            def randrange(_n):
                return 0

        proxy._rewind_unsynced(_DropAll())
        raw.close()
        with open(path, "rb") as handle:
            assert handle.read() == b"A" * 64
