"""Composite objects: exclusivity, delete propagation, closure queries."""

import pytest

from repro import AttributeDef, Database
from repro.composite import attach
from repro.errors import CompositeError


@pytest.fixture
def cdb():
    db = Database()
    attach(db)
    db.define_class(
        "Wheel",
        attributes=[AttributeDef("position", "String")],
    )
    db.define_class(
        "Manual",
        attributes=[AttributeDef("pages", "Integer")],
    )
    db.define_class(
        "Car",
        attributes=[
            AttributeDef("name", "String"),
            AttributeDef(
                "wheels", "Wheel", multi=True, composite=True, exclusive=True, dependent=True
            ),
            AttributeDef("manual", "Manual", composite=True),  # shared, independent
        ],
    )
    return db


def make_car(db, name="car", wheel_count=2, manual=None):
    wheels = [
        db.new("Wheel", {"position": "w%d" % position}) for position in range(wheel_count)
    ]
    car = db.new(
        "Car",
        {
            "name": name,
            "wheels": [w.oid for w in wheels],
            "manual": manual,
        },
    )
    return car, wheels


class TestExclusivity:
    def test_exclusive_part_cannot_be_shared(self, cdb):
        _car, wheels = make_car(cdb)
        with pytest.raises(CompositeError):
            cdb.new("Car", {"name": "thief", "wheels": [wheels[0].oid]})

    def test_exclusive_violation_via_update(self, cdb):
        _car, wheels = make_car(cdb)
        other, _ = make_car(cdb, name="other")
        with pytest.raises(CompositeError):
            cdb.update(other.oid, {"wheels": [wheels[0].oid]})

    def test_shared_part_allowed(self, cdb):
        manual = cdb.new("Manual", {"pages": 10})
        make_car(cdb, "a", manual=manual.oid)
        make_car(cdb, "b", manual=manual.oid)  # shared composite: fine
        assert len(cdb.composites.parents_of(manual.oid)) == 2

    def test_update_keeping_same_part_is_fine(self, cdb):
        car, wheels = make_car(cdb)
        cdb.update(car.oid, {"name": "renamed", "wheels": [w.oid for w in wheels]})
        assert cdb.get(car.oid)["name"] == "renamed"

    def test_exclusivity_released_on_parent_update(self, cdb):
        car, wheels = make_car(cdb)
        cdb.update(car.oid, {"wheels": []})
        # Now another car may own the wheel.
        cdb.new("Car", {"name": "reuser", "wheels": [wheels[0].oid]})


class TestDeletePropagation:
    def test_dependent_parts_cascade(self, cdb):
        car, wheels = make_car(cdb)
        cdb.delete(car.oid)
        for wheel in wheels:
            assert not cdb.exists(wheel.oid)

    def test_non_dependent_part_survives(self, cdb):
        manual = cdb.new("Manual", {"pages": 10})
        car, _ = make_car(cdb, manual=manual.oid)
        cdb.delete(car.oid)
        assert cdb.exists(manual.oid)

    def test_recursive_cascade(self, cdb):
        cdb.define_class(
            "Assembly",
            attributes=[
                AttributeDef(
                    "parts", "Assembly", multi=True, composite=True,
                    exclusive=True, dependent=True,
                ),
            ],
        )
        leaf = cdb.new("Assembly", {"parts": []})
        middle = cdb.new("Assembly", {"parts": [leaf.oid]})
        root = cdb.new("Assembly", {"parts": [middle.oid]})
        cdb.delete(root.oid)
        assert not cdb.exists(middle.oid)
        assert not cdb.exists(leaf.oid)

    def test_cascade_in_one_transaction_rolls_back_together(self, cdb):
        car, wheels = make_car(cdb)
        txn = cdb.transaction()
        cdb.delete(car.oid)
        assert not cdb.exists(wheels[0].oid)
        txn.abort()
        assert cdb.exists(car.oid)
        assert cdb.exists(wheels[0].oid)

    def test_shared_dependent_part_kept_while_other_parent_exists(self, cdb):
        cdb.define_class(
            "Folder",
            attributes=[
                AttributeDef(
                    "docs", "Manual", multi=True, composite=True, dependent=True
                ),
            ],
        )
        doc = cdb.new("Manual", {"pages": 1})
        f1 = cdb.new("Folder", {"docs": [doc.oid]})
        f2 = cdb.new("Folder", {"docs": [doc.oid]})
        cdb.delete(f1.oid)
        assert cdb.exists(doc.oid)  # still held by f2
        cdb.delete(f2.oid)
        assert not cdb.exists(doc.oid)


class TestClosureQueries:
    def test_parts_of_transitive(self, cdb):
        cdb.define_class(
            "Assembly",
            attributes=[
                AttributeDef(
                    "parts", "Assembly", multi=True, composite=True,
                    exclusive=True, dependent=True,
                ),
            ],
        )
        leaves = [cdb.new("Assembly", {"parts": []}) for _ in range(2)]
        middle = cdb.new("Assembly", {"parts": [l.oid for l in leaves]})
        root = cdb.new("Assembly", {"parts": [middle.oid]})
        parts = cdb.composites.parts_of(root.oid)
        assert set(parts) == {middle.oid, leaves[0].oid, leaves[1].oid}
        direct = cdb.composites.parts_of(root.oid, transitive=False)
        assert direct == [middle.oid]

    def test_parents_and_root(self, cdb):
        car, wheels = make_car(cdb)
        parents = cdb.composites.parents_of(wheels[0].oid)
        assert parents == [(car.oid, "wheels")]
        assert cdb.composites.composite_root_of(wheels[0].oid) == car.oid
        assert cdb.composites.composite_root_of(car.oid) == car.oid

    def test_is_part(self, cdb):
        car, wheels = make_car(cdb)
        assert cdb.composites.is_part(wheels[0].oid)
        assert not cdb.composites.is_part(car.oid)

    def test_rebuild_from_storage(self, cdb):
        car, wheels = make_car(cdb)
        cdb.composites._parents.clear()
        cdb.composites.rebuild()
        assert cdb.composites.parents_of(wheels[0].oid) == [(car.oid, "wheels")]
