"""Composite objects as units of locking, checkout and deletion [KIM89c]."""

import pytest

from repro import AttributeDef, Database
from repro.composite import attach
from repro.errors import CompositeError, LockTimeoutError


@pytest.fixture
def adb():
    db = Database()
    attach(db)
    db.define_class(
        "Part2",
        attributes=[AttributeDef("label", "String")],
    )
    db.define_class(
        "Assembly",
        attributes=[
            AttributeDef("label", "String"),
            AttributeDef(
                "subs", "Assembly", multi=True, composite=True,
                exclusive=True, dependent=True,
            ),
            AttributeDef("doc", "Part2", composite=True),  # shared part
        ],
    )
    return db


def build_assembly(db):
    doc = db.new("Part2", {"label": "shared-doc"})
    leaves = [db.new("Assembly", {"label": "leaf-%d" % i}) for i in range(3)]
    mid = db.new("Assembly", {"label": "mid", "subs": [l.oid for l in leaves]})
    root = db.new(
        "Assembly", {"label": "root", "subs": [mid.oid], "doc": doc.oid}
    )
    return root, mid, leaves, doc


class TestCompositeLocking:
    def test_locks_whole_closure(self, adb):
        root, mid, leaves, doc = build_assembly(adb)
        with adb.transaction() as txn:
            count = adb.composites.lock_composite(root.oid, write=True)
            assert count == 2 + len(leaves) + 1  # root, mid, leaves, doc
            for oid in [root.oid, mid.oid, doc.oid] + [l.oid for l in leaves]:
                assert adb.locks.holds(txn.txn_id, ("object", oid), "X")
            txn.abort()

    def test_requires_transaction(self, adb):
        root, *_rest = build_assembly(adb)
        with pytest.raises(CompositeError):
            adb.composites.lock_composite(root.oid)

    def test_blocks_part_writers(self, adb):
        root, mid, _leaves, _doc = build_assembly(adb)
        txn = adb.transaction()
        adb.composites.lock_composite(root.oid, write=True)
        with pytest.raises(LockTimeoutError):
            adb.locks.acquire(9999, ("object", mid.oid), "S", timeout=0.05)
        txn.abort()

    def test_read_lock_allows_other_readers(self, adb):
        root, mid, _leaves, _doc = build_assembly(adb)
        txn = adb.transaction()
        adb.composites.lock_composite(root.oid, write=False)
        adb.locks.acquire(9999, ("object", mid.oid), "S", timeout=0.05)
        adb.locks.release_all(9999)
        txn.abort()


class TestCompositeCheckout:
    def test_checkout_closure(self, adb):
        root, mid, leaves, doc = build_assembly(adb)
        workspace = adb.workspace("designer")
        taken = adb.composites.checkout_composite(workspace, root.oid)
        assert set(taken) == {root.oid, mid.oid, doc.oid} | {l.oid for l in leaves}
        workspace.update(mid.oid, {"label": "mid-v2"})
        report = workspace.checkin()
        assert report.ok
        assert adb.get(mid.oid)["label"] == "mid-v2"

    def test_checkout_conflict_on_any_part(self, adb):
        root, mid, _leaves, _doc = build_assembly(adb)
        workspace = adb.workspace()
        adb.composites.checkout_composite(workspace, root.oid)
        workspace.update(root.oid, {"label": "root-v2"})
        adb.update(mid.oid, {"label": "changed-behind-your-back"})
        report = workspace.checkin()
        assert not report.ok
        assert report.conflicts[0].oid == mid.oid


class TestDeleteComposite:
    def test_deletes_exclusive_closure_keeps_shared(self, adb):
        root, mid, leaves, doc = build_assembly(adb)
        deleted = adb.composites.delete_composite(root.oid)
        assert deleted == 2 + len(leaves)  # root + mid + leaves; doc shared
        assert not adb.exists(root.oid)
        assert not adb.exists(mid.oid)
        for leaf in leaves:
            assert not adb.exists(leaf.oid)
        assert adb.exists(doc.oid)

    def test_delete_composite_is_atomic(self, adb):
        root, mid, leaves, _doc = build_assembly(adb)
        txn = adb.transaction()
        adb.composites.delete_composite(root.oid)
        assert not adb.exists(mid.oid)
        txn.abort()
        assert adb.exists(root.oid)
        assert adb.exists(mid.oid)
        for leaf in leaves:
            assert adb.exists(leaf.oid)
