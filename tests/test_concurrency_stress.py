"""Concurrency stress: invariants under interleaved transactions."""

import random
import threading

import pytest

from repro import AttributeDef, Database
from repro.errors import DeadlockError, LockTimeoutError

N_ACCOUNTS = 12
INITIAL = 100


@pytest.fixture
def bank():
    db = Database()
    db.define_class("Account", attributes=[AttributeDef("balance", "Integer")])
    oids = [db.new("Account", {"balance": INITIAL}).oid for _ in range(N_ACCOUNTS)]
    return db, oids


def total_balance(db, oids):
    return sum(db.get(oid)["balance"] for oid in oids)


class TestTransfers:
    def test_concurrent_transfers_conserve_total(self, bank):
        db, oids = bank
        errors = []
        retries = [0]

        def worker(seed):
            rng = random.Random(seed)
            done = 0
            while done < 20:
                src, dst = rng.sample(oids, 2)
                # Lock in OID order to avoid deadlocks; amounts random.
                first, second = (src, dst) if src < dst else (dst, src)
                amount = rng.randrange(1, 10)
                txn = db.transaction()
                try:
                    a = db.get_state(first)
                    b = db.get_state(second)
                    db.update(first, {"balance": a.values["balance"] - amount})
                    db.update(second, {"balance": b.values["balance"] + amount})
                    txn.commit()
                    done += 1
                except (DeadlockError, LockTimeoutError):
                    retries[0] += 1
                    if txn.is_active:
                        txn.abort()
                except Exception as exc:  # pragma: no cover - report real bugs
                    errors.append(exc)
                    if txn.is_active:
                        txn.abort()
                    return

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert total_balance(db, oids) == N_ACCOUNTS * INITIAL
        assert db.locks.lock_count() == 0

    def test_deadlock_victims_abort_cleanly(self, bank):
        db, oids = bank
        outcomes = []
        barrier = threading.Barrier(2)

        def worker(order):
            first, second = (oids[0], oids[1]) if order else (oids[1], oids[0])
            txn = db.transaction()
            try:
                db.update(first, {"balance": 1})
                barrier.wait(timeout=10)
                db.update(second, {"balance": 2})
                txn.commit()
                outcomes.append("committed")
            except (DeadlockError, LockTimeoutError):
                if txn.is_active:
                    txn.abort()
                outcomes.append("aborted")

        threads = [threading.Thread(target=worker, args=(o,)) for o in (True, False)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        # At least one side survives; nobody hangs; locks all released.
        assert "committed" in outcomes or outcomes == ["aborted", "aborted"]
        assert len(outcomes) == 2
        assert db.locks.lock_count() == 0
        # Atomicity: each account holds a committed value, never a torn one.
        for oid in oids[:2]:
            assert db.get(oid)["balance"] in (1, 2, INITIAL)

    def test_readers_see_consistent_snapshots_under_writers(self, bank):
        db, oids = bank
        stop = threading.Event()
        violations = []

        def writer():
            rng = random.Random(1)
            while not stop.is_set():
                src, dst = rng.sample(oids, 2)
                first, second = (src, dst) if src < dst else (dst, src)
                try:
                    with db.transaction():
                        a = db.get_state(first)
                        b = db.get_state(second)
                        db.update(first, {"balance": a.values["balance"] - 1})
                        db.update(second, {"balance": b.values["balance"] + 1})
                except (DeadlockError, LockTimeoutError):
                    pass

        def reader():
            for _ in range(15):
                try:
                    with db.transaction():
                        # Class-level S lock: a full consistent scan.
                        total = sum(
                            h["balance"] for h in db.instances("Account")
                        )
                    if total != N_ACCOUNTS * INITIAL:
                        violations.append(total)
                except (DeadlockError, LockTimeoutError):
                    pass

        writer_thread = threading.Thread(target=writer)
        reader_thread = threading.Thread(target=reader)
        writer_thread.start()
        reader_thread.start()
        reader_thread.join(timeout=60)
        stop.set()
        writer_thread.join(timeout=60)
        assert violations == [], "readers observed torn transfer totals"
