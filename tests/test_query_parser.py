"""OQL parsing."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.ast import (
    AdtPredicate,
    And,
    Comparison,
    MethodCall,
    Not,
    Or,
    Path,
)
from repro.query.parser import parse_query


class TestBasics:
    def test_minimal_query(self):
        query = parse_query("SELECT v FROM Vehicle v")
        assert query.target_class == "Vehicle"
        assert query.variable == "v"
        assert query.where is None
        assert query.hierarchy
        assert query.projections is None

    def test_only_scope(self):
        assert not parse_query("SELECT v FROM ONLY Vehicle v").hierarchy

    def test_case_insensitive_keywords(self):
        query = parse_query("select v from only Vehicle v where v.weight > 1")
        assert not query.hierarchy
        assert isinstance(query.where, Comparison)

    def test_star_select(self):
        assert parse_query("SELECT * FROM Vehicle v").projections is None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT v FROM Vehicle v garbage")

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT v FROM Vehicle v WHERE v.x # 3")


class TestPredicates:
    def test_comparison_ops(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            query = parse_query("SELECT v FROM V v WHERE v.x %s 5" % op)
            assert query.where.op == op

    def test_ne_alias(self):
        assert parse_query("SELECT v FROM V v WHERE v.x <> 5").where.op == "!="

    def test_string_literals(self):
        query = parse_query("SELECT v FROM V v WHERE v.name = 'Detroit'")
        assert query.where.const.value == "Detroit"
        query = parse_query('SELECT v FROM V v WHERE v.name = "Motor City"')
        assert query.where.const.value == "Motor City"

    def test_numeric_literals(self):
        assert parse_query("SELECT v FROM V v WHERE v.x = -3").where.const.value == -3
        assert parse_query("SELECT v FROM V v WHERE v.x = 2.5").where.const.value == 2.5

    def test_boolean_and_null_literals(self):
        assert parse_query("SELECT v FROM V v WHERE v.x = true").where.const.value is True
        assert parse_query("SELECT v FROM V v WHERE v.x = null").where.const.value is None

    def test_nested_path(self):
        query = parse_query(
            "SELECT v FROM Vehicle v WHERE v.manufacturer.location = 'Detroit'"
        )
        assert query.where.path == Path(("manufacturer", "location"))

    def test_like(self):
        query = parse_query("SELECT v FROM V v WHERE v.name LIKE 'com%'")
        assert query.where.op == "like"

    def test_in_list(self):
        query = parse_query("SELECT v FROM V v WHERE v.color IN ('red', 'blue')")
        assert query.where.op == "in"
        assert query.where.const.value == ["red", "blue"]

    def test_contains(self):
        query = parse_query("SELECT v FROM V v WHERE v.tags CONTAINS 'fast'")
        assert query.where.op == "contains"

    def test_list_literal(self):
        query = parse_query("SELECT v FROM V v WHERE v.x IN (1, 2)")
        assert query.where.const.value == [1, 2]

    def test_path_must_start_with_variable(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT v FROM V v WHERE w.x = 1")


class TestBooleanStructure:
    def test_and(self):
        query = parse_query("SELECT v FROM V v WHERE v.x = 1 AND v.y = 2")
        assert isinstance(query.where, And)
        assert len(query.where.operands) == 2

    def test_or_precedence(self):
        query = parse_query("SELECT v FROM V v WHERE v.x = 1 OR v.y = 2 AND v.z = 3")
        assert isinstance(query.where, Or)
        assert isinstance(query.where.operands[1], And)

    def test_parentheses_override(self):
        query = parse_query(
            "SELECT v FROM V v WHERE (v.x = 1 OR v.y = 2) AND v.z = 3"
        )
        assert isinstance(query.where, And)
        assert isinstance(query.where.operands[0], Or)

    def test_not(self):
        query = parse_query("SELECT v FROM V v WHERE NOT v.x = 1")
        assert isinstance(query.where, Not)

    def test_chained_and(self):
        query = parse_query(
            "SELECT v FROM V v WHERE v.a = 1 AND v.b = 2 AND v.c = 3"
        )
        assert len(query.where.operands) == 3


class TestProjectionsOrderLimit:
    def test_projection_paths(self):
        query = parse_query("SELECT v.name, v.maker.location FROM V v")
        assert query.projections == [Path(("name",)), Path(("maker", "location"))]

    def test_projection_wrong_variable_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT w.name FROM V v")

    def test_order_by(self):
        query = parse_query("SELECT v FROM V v ORDER BY v.weight DESC")
        assert query.order_by == Path(("weight",))
        assert query.descending

    def test_order_by_asc_default(self):
        query = parse_query("SELECT v FROM V v ORDER BY v.weight")
        assert not query.descending

    def test_limit(self):
        assert parse_query("SELECT v FROM V v LIMIT 10").limit == 10

    def test_full_clause_order(self):
        query = parse_query(
            "SELECT v.name FROM ONLY V v WHERE v.x > 1 ORDER BY v.name ASC LIMIT 5"
        )
        assert query.limit == 5 and not query.hierarchy


class TestMethodAndAdtPredicates:
    def test_method_call_on_target(self):
        query = parse_query("SELECT v FROM V v WHERE v.age() > 10")
        assert isinstance(query.where, MethodCall)
        assert query.where.path is None
        assert query.where.selector == "age"
        assert query.where.op == ">"

    def test_method_call_default_true(self):
        query = parse_query("SELECT v FROM V v WHERE v.is_heavy()")
        assert query.where.const.value is True
        assert query.where.op == "="

    def test_method_call_on_path(self):
        query = parse_query("SELECT v FROM V v WHERE v.maker.founded_before(1950)")
        assert query.where.path == Path(("maker",))
        assert query.where.args == [1950]

    def test_adt_predicate(self):
        query = parse_query("SELECT c FROM Cell c WHERE overlaps(c.shape, [0, 0, 4, 4])")
        assert isinstance(query.where, AdtPredicate)
        assert query.where.name == "overlaps"
        assert query.where.args == [0, 0, 4, 4]

    def test_figure1_query_roundtrip(self):
        query = parse_query(
            "SELECT v FROM Vehicle v "
            "WHERE v.weight > 7500 AND v.manufacturer.location = 'Detroit'"
        )
        assert isinstance(query.where, And)
        first, second = query.where.operands
        assert first.path == Path(("weight",)) and first.const.value == 7500
        assert second.path == Path(("manufacturer", "location"))
