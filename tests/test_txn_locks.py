"""Lock manager: compatibility, upgrades, blocking, deadlock detection."""

import threading
import time

import pytest

from repro.core.oid import OID
from repro.errors import DeadlockError, LockTimeoutError
from repro.txn.locks import (
    DATABASE,
    IS,
    IX,
    S,
    X,
    LockManager,
    class_resource,
    compatible,
    object_resource,
)


class TestCompatibilityMatrix:
    def test_is_compatible_with_everything_but_x(self):
        assert compatible(IS, IS) and compatible(IS, IX) and compatible(IS, S)
        assert not compatible(IS, X)

    def test_ix_blocks_s(self):
        assert compatible(IX, IX)
        assert not compatible(IX, S)

    def test_s_blocks_writers(self):
        assert compatible(S, S) and compatible(S, IS)
        assert not compatible(S, IX) and not compatible(S, X)

    def test_x_exclusive(self):
        for mode in (IS, IX, S, X):
            assert not compatible(X, mode)


class TestAcquisition:
    def test_reacquire_same_mode_is_noop(self):
        locks = LockManager()
        locks.acquire(1, DATABASE, IS)
        locks.acquire(1, DATABASE, IS)
        assert locks.stats.acquisitions == 1

    def test_upgrade_s_to_x(self):
        locks = LockManager()
        resource = object_resource(OID(1))
        locks.acquire(1, resource, S)
        locks.acquire(1, resource, X)
        assert locks.holds(1, resource, X)
        assert locks.stats.upgrades == 1

    def test_weaker_request_covered_by_stronger_hold(self):
        locks = LockManager()
        resource = class_resource("Vehicle")
        locks.acquire(1, resource, X)
        locks.acquire(1, resource, S)  # no-op: X covers S
        assert locks.holds(1, resource, X)

    def test_shared_holders(self):
        locks = LockManager()
        resource = class_resource("Vehicle")
        locks.acquire(1, resource, S)
        locks.acquire(2, resource, S)
        assert locks.holds(1, resource, S) and locks.holds(2, resource, S)

    def test_conflicting_request_times_out(self):
        locks = LockManager()
        resource = object_resource(OID(1))
        locks.acquire(1, resource, X)
        with pytest.raises(LockTimeoutError):
            locks.acquire(2, resource, S, timeout=0.05)
        assert locks.stats.blocks >= 1

    def test_release_all_unblocks_waiters(self):
        locks = LockManager()
        resource = object_resource(OID(1))
        locks.acquire(1, resource, X)
        acquired = threading.Event()

        def waiter():
            locks.acquire(2, resource, X, timeout=5)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        locks.release_all(1)
        thread.join(timeout=5)
        assert acquired.is_set()

    def test_release_all_clears_bookkeeping(self):
        locks = LockManager()
        locks.acquire(1, DATABASE, IX)
        locks.acquire(1, class_resource("A"), IX)
        locks.release_all(1)
        assert locks.lock_count() == 0
        assert locks.locks_held(1) == []

    def test_locks_held_listing(self):
        locks = LockManager()
        locks.acquire(1, DATABASE, IS)
        locks.acquire(1, class_resource("A"), S)
        held = dict(locks.locks_held(1))
        assert held[DATABASE] == IS
        assert held[class_resource("A")] == S

    def test_unknown_mode_rejected(self):
        locks = LockManager()
        with pytest.raises(Exception):
            locks.acquire(1, DATABASE, "Z")


class TestHierarchyGranularity:
    def test_intention_locks_allow_fine_grain_concurrency(self):
        locks = LockManager()
        # txn 1 writes object 1, txn 2 writes object 2: both take IX at
        # class level (compatible), X at their own object.
        locks.acquire(1, class_resource("Part"), IX)
        locks.acquire(1, object_resource(OID(1)), X)
        locks.acquire(2, class_resource("Part"), IX)
        locks.acquire(2, object_resource(OID(2)), X)
        assert locks.lock_count() == 4

    def test_class_s_blocks_object_writer_at_class_level(self):
        locks = LockManager()
        locks.acquire(1, class_resource("Part"), S)  # class scan
        with pytest.raises(LockTimeoutError):
            locks.acquire(2, class_resource("Part"), IX, timeout=0.05)

    def test_class_scan_takes_one_lock_not_n(self):
        locks = LockManager()
        locks.acquire(1, DATABASE, IS)
        locks.acquire(1, class_resource("Part"), S)
        assert locks.lock_count() == 2


class TestDeadlock:
    def test_two_party_deadlock_detected(self):
        locks = LockManager()
        a, b = object_resource(OID(1)), object_resource(OID(2))
        locks.acquire(1, a, X)
        locks.acquire(2, b, X)
        errors = []

        def t1():
            try:
                locks.acquire(1, b, X, timeout=5)
            except DeadlockError as exc:
                errors.append(exc)
            finally:
                locks.release_all(1)

        thread = threading.Thread(target=t1)
        thread.start()
        time.sleep(0.1)  # let txn 1 block on b
        # txn 2 requesting a closes the cycle -> one side aborts.
        try:
            locks.acquire(2, a, X, timeout=5)
        except DeadlockError as exc:
            errors.append(exc)
        finally:
            locks.release_all(2)
        thread.join(timeout=5)
        assert len(errors) >= 1
        assert locks.stats.deadlocks >= 1

    def test_self_conflict_is_not_deadlock(self):
        locks = LockManager()
        resource = object_resource(OID(1))
        locks.acquire(1, resource, S)
        locks.acquire(1, resource, X)  # upgrade, no other holders
        assert locks.holds(1, resource, X)
