"""Relational baseline: tables, constraints, joins."""

import pytest

from repro.errors import KimDBError
from repro.relational import Column, RelationalEngine


@pytest.fixture
def engine():
    engine = RelationalEngine()
    engine.create_table(
        "dept",
        [("dept_id", "int"), ("name", "str")],
        primary_key="dept_id",
    )
    engine.create_table(
        "emp",
        [("emp_id", "int"), ("name", "str"), ("dept_id", "int"), ("salary", "int")],
        primary_key="emp_id",
    )
    for dept_id, name in [(1, "eng"), (2, "sales")]:
        engine.insert("dept", {"dept_id": dept_id, "name": name})
    for emp_id, name, dept_id, salary in [
        (1, "alice", 1, 100),
        (2, "bob", 1, 90),
        (3, "carol", 2, 80),
    ]:
        engine.insert(
            "emp",
            {"emp_id": emp_id, "name": name, "dept_id": dept_id, "salary": salary},
        )
    return engine


class TestTables:
    def test_typed_columns_enforced(self, engine):
        with pytest.raises(KimDBError):
            engine.insert("emp", {"emp_id": 9, "name": 5, "dept_id": 1, "salary": 1})

    def test_not_null(self):
        engine = RelationalEngine()
        engine.create_table("t", [Column("a", "int", nullable=False)])
        with pytest.raises(KimDBError):
            engine.insert("t", {"a": None})

    def test_primary_key_uniqueness(self, engine):
        with pytest.raises(KimDBError):
            engine.insert("dept", {"dept_id": 1, "name": "dup"})

    def test_unknown_column_rejected(self, engine):
        with pytest.raises(KimDBError):
            engine.insert("dept", {"dept_id": 9, "ghost": 1})

    def test_update_row(self, engine):
        table = engine.table("emp")
        row_id = next(rid for rid, row in table.scan() if row["name"] == "alice")
        table.update(row_id, {"salary": 120})
        assert table.get(row_id)["salary"] == 120

    def test_update_pk_collision_rejected(self, engine):
        table = engine.table("emp")
        row_id = next(rid for rid, _row in table.scan())
        with pytest.raises(KimDBError):
            table.update(row_id, {"emp_id": 2})

    def test_delete_row(self, engine):
        table = engine.table("emp")
        row_id = next(rid for rid, _row in table.scan())
        table.delete(row_id)
        assert len(table) == 2

    def test_duplicate_table_rejected(self, engine):
        with pytest.raises(KimDBError):
            engine.create_table("emp", [("x", "int")])

    def test_pk_lookup(self, engine):
        assert engine.table("emp").by_primary_key(2)["name"] == "bob"
        assert engine.table("emp").by_primary_key(99) is None

    def test_secondary_index_maintained(self, engine):
        table = engine.table("emp")
        table.create_index("salary")
        assert [r["name"] for r in table.index_lookup("salary", 90)] == ["bob"]
        row_id = next(rid for rid, row in table.scan() if row["name"] == "bob")
        table.update(row_id, {"salary": 95})
        assert table.index_lookup("salary", 90) == []
        assert [r["name"] for r in table.index_lookup("salary", 95)] == ["bob"]
        table.delete(row_id)
        assert table.index_lookup("salary", 95) == []


class TestOperators:
    def test_scan_counts_rows(self, engine):
        engine.stats.reset()
        rows = list(engine.scan("emp"))
        assert len(rows) == 3
        assert engine.stats.rows_examined == 3

    def test_select_predicate(self, engine):
        rich = engine.select("emp", lambda row: row["salary"] >= 90)
        assert sorted(r["name"] for r in rich) == ["alice", "bob"]

    def test_select_eq_uses_pk(self, engine):
        engine.stats.reset()
        rows = engine.select_eq("emp", "emp_id", 2)
        assert rows[0]["name"] == "bob"
        assert engine.stats.index_lookups == 1
        assert engine.stats.rows_examined == 0

    def test_select_eq_falls_back_to_scan(self, engine):
        engine.stats.reset()
        rows = engine.select_eq("emp", "name", "carol")
        assert rows[0]["dept_id"] == 2
        assert engine.stats.rows_examined == 3

    def test_project(self, engine):
        rows = RelationalEngine.project(engine.scan("emp"), ["name"])
        assert all(set(row) == {"name"} for row in rows)


class TestJoins:
    def equal_results(self, engine, join_fn):
        left = list(engine.scan("emp"))
        joined = join_fn(left, "dept_id", "dept", "dept_id")
        return sorted((row["name"], row["dept.name"] if "dept.name" in row else row["name"]) for row in joined)

    def test_all_join_methods_agree(self, engine):
        left = list(engine.scan("emp"))
        nested = engine.nested_loop_join(left, "dept_id", "dept", "dept_id")
        hashed = engine.hash_join(left, "dept_id", "dept", "dept_id")
        indexed = engine.index_join(left, "dept_id", "dept", "dept_id")

        def key(rows):
            return sorted((row["emp_id"], row["dept_id"]) for row in rows)

        assert key(nested) == key(hashed) == key(indexed)
        assert len(nested) == 3

    def test_join_merges_columns(self, engine):
        left = list(engine.scan("emp"))
        joined = engine.hash_join(left, "dept_id", "dept", "dept_id")
        row = next(r for r in joined if r["emp_id"] == 1)
        # emp's "name" kept; dept's colliding "name" prefixed.
        assert row["name"] == "alice"
        assert row["dept.name"] == "eng"

    def test_index_join_requires_index(self, engine):
        left = list(engine.scan("dept"))
        with pytest.raises(KimDBError):
            engine.index_join(left, "dept_id", "emp", "dept_id")

    def test_auto_join_prefers_index(self, engine):
        engine.stats.reset()
        left = list(engine.scan("emp"))
        engine.join(left, "dept_id", "dept", "dept_id")
        assert engine.stats.index_lookups == 3  # one PK probe per outer row

    def test_null_keys_do_not_join(self, engine):
        engine.insert("emp", {"emp_id": 9, "name": "nodept", "dept_id": None, "salary": 1})
        left = list(engine.scan("emp"))
        joined = engine.hash_join(left, "dept_id", "dept", "dept_id")
        assert all(row["emp_id"] != 9 for row in joined)

    def test_nested_loop_cost_quadratic(self, engine):
        engine.stats.reset()
        left = list(engine.scan("emp"))
        engine.stats.reset()
        engine.nested_loop_join(left, "dept_id", "dept", "dept_id")
        # 3 outer * 2 inner + inner scan for materialization.
        assert engine.stats.rows_examined >= 3 * 2
