"""Schema evolution: taxonomy operations, invariants, lazy coercion."""

import pytest

from repro import AttributeDef, Database, MethodDef
from repro.errors import SchemaEvolutionError
from repro.evolution import SchemaEvolution, check_all
from repro.evolution.invariants import check_domain_compatibility_invariant


@pytest.fixture
def edb():
    db = Database()
    db.define_class("Company", attributes=[AttributeDef("name", "String")])
    db.define_class("AutoCompany", superclasses=("Company",))
    db.define_class(
        "Vehicle",
        attributes=[
            AttributeDef("weight", "Integer"),
            AttributeDef("maker", "Company"),
        ],
    )
    db.define_class("Truck", superclasses=("Vehicle",))
    return db


@pytest.fixture
def evo(edb):
    return SchemaEvolution(edb)


class TestAttributeChanges:
    def test_add_attribute_metadata_only(self, edb, evo):
        vehicle = edb.new("Vehicle", {"weight": 1})
        stored_before = edb.storage.load(vehicle.oid).values
        evo.add_attribute("Vehicle", AttributeDef("color", "String", default="grey"))
        # Stored record untouched; loaded view coerced with the default.
        assert "color" not in edb.storage.load(vehicle.oid).values
        assert edb.get(vehicle.oid)["color"] == "grey"
        assert edb.storage.load(vehicle.oid).values == stored_before

    def test_added_attribute_inherited_by_subclasses(self, edb, evo):
        truck = edb.new("Truck", {"weight": 5})
        evo.add_attribute("Vehicle", AttributeDef("color", "String", default="grey"))
        assert edb.get(truck.oid)["color"] == "grey"

    def test_add_attribute_writable_after(self, edb, evo):
        vehicle = edb.new("Vehicle", {"weight": 1})
        evo.add_attribute("Vehicle", AttributeDef("color", "String"))
        edb.update(vehicle.oid, {"color": "red"})
        assert edb.get(vehicle.oid)["color"] == "red"

    def test_drop_attribute_lazy(self, edb, evo):
        vehicle = edb.new("Vehicle", {"weight": 42})
        evo.drop_attribute("Vehicle", "weight")
        assert "weight" not in edb.schema.attributes("Vehicle")
        # Stored value remains but is invisible through the schema.
        assert "weight" in edb.storage.load(vehicle.oid).values
        assert "weight" not in edb.get_state(vehicle.oid).values

    def test_drop_inherited_attribute_rejected(self, evo):
        with pytest.raises(SchemaEvolutionError):
            evo.drop_attribute("Truck", "weight")

    def test_drop_indexed_attribute_rejected(self, edb, evo):
        edb.create_hierarchy_index("Vehicle", "weight")
        with pytest.raises(SchemaEvolutionError):
            evo.drop_attribute("Vehicle", "weight")

    def test_rename_attribute_rewrites_instances(self, edb, evo):
        vehicle = edb.new("Vehicle", {"weight": 42})
        count = evo.rename_attribute("Vehicle", "weight", "mass")
        assert count >= 1
        assert edb.get(vehicle.oid)["mass"] == 42
        assert "weight" not in edb.schema.attributes("Vehicle")
        assert "mass" in edb.schema.attributes("Truck")

    def test_change_default(self, edb, evo):
        evo.add_attribute("Vehicle", AttributeDef("color", "String", default="grey"))
        evo.change_default("Vehicle", "color", "black")
        vehicle = edb.new("Vehicle", {"weight": 1})
        assert vehicle["color"] == "black"

    def test_redefinition_must_specialize_domain(self, edb, evo):
        # Truck redefines maker with an unrelated domain: invariant violated.
        with pytest.raises(SchemaEvolutionError):
            evo.add_attribute("Truck", AttributeDef("maker", "Vehicle"))
        # The rollback leaves the schema unchanged.
        assert edb.schema.attribute("Truck", "maker").domain == "Company"
        check_all(edb.schema)

    def test_redefinition_with_subdomain_allowed(self, edb, evo):
        evo.add_attribute("Truck", AttributeDef("maker", "AutoCompany"))
        assert edb.schema.attribute("Truck", "maker").domain == "AutoCompany"
        check_domain_compatibility_invariant(edb.schema)


class TestMethodChanges:
    def test_add_and_drop_method(self, edb, evo):
        evo.add_method("Vehicle", MethodDef("honk", lambda recv: "beep"))
        vehicle = edb.new("Vehicle", {"weight": 1})
        assert vehicle.send("honk") == "beep"
        evo.drop_method("Vehicle", "honk")
        with pytest.raises(Exception):
            vehicle.send("honk")

    def test_drop_missing_method_rejected(self, evo):
        with pytest.raises(SchemaEvolutionError):
            evo.drop_method("Vehicle", "ghost")


class TestEdgeChanges:
    def test_add_superclass_brings_attributes(self, edb, evo):
        edb.define_class("Electric", attributes=[AttributeDef("range_km", "Integer", default=300)])
        evo.add_superclass("Truck", "Electric")
        truck = edb.new("Truck", {"weight": 1})
        assert truck["range_km"] == 300

    def test_add_superclass_cycle_rejected(self, evo):
        with pytest.raises(Exception):
            evo.add_superclass("Vehicle", "Truck")

    def test_drop_superclass_reroots_at_object(self, edb, evo):
        evo.drop_superclass("Truck", "Vehicle")
        assert edb.schema.get_class("Truck").superclasses == ["Object"]
        assert "weight" not in edb.schema.attributes("Truck")

    def test_drop_superclass_keeps_other_edges(self, edb, evo):
        edb.define_class("Toy")
        evo.add_superclass("Truck", "Toy")
        evo.drop_superclass("Truck", "Toy")
        assert edb.schema.is_subclass("Truck", "Vehicle")

    def test_hierarchy_index_follows_edge_change(self, edb, evo):
        index = edb.create_hierarchy_index("Vehicle", "weight")
        truck = edb.new("Truck", {"weight": 9})
        assert truck.oid in index.lookup_eq(9)
        evo.drop_superclass("Truck", "Vehicle")
        assert truck.oid not in index.lookup_eq(9)


class TestNodeChanges:
    def test_drop_leaf_class_deletes_instances(self, edb, evo):
        truck = edb.new("Truck", {"weight": 1})
        count = evo.drop_class("Truck")
        assert count == 1
        assert not edb.exists(truck.oid)
        assert not edb.schema.has_class("Truck")

    def test_drop_class_with_subclasses_rejected(self, evo):
        with pytest.raises(SchemaEvolutionError):
            evo.drop_class("Vehicle")

    def test_drop_class_with_migration(self, edb, evo):
        truck = edb.new("Truck", {"weight": 7})
        evo.drop_class("Truck", migrate_to="Vehicle")
        assert edb.class_of(truck.oid) == "Vehicle"
        assert edb.get(truck.oid)["weight"] == 7

    def test_rename_class(self, edb, evo):
        truck = edb.new("Truck", {"weight": 7})
        evo.rename_class("Truck", "Lorry")
        assert edb.class_of(truck.oid) == "Lorry"
        assert edb.schema.is_subclass("Lorry", "Vehicle")
        assert not edb.schema.has_class("Truck")
        assert len(edb.select("SELECT l FROM Lorry l")) == 1

    def test_rename_class_fixes_domains(self, edb, evo):
        evo.rename_class("Company", "Corporation")
        assert edb.schema.attribute("Vehicle", "maker").domain == "Corporation"

    def test_migrate_instance_coerces_values(self, edb, evo):
        truck = edb.new("Truck", {"weight": 7})
        evo.migrate_instance(truck.oid, "Company")
        assert edb.class_of(truck.oid) == "Company"
        state = edb.get_state(truck.oid)
        assert "weight" not in state.values
        assert "name" in state.values

    def test_migration_maintains_indexes(self, edb, evo):
        index = edb.create_hierarchy_index("Vehicle", "weight")
        truck = edb.new("Truck", {"weight": 7})
        evo.migrate_instance(truck.oid, "Company")
        assert truck.oid not in index.lookup_eq(7)

    def test_audit_log_records_operations(self, edb, evo):
        evo.add_attribute("Vehicle", AttributeDef("color", "String"))
        evo.rename_attribute("Vehicle", "color", "paint")
        assert any("add_attribute" in entry for entry in evo.log)
        assert any("rename_attribute" in entry for entry in evo.log)
