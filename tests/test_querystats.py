"""Query-fingerprint statistics, ANALYZE, and trace propagation.

Covers the PR-9 observability tentpole end to end:

* the :class:`~repro.obs.querystats.QueryStats` accumulator (unit level
  and through the full parse -> analyze -> plan -> pipeline path into
  ``SysQueryStat``), including its invalidation contract — schema epoch
  and index epoch both purge accumulated rows;
* ``Database.analyze()`` and the :class:`~repro.obs.stats` catalog —
  equi-depth histograms, persistence across close/reopen, the
  ``SysClassStat`` / ``SysIndexStat`` views, and the planner's inert
  stats note;
* the Prometheus text rendering of latency histograms (``_bucket`` /
  ``_sum`` / ``_count`` series, label escaping);
* trace propagation — the tracer's thread-local trace context, and the
  wire-level contract that a client-stamped trace id appears verbatim
  in the server-side ``SysSlowOp`` row.
"""

import pytest

from repro import AttributeDef, Database
from repro.errors import QueryError, SemanticError
from repro.evolution import SchemaEvolution
from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import render_prometheus
from repro.obs.querystats import QueryStats
from repro.obs.stats import StatisticsCatalog, equi_depth_boundaries
from repro.obs.waits import WaitProfiler
from repro.server import Client, Server
from repro.server import protocol
from repro.server.session import Session


REPEATED = "SELECT v FROM Vehicle v WHERE v.weight >= 920"


def _vehicle_db(**kwargs):
    db = Database(**kwargs)
    db.define_class(
        "Vehicle",
        attributes=[
            AttributeDef("weight", "Integer"),
            AttributeDef("color", "String", default="white"),
        ],
    )
    for i in range(40):
        db.new("Vehicle", {"weight": 900 + i, "color": ("red", "blue")[i % 2]})
    db.create_class_index("Vehicle", "weight")
    return db


def _stat(db, name):
    rows = db.select("SysStat where name = '%s'" % name)
    return rows[0]["value"] if rows else 0


# -- the accumulator, unit level ---------------------------------------------


class TestQueryStatsUnit:
    def test_same_fingerprint_accumulates_one_entry(self):
        qs = QueryStats()
        for _ in range(5):
            qs.record("fp1", "Vehicle", "q", 0.001, 40, 20, 0, False, False)
        assert len(qs) == 1
        entry = qs.get("fp1")
        assert entry.calls == 5
        assert entry.rows_examined == 200
        assert entry.rows_matched == 100
        assert entry.latency.count == 5

    def test_cache_hits_and_downgrades_counted(self):
        qs = QueryStats()
        qs.record("fp", "V", None, 0.001, 1, 1, 0, cache_hit=False, downgraded=False)
        qs.record("fp", "V", None, 0.001, 1, 1, 0, cache_hit=True, downgraded=True)
        entry = qs.get("fp")
        assert entry.plan_cache_hits == 1
        assert entry.snapshot_downgrades == 1

    def test_wait_kinds_roll_up_into_groups(self):
        qs = QueryStats()
        qs.record(
            "fp", "V", None, 0.1, 1, 1, 0, False, False,
            waits={"Lock": 0.05, "PageRead": 0.01, "WALFlush": 0.02, "Mystery": 9.0},
        )
        row = qs.get("fp").row()
        assert row["lock_wait"] == pytest.approx(0.05)
        assert row["io_wait"] == pytest.approx(0.01)
        assert row["wal_wait"] == pytest.approx(0.02)

    def test_epoch_change_purges_and_counts_invalidations(self):
        registry = MetricsRegistry()
        qs = QueryStats(registry)
        qs.record("a", "V", None, 0.001, 1, 1, 0, False, False, epoch_token=(1, 1))
        qs.record("b", "V", None, 0.001, 1, 1, 0, False, False, epoch_token=(1, 1))
        assert len(qs) == 2
        qs.record("c", "V", None, 0.001, 1, 1, 0, False, False, epoch_token=(2, 1))
        assert len(qs) == 1 and qs.get("c") is not None
        assert registry.value("query.stats.invalidations") == 2
        assert registry.value("query.stats.recorded") == 3

    def test_schema_change_listener_purges_without_double_count(self):
        registry = MetricsRegistry()
        qs = QueryStats(registry)
        qs.record("a", "V", None, 0.001, 1, 1, 0, False, False, epoch_token=(1, 1))
        qs.on_schema_change("V")
        assert len(qs) == 0
        assert registry.value("query.stats.invalidations") == 1
        # The next record under the *new* epoch must not purge again.
        qs.record("b", "V", None, 0.001, 1, 1, 0, False, False, epoch_token=(2, 1))
        assert registry.value("query.stats.invalidations") == 1

    def test_eviction_drops_coldest_entry_at_capacity(self):
        registry = MetricsRegistry()
        qs = QueryStats(registry, capacity=3)
        for fp, calls in (("hot", 5), ("warm", 3), ("cold", 1)):
            for _ in range(calls):
                qs.record(fp, "V", None, 0.001, 1, 1, 0, False, False)
        qs.record("new", "V", None, 0.001, 1, 1, 0, False, False)
        assert len(qs) == 3
        assert qs.get("cold") is None
        assert qs.get("hot") is not None
        assert registry.value("query.stats.evictions") == 1

    def test_entries_hottest_first(self):
        qs = QueryStats()
        for fp, calls in (("b", 1), ("a", 3), ("c", 3)):
            for _ in range(calls):
                qs.record(fp, "V", None, 0.001, 1, 1, 0, False, False)
        assert [e.fingerprint for e in qs.entries()] == ["a", "c", "b"]


class TestWaitCapture:
    def test_capture_attributes_waits_on_the_recording_thread(self):
        profiler = WaitProfiler()
        with profiler.capture() as waited:
            profiler.record("Lock", 0.25, target="oid:1")
            profiler.record("PageRead", 0.01)
        profiler.record("Lock", 9.0)  # after capture closed: not attributed
        assert waited == {"Lock": 0.25, "PageRead": 0.01}

    def test_captures_nest(self):
        profiler = WaitProfiler()
        with profiler.capture() as outer:
            profiler.record("Lock", 0.1)
            with profiler.capture() as inner:
                profiler.record("Lock", 0.2)
        assert inner == {"Lock": 0.2}
        assert outer["Lock"] == pytest.approx(0.3)


# -- through the full query path ---------------------------------------------


class TestSysQueryStat:
    def test_repeated_query_accumulates_one_fingerprint(self):
        db = _vehicle_db()
        for _ in range(5):
            db.execute(REPEATED)
        rows = db.select("SysQueryStat order by calls desc")
        assert len(rows) == 1
        row = rows[0]
        assert row["target"] == "Vehicle"
        assert row["calls"] == 5
        assert row["source"] == REPEATED
        # First build misses the plan cache, the other four hit.
        assert row["plan_cache_hits"] == 4
        assert row["rows_examined"] > 0 and row["rows_matched"] > 0
        assert row["p50"] > 0 and row["p95"] >= row["p50"]
        assert row["p99"] >= row["p95"]
        assert row["total_seconds"] >= row["mean_seconds"] > 0
        db.close()

    def test_structurally_equal_spellings_share_a_fingerprint(self):
        db = _vehicle_db()
        db.execute(
            "SELECT v FROM Vehicle v WHERE v.weight > 910 AND v.color = 'red'"
        )
        db.execute(
            "SELECT v FROM Vehicle v WHERE v.color = 'red' AND v.weight > 910"
        )
        rows = db.select("SysQueryStat")
        assert len(rows) == 1
        assert rows[0]["calls"] == 2
        db.close()

    def test_system_queries_are_never_recorded(self):
        db = _vehicle_db()
        db.execute(REPEATED)
        before = len(db.query_stats)
        db.select("SysQueryStat")
        db.select("SysStat order by name")
        assert len(db.query_stats) == before
        db.close()

    def test_schema_evolution_purges_accumulated_stats(self):
        db = _vehicle_db()
        db.execute(REPEATED)
        assert len(db.query_stats) == 1
        SchemaEvolution(db).add_attribute(
            "Vehicle", AttributeDef("maker", "String", default="acme")
        )
        assert len(db.query_stats) == 0
        assert _stat(db, "query.stats.invalidations") == 1
        db.close()

    def test_index_epoch_bump_purges_on_next_record(self):
        db = _vehicle_db()
        db.execute(REPEATED)
        db.execute("Vehicle where color = 'red'")
        assert len(db.query_stats) == 2
        db.create_class_index("Vehicle", "color")
        # The purge happens lazily, at the next record under the new epoch.
        db.execute(REPEATED)
        rows = db.select("SysQueryStat")
        assert len(rows) == 1
        assert rows[0]["calls"] == 1
        assert _stat(db, "query.stats.invalidations") == 2
        db.close()

    def test_streaming_query_records_at_close(self):
        db = _vehicle_db()
        with db.select_iter("Vehicle where weight >= 930") as stream:
            handles = list(stream)
        assert len(handles) == 10
        rows = db.select("SysQueryStat")
        assert len(rows) == 1
        assert rows[0]["calls"] == 1
        assert rows[0]["rows_matched"] == 10
        db.close()

    def test_stats_snapshot_carries_querystats(self):
        # The server "stats" op serves DatabaseStats.snapshot() verbatim,
        # so this is the wire payload's shape.
        db = _vehicle_db()
        db.execute(REPEATED)
        snap = db.stats.snapshot()
        assert snap["querystats"][0]["calls"] == 1
        db.close()

    def test_semantic_gate_and_explain_on_sysquerystat(self):
        db = _vehicle_db()
        db.execute(REPEATED)
        with pytest.raises(SemanticError) as err:
            db.execute("SysQueryStat where wibble = 1")
        assert "ANA601" in str(err.value)
        with pytest.raises(SemanticError) as err:
            db.execute("SELECT count(*) FROM SysQueryStat s")
        assert "ANA602" in str(err.value)
        result = db.explain("SysQueryStat order by calls desc limit 5")
        assert "system-scan" in result.render()
        with pytest.raises(QueryError):
            list(db.select_iter("SysQueryStat"))
        db.close()

    def test_sysquerystat_scan_takes_no_locks(self):
        db = _vehicle_db()
        db.execute(REPEATED)
        acquisitions = _stat(db, "locks.acquisitions")
        db.select("SysQueryStat order by calls desc")
        assert _stat(db, "locks.acquisitions") == acquisitions
        db.close()


# -- ANALYZE -----------------------------------------------------------------


class TestEquiDepthBoundaries:
    def test_uniform_distribution_yields_full_bucket_count(self):
        pairs = [(k, 1) for k in range(64)]
        bounds = equi_depth_boundaries(pairs, buckets=16)
        assert len(bounds) == 16
        assert bounds[-1] == 63
        assert bounds == sorted(bounds)

    def test_heavy_key_widens_its_bucket_without_duplicates(self):
        pairs = [(1, 100), (2, 1), (3, 1), (4, 1)]
        bounds = equi_depth_boundaries(pairs, buckets=4)
        assert bounds == sorted(set(bounds))
        assert bounds[0] == 1  # the heavy key crosses every early quantile once
        assert bounds[-1] == 4

    def test_empty_input(self):
        assert equi_depth_boundaries([]) == []


class TestAnalyze:
    def test_catalog_contents(self):
        db = _vehicle_db()
        catalog = db.analyze()
        assert catalog is db.statistics
        cls = catalog.class_stats["Vehicle"]
        assert cls.rows == 40
        assert cls.avg_bytes > 0
        assert cls.total_bytes == pytest.approx(cls.avg_bytes * 40)
        (index,) = catalog.index_stats.values()
        assert index.target_class == "Vehicle"
        assert index.path == "weight"
        assert index.entries == 40
        assert index.distinct_keys == 40
        assert index.low == 900 and index.high == 939
        assert index.boundaries == sorted(index.boundaries)
        assert index.boundaries[-1] == 939
        assert catalog.index_selectivity(index.name) == pytest.approx(1 / 40)
        db.close()

    def test_sysclassstat_and_sysindexstat_views(self):
        db = _vehicle_db()
        assert db.select("SysClassStat") == []
        assert db.select("SysIndexStat") == []
        db.analyze()
        (crow,) = db.select("SysClassStat where class_name = 'Vehicle'")
        assert crow["rows"] == 40
        (irow,) = db.select("SysIndexStat order by entries desc")
        assert irow["entries"] == 40
        assert irow["buckets"] == len(irow["histogram"].split("|"))
        assert irow["low"] == 900 and irow["high"] == 939
        db.close()

    def test_statistics_persist_across_reopen(self, tmp_path):
        path = str(tmp_path / "stats.kim")
        db = Database(path)
        db.define_class("Vehicle", attributes=[AttributeDef("weight", "Integer")])
        for i in range(12):
            db.new("Vehicle", {"weight": 100 + i})
        db.create_class_index("Vehicle", "weight")
        first = db.analyze().to_dict()
        db.close()

        db = Database(path)
        assert db.statistics is not None
        assert db.statistics.to_dict() == first
        (row,) = db.select("SysClassStat")
        assert row["rows"] == 12
        (irow,) = db.select("SysIndexStat")
        assert irow["distinct_keys"] == 12
        db.close()

    def test_stale_reason_reports_epoch_movement(self):
        catalog = StatisticsCatalog({}, {}, schema_version=3, index_epoch=7)
        assert catalog.stale_reason(3, 7) is None
        assert "schema version" in catalog.stale_reason(4, 7)
        assert "index epoch" in catalog.stale_reason(3, 8)

    def test_planner_notes_stats_but_results_are_unchanged(self):
        db = _vehicle_db()
        before = sorted(h.oid for h in db.select(REPEATED))
        plain = db.explain(REPEATED).render()
        assert "ANALYZE measured" not in plain
        db.analyze()
        # A cached plan predates the catalog and keeps its old notes (the
        # stats are inert facts, so the cached plan is still correct); a
        # freshly planned query records the measured cardinality.
        noted = db.explain("SELECT v FROM Vehicle v WHERE v.weight >= 921").render()
        assert "ANALYZE measured 40 row(s)" in noted
        after = sorted(h.oid for h in db.select(REPEATED))
        assert after == before
        db.close()


# -- Prometheus rendering ----------------------------------------------------


class TestPrometheusRendering:
    def test_registry_histogram_series(self):
        registry = MetricsRegistry()
        h = registry.histogram("op.seconds", bounds=(1.0, 10.0))
        for v in (0.5, 0.5, 5.0, 500.0):
            h.observe(v)
        text = render_prometheus(registry)
        lines = text.splitlines()
        assert "# TYPE kimdb_op_seconds histogram" in lines
        # Buckets are cumulative; +Inf carries the full count.
        assert 'kimdb_op_seconds_bucket{le="1"} 2' in lines
        assert 'kimdb_op_seconds_bucket{le="10"} 3' in lines
        assert 'kimdb_op_seconds_bucket{le="+Inf"} 4' in lines
        assert "kimdb_op_seconds_sum 506.0" in lines
        assert "kimdb_op_seconds_count 4" in lines
        assert text.endswith("\n")

    def test_querystats_render_as_labeled_family(self):
        registry = MetricsRegistry()
        qs = QueryStats(bounds=(0.1, 1.0))
        qs.record("abc123", "Vehicle", None, 0.05, 1, 1, 0, False, False)
        qs.record("abc123", "Vehicle", None, 0.5, 1, 1, 0, True, False)
        text = render_prometheus(registry, querystats=qs)
        lines = text.splitlines()
        assert "# TYPE kimdb_query_latency_seconds histogram" in lines
        prefix = 'kimdb_query_latency_seconds_bucket{fingerprint="abc123",target="Vehicle"'
        assert '%s,le="0.1"} 1' % prefix in lines
        assert '%s,le="1"} 2' % prefix in lines
        assert '%s,le="+Inf"} 2' % prefix in lines
        assert (
            'kimdb_query_latency_seconds_count{fingerprint="abc123",target="Vehicle"} 2'
            in lines
        )

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        qs = QueryStats()
        qs.record('fp"\\x\n', "Veh\"icle", None, 0.01, 1, 1, 0, False, False)
        text = render_prometheus(registry, querystats=qs)
        assert 'fingerprint="fp\\"\\\\x\\n"' in text
        assert 'target="Veh\\"icle"' in text

    def test_empty_querystats_emits_no_family(self):
        text = render_prometheus(MetricsRegistry(), querystats=QueryStats())
        assert "query_latency_seconds" not in text

    def test_monitor_demo_exports_querystat_family(self):
        from repro.tools.monitor import build_demo_database

        db = build_demo_database()
        try:
            text = render_prometheus(db.metrics, querystats=db.query_stats)
            assert "# TYPE kimdb_query_latency_seconds histogram" in text
            assert "kimdb_query_stats_recorded_total" in text
            assert "kimdb_analyze_runs_total" in text
        finally:
            db.close()


# -- trace context and propagation -------------------------------------------


class TestTraceContext:
    def test_trace_stamps_spans_and_restores(self):
        tracer = Tracer()
        assert tracer.current_trace is None
        with tracer.trace("t-outer"):
            assert tracer.current_trace == "t-outer"
            with tracer.span("work"):
                pass
            with tracer.trace("t-inner"):
                assert tracer.current_trace == "t-inner"
            assert tracer.current_trace == "t-outer"
        assert tracer.current_trace is None
        (span,) = tracer.spans("work")
        assert span.tags["trace"] == "t-outer"

    def test_trace_none_is_a_no_op(self):
        tracer = Tracer()
        with tracer.trace(None):
            assert tracer.current_trace is None
            with tracer.span("work"):
                pass
        (span,) = tracer.spans("work")
        assert "trace" not in span.tags

    def test_explicit_trace_tag_wins(self):
        tracer = Tracer()
        with tracer.trace("ambient"):
            with tracer.span("work", trace="explicit"):
                pass
        (span,) = tracer.spans("work")
        assert span.tags["trace"] == "explicit"

    def test_slow_op_carries_trace(self):
        db = _vehicle_db(slow_op_threshold=0.0)
        with db.tracer.trace("trace-xyz"):
            db.execute(REPEATED)
        rows = db.select("SysSlowOp where trace = 'trace-xyz'")
        assert rows and all(row["trace"] == "trace-xyz" for row in rows)
        db.close()

    def test_wait_rows_carry_last_trace_column(self):
        db = _vehicle_db()
        rows = db.select("SysWaitEvent order by total_wait desc limit 5")
        for row in rows:
            assert "last_trace" in row
        db.close()


class TestSessionTraceParsing:
    def test_valid_trace_adopted(self):
        assert Session._trace_id({"id": "abc123", "span": 7}) == "abc123"

    def test_bare_string_trace_accepted(self):
        assert Session._trace_id("abc123") == "abc123"

    @pytest.mark.parametrize(
        "trace",
        [None, 42, [], {}, {"id": 7}, {"id": ""}, {"id": "x" * 65}, "x" * 65],
    )
    def test_malformed_trace_dropped(self, trace):
        assert Session._trace_id(trace) is None


class TestWireTracePropagation:
    @pytest.fixture
    def served(self):
        db = _vehicle_db(slow_op_threshold=0.0)
        server = Server(db, port=0, workers=2, lock_timeout=0.5)
        server.start()
        yield db, server
        server.stop()
        db.close()

    def test_client_trace_id_lands_in_sysslowop(self, served):
        db, server = served
        client = Client(*server.address, trace_id="cafe0123deadbeef")
        try:
            rows = client.query("Vehicle where weight >= 930")
            assert len(rows) == 10
        finally:
            client.close()
        slow = db.select("SysSlowOp where trace = 'cafe0123deadbeef'")
        assert slow, "client trace id must appear verbatim in SysSlowOp"
        assert any(row["name"] == "server.request" for row in slow)

    def test_default_client_generates_a_trace_id(self, served):
        db, server = served
        client = Client(*server.address)
        try:
            assert isinstance(client.trace_id, str) and len(client.trace_id) == 16
            client.query("Vehicle limit 1")
        finally:
            client.close()
        traces = {row["trace"] for row in db.select("SysSlowOp")}
        assert client.trace_id in traces

    def test_malformed_wire_trace_is_ignored_not_an_error(self, served):
        _db, server = served
        client = Client(*server.address)
        try:
            protocol.send_frame(
                client._sock,
                {
                    "id": 99,
                    "op": "query",
                    "params": {"q": "Vehicle limit 1"},
                    "trace": [1, 2, 3],
                },
            )
            payload, _n = protocol.recv_frame(client._sock)
            assert payload["ok"] is True
            assert payload["id"] == 99
        finally:
            client.close()
