"""Long unstructured data: overflow-chain storage."""

import pytest

from repro import AttributeDef, Database
from repro.storage.manager import OVERFLOW_HEAP


@pytest.fixture
def blob_db():
    db = Database()
    db.define_class(
        "Blob",
        attributes=[
            AttributeDef("name", "String"),
            AttributeDef("payload", "Bytes"),
        ],
    )
    return db


BIG = bytes(range(256)) * 100  # ~25 KiB, several pages


class TestLongObjects:
    def test_store_and_load(self, blob_db):
        handle = blob_db.new("Blob", {"name": "img", "payload": BIG})
        assert blob_db.get(handle.oid)["payload"] == BIG
        assert blob_db.storage.heap_for(OVERFLOW_HEAP).page_count > 1

    def test_small_objects_stay_inline(self, blob_db):
        blob_db.new("Blob", {"name": "small", "payload": b"x"})
        assert not blob_db.storage.has_heap(OVERFLOW_HEAP) or (
            sum(1 for _ in blob_db.storage.heap_for(OVERFLOW_HEAP).scan()) == 0
        )

    def test_grow_and_shrink(self, blob_db):
        handle = blob_db.new("Blob", {"name": "v", "payload": b"small"})
        blob_db.update(handle.oid, {"payload": BIG})
        assert blob_db.get(handle.oid)["payload"] == BIG
        blob_db.update(handle.oid, {"payload": b"small again"})
        assert blob_db.get(handle.oid)["payload"] == b"small again"
        # Shrinking freed the chain.
        live_chunks = sum(1 for _ in blob_db.storage.heap_for(OVERFLOW_HEAP).scan())
        assert live_chunks == 0

    def test_update_long_to_long_frees_old_chain(self, blob_db):
        handle = blob_db.new("Blob", {"name": "v", "payload": BIG})
        chunks_before = sum(1 for _ in blob_db.storage.heap_for(OVERFLOW_HEAP).scan())
        blob_db.update(handle.oid, {"payload": BIG[::-1]})
        chunks_after = sum(1 for _ in blob_db.storage.heap_for(OVERFLOW_HEAP).scan())
        assert chunks_after == chunks_before
        assert blob_db.get(handle.oid)["payload"] == BIG[::-1]

    def test_delete_frees_chain(self, blob_db):
        handle = blob_db.new("Blob", {"name": "v", "payload": BIG})
        blob_db.delete(handle.oid)
        assert sum(1 for _ in blob_db.storage.heap_for(OVERFLOW_HEAP).scan()) == 0

    def test_long_object_in_query_scan(self, blob_db):
        blob_db.new("Blob", {"name": "wanted", "payload": BIG})
        blob_db.new("Blob", {"name": "other", "payload": b"x"})
        result = blob_db.select("SELECT b FROM Blob b WHERE b.name = 'wanted'")
        assert len(result) == 1
        assert result[0]["payload"] == BIG

    def test_long_string_values(self, blob_db):
        blob_db.define_class(
            "Doc", attributes=[AttributeDef("text", "String")]
        )
        text = "long article " * 2000
        handle = blob_db.new("Doc", {"text": text})
        assert blob_db.get(handle.oid)["text"] == text

    def test_durable_roundtrip(self, durable_path):
        db = Database(durable_path)
        db.define_class("Blob", attributes=[AttributeDef("payload", "Bytes")])
        handle = db.new("Blob", {"payload": BIG})
        db.close()
        reopened = Database(durable_path)
        assert reopened.get(handle.oid)["payload"] == BIG
        reopened.close()

    def test_transaction_rollback_restores_long_object(self, blob_db):
        handle = blob_db.new("Blob", {"name": "v", "payload": BIG})
        txn = blob_db.transaction()
        blob_db.update(handle.oid, {"payload": b"short"})
        txn.abort()
        assert blob_db.get(handle.oid)["payload"] == BIG

    def test_indexed_attribute_on_long_object(self, blob_db):
        index = blob_db.create_hierarchy_index("Blob", "name")
        handle = blob_db.new("Blob", {"name": "findme", "payload": BIG})
        assert handle.oid in index.lookup_eq("findme")
