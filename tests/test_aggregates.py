"""OQL aggregates: COUNT/SUM/AVG/MIN/MAX and GROUP BY."""

import pytest

from repro import AttributeDef, Database
from repro.errors import QueryError, QuerySyntaxError
from repro.query.parser import parse_query


@pytest.fixture
def sales_db():
    db = Database()
    db.define_class(
        "Region", attributes=[AttributeDef("name", "String")]
    )
    db.define_class(
        "Sale",
        attributes=[
            AttributeDef("amount", "Integer"),
            AttributeDef("product", "String"),
            AttributeDef("region", "Region"),
        ],
    )
    north = db.new("Region", {"name": "north"})
    south = db.new("Region", {"name": "south"})
    rows = [
        (100, "widget", north), (200, "widget", north), (50, "gadget", north),
        (300, "widget", south), (25, "gadget", south),
    ]
    for amount, product, region in rows:
        db.new("Sale", {"amount": amount, "product": product, "region": region.oid})
    return db


class TestParsing:
    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM Sale s")
        assert query.aggregates[0].fn == "count"
        assert query.aggregates[0].path is None

    def test_count_variable(self):
        query = parse_query("SELECT COUNT(s) FROM Sale s")
        assert query.aggregates[0].path is None

    def test_aggregate_with_path(self):
        query = parse_query("SELECT SUM(s.amount) FROM Sale s")
        assert query.aggregates[0].fn == "sum"
        assert query.aggregates[0].path.steps == ("amount",)

    def test_group_by(self):
        query = parse_query(
            "SELECT s.product, COUNT(s) FROM Sale s GROUP BY s.product"
        )
        assert query.group_by.steps == ("product",)

    def test_plain_item_must_match_group_by(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT s.product, COUNT(s) FROM Sale s GROUP BY s.amount")
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT s.product, COUNT(s) FROM Sale s")

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT s FROM Sale s GROUP BY s.product")

    def test_sum_requires_path(self):
        with pytest.raises(QueryError):
            parse_query("SELECT SUM(*) FROM Sale s")


class TestEvaluation:
    def test_global_count(self, sales_db):
        rows = sales_db.execute("SELECT COUNT(s) FROM Sale s").rows
        assert rows == [{"count(*)": 5}]

    def test_count_with_where(self, sales_db):
        rows = sales_db.execute(
            "SELECT COUNT(s) FROM Sale s WHERE s.amount >= 100"
        ).rows
        assert rows == [{"count(*)": 3}]

    def test_sum_avg_min_max(self, sales_db):
        rows = sales_db.execute(
            "SELECT SUM(s.amount), AVG(s.amount), MIN(s.amount), MAX(s.amount) "
            "FROM Sale s"
        ).rows
        assert rows[0]["sum(amount)"] == 675
        assert rows[0]["avg(amount)"] == 135.0
        assert rows[0]["min(amount)"] == 25
        assert rows[0]["max(amount)"] == 300

    def test_group_by_attribute(self, sales_db):
        rows = sales_db.execute(
            "SELECT s.product, COUNT(s), SUM(s.amount) FROM Sale s "
            "GROUP BY s.product"
        ).rows
        by_product = {row["product"]: row for row in rows}
        assert by_product["widget"]["count(*)"] == 3
        assert by_product["widget"]["sum(amount)"] == 600
        assert by_product["gadget"]["sum(amount)"] == 75

    def test_group_by_nested_path(self, sales_db):
        rows = sales_db.execute(
            "SELECT COUNT(s) FROM Sale s GROUP BY s.region.name"
        ).rows
        by_region = {row["region.name"]: row["count(*)"] for row in rows}
        assert by_region == {"north": 3, "south": 2}

    def test_groups_sorted_by_key(self, sales_db):
        rows = sales_db.execute(
            "SELECT s.product, COUNT(s) FROM Sale s GROUP BY s.product"
        ).rows
        assert [row["product"] for row in rows] == ["gadget", "widget"]

    def test_aggregate_over_empty_extent(self, sales_db):
        rows = sales_db.execute(
            "SELECT COUNT(s), SUM(s.amount) FROM Sale s WHERE s.amount > 9999"
        ).rows
        assert rows == [{"count(*)": 0, "sum(amount)": None}]

    def test_none_values_skipped(self, sales_db):
        sales_db.new("Sale", {"amount": None, "product": "widget"})
        rows = sales_db.execute("SELECT COUNT(s.amount), COUNT(s) FROM Sale s").rows
        assert rows[0]["count(amount)"] == 5
        assert rows[0]["count(*)"] == 6

    def test_aggregate_uses_index_access_path(self, sales_db):
        sales_db.create_hierarchy_index("Sale", "product")
        result = sales_db.execute(
            "SELECT COUNT(s) FROM Sale s WHERE s.product = 'widget'"
        )
        assert "index" in result.plan.access.description
        assert result.rows == [{"count(*)": 3}]

    def test_aggregate_path_validated(self, sales_db):
        with pytest.raises(QueryError):
            sales_db.execute("SELECT SUM(s.bogus) FROM Sale s")

    def test_aggregate_through_view(self, sales_db):
        from repro.views import attach

        attach(sales_db)
        sales_db.views.define_view(
            "BigSale", "SELECT s FROM Sale s WHERE s.amount >= 100"
        )
        rows = sales_db.execute(
            "SELECT b.product, COUNT(b) FROM BigSale b GROUP BY b.product"
        ).rows
        assert rows == [{"product": "widget", "count(*)": 3}]
