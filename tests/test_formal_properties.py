"""Formal properties of the query model (Section 5.3).

The paper calls for a formal basis for the query model over the two
hierarchies.  These tests check the algebraic laws the implementation
must satisfy — each is a small theorem of the model:

* **hierarchy decomposition** — a hierarchy-scoped query equals the
  identity-union of ONLY-scoped queries over every class in the
  hierarchy;
* **selection composition** — sigma(p AND q) = sigma(p) . sigma(q);
* **De Morgan / double negation** over predicate evaluation;
* **set-operation identities** on extents by object identity;
* **index transparency** — access path never changes answers (checked
  against all index kinds over many random predicates).
"""

import random

import pytest

from repro import Database
from repro.bench.schemas import build_vehicle_schema, populate_vehicles
from repro.query import algebra
from repro.query.ast import And, Comparison, Const, Not, Or, Path, Query
from repro.query.parser import parse_query


@pytest.fixture(scope="module")
def pdb():
    db = Database(use_locks=False)
    build_vehicle_schema(db)
    populate_vehicles(db, n_vehicles=300, n_companies=15, seed=2026)
    return db


def oids(db, query_text):
    return [h.oid for h in db.select(query_text)]


def random_predicates(rng, variable="v"):
    """A pool of random sargable/unsargable predicate strings."""
    choices = [
        "%s.weight > %d" % (variable, rng.randrange(1000, 12000)),
        "%s.weight <= %d" % (variable, rng.randrange(1000, 12000)),
        "%s.color = '%s'" % (variable, rng.choice(["red", "blue", "white", "black"])),
        "%s.price < %d" % (variable, rng.randrange(5000, 100000)),
        "%s.manufacturer.location = '%s'"
        % (variable, rng.choice(["Detroit", "Tokyo", "Austin"])),
    ]
    return rng.choice(choices)


class TestHierarchyDecomposition:
    def test_hierarchy_equals_union_of_only_scopes(self, pdb):
        classes = pdb.schema.hierarchy_of("Vehicle")
        whole = set(oids(pdb, "SELECT v FROM Vehicle v WHERE v.weight > 7500"))
        parts = set()
        for cls in classes:
            parts |= set(
                oids(pdb, "SELECT v FROM ONLY %s v WHERE v.weight > 7500" % cls)
            )
        assert whole == parts

    def test_only_scopes_are_disjoint(self, pdb):
        classes = pdb.schema.hierarchy_of("Vehicle")
        seen = set()
        for cls in classes:
            extent = set(oids(pdb, "SELECT v FROM ONLY %s v" % cls))
            assert not (extent & seen)
            seen |= extent

    def test_subclass_scope_contained_in_superclass_scope(self, pdb):
        autos = set(oids(pdb, "SELECT a FROM Automobile a"))
        vehicles = set(oids(pdb, "SELECT v FROM Vehicle v"))
        assert autos <= vehicles


class TestSelectionLaws:
    @pytest.mark.parametrize("seed", range(6))
    def test_conjunction_is_composition(self, pdb, seed):
        rng = random.Random(seed)
        p, q = random_predicates(rng), random_predicates(rng)
        combined = set(oids(pdb, "SELECT v FROM Vehicle v WHERE %s AND %s" % (p, q)))
        left = set(oids(pdb, "SELECT v FROM Vehicle v WHERE %s" % p))
        right = set(oids(pdb, "SELECT v FROM Vehicle v WHERE %s" % q))
        assert combined == left & right

    @pytest.mark.parametrize("seed", range(6))
    def test_disjunction_is_union(self, pdb, seed):
        rng = random.Random(100 + seed)
        p, q = random_predicates(rng), random_predicates(rng)
        combined = set(oids(pdb, "SELECT v FROM Vehicle v WHERE %s OR %s" % (p, q)))
        left = set(oids(pdb, "SELECT v FROM Vehicle v WHERE %s" % p))
        right = set(oids(pdb, "SELECT v FROM Vehicle v WHERE %s" % q))
        assert combined == left | right

    @pytest.mark.parametrize("seed", range(6))
    def test_de_morgan(self, pdb, seed):
        rng = random.Random(200 + seed)
        p, q = random_predicates(rng), random_predicates(rng)
        lhs = set(
            oids(pdb, "SELECT v FROM Vehicle v WHERE NOT (%s OR %s)" % (p, q))
        )
        rhs = set(
            oids(pdb, "SELECT v FROM Vehicle v WHERE NOT %s AND NOT %s" % (p, q))
        )
        assert lhs == rhs

    @pytest.mark.parametrize("seed", range(4))
    def test_double_negation(self, pdb, seed):
        rng = random.Random(300 + seed)
        p = random_predicates(rng)
        assert set(oids(pdb, "SELECT v FROM Vehicle v WHERE NOT NOT %s" % p)) == set(
            oids(pdb, "SELECT v FROM Vehicle v WHERE %s" % p)
        )

    def test_selection_never_exceeds_extent(self, pdb):
        extent = set(oids(pdb, "SELECT v FROM Vehicle v"))
        rng = random.Random(9)
        for _ in range(5):
            subset = set(
                oids(pdb, "SELECT v FROM Vehicle v WHERE %s" % random_predicates(rng))
            )
            assert subset <= extent


class TestSetOperationIdentities:
    def extents(self, pdb):
        heavy = list(
            algebra.select(
                pdb._scan_coerced("Vehicle"),
                parse_query("SELECT v FROM Vehicle v WHERE v.weight > 7500").where,
                pdb._deref,
            )
        )
        red = list(
            algebra.select(
                pdb._scan_coerced("Vehicle"),
                parse_query("SELECT v FROM Vehicle v WHERE v.color = 'red'").where,
                pdb._deref,
            )
        )
        return heavy, red

    def test_union_commutes_on_identity(self, pdb):
        heavy, red = self.extents(pdb)
        ab = {s.oid for s in algebra.union(heavy, red)}
        ba = {s.oid for s in algebra.union(red, heavy)}
        assert ab == ba

    def test_union_idempotent(self, pdb):
        heavy, _red = self.extents(pdb)
        assert {s.oid for s in algebra.union(heavy, heavy)} == {s.oid for s in heavy}

    def test_inclusion_exclusion(self, pdb):
        heavy, red = self.extents(pdb)
        union = algebra.union(heavy, red)
        inter = algebra.intersect(heavy, red)
        assert len(union) == len(heavy) + len(red) - len(inter)

    def test_difference_and_intersection_partition(self, pdb):
        heavy, red = self.extents(pdb)
        diff = {s.oid for s in algebra.difference(heavy, red)}
        inter = {s.oid for s in algebra.intersect(heavy, red)}
        assert diff | inter == {s.oid for s in heavy}
        assert not (diff & inter)


class TestIndexTransparency:
    @pytest.mark.parametrize("seed", range(8))
    def test_all_access_paths_agree(self, seed):
        db = Database(use_locks=False)
        build_vehicle_schema(db)
        populate_vehicles(db, n_vehicles=150, n_companies=10, seed=seed)
        rng = random.Random(seed)
        queries = [
            "SELECT v FROM Vehicle v WHERE %s" % random_predicates(rng)
            for _ in range(4)
        ]
        baseline = [oids(db, q) for q in queries]
        db.create_hierarchy_index("Vehicle", "weight")
        db.create_hierarchy_index("Vehicle", "color")
        db.create_hierarchy_index("Vehicle", "price")
        db.create_nested_index("Vehicle", ["manufacturer", "location"])
        for query, expected in zip(queries, baseline):
            assert oids(db, query) == expected, query
