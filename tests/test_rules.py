"""Deductive rules: chaining, stratified negation, truth maintenance."""

import pytest

from repro import AttributeDef, Database
from repro.errors import RuleError
from repro.rules import Literal, Rule, RuleEngine, TruthMaintenance, Var, rule


@pytest.fixture
def family():
    engine = RuleEngine()
    for parent, child in [
        ("ann", "bob"),
        ("bob", "carol"),
        ("carol", "dave"),
        ("ann", "eve"),
    ]:
        engine.assert_fact("parent", parent, child)
    engine.add_rule(rule("ancestor", ["?x", "?y"], ("parent", ["?x", "?y"]), name="base"))
    engine.add_rule(
        rule(
            "ancestor",
            ["?x", "?z"],
            ("parent", ["?x", "?y"]),
            ("ancestor", ["?y", "?z"]),
            name="step",
        )
    )
    return engine


class TestForwardChaining:
    def test_transitive_closure(self, family):
        ancestors_of_dave = family.query("ancestor", None, "dave")
        assert sorted(a for a, _ in ancestors_of_dave) == ["ann", "bob", "carol"]

    def test_holds_ground_query(self, family):
        assert family.holds("ancestor", "ann", "dave")
        assert not family.holds("ancestor", "dave", "ann")

    def test_derived_count(self, family):
        # parent facts: 4; ancestor = 4 base + (ann-carol, ann-dave,
        # bob-dave) = 7 derived ancestor facts.
        assert family.derived_fact_count == 7

    def test_incremental_assertion_recomputes(self, family):
        family.infer()
        family.assert_fact("parent", "dave", "fred")
        assert family.holds("ancestor", "ann", "fred")

    def test_retraction_recomputes(self, family):
        assert family.holds("ancestor", "ann", "dave")
        family.retract_fact("parent", "carol", "dave")
        assert not family.holds("ancestor", "ann", "dave")
        assert family.holds("ancestor", "ann", "carol")

    def test_query_pattern_wildcards(self, family):
        all_pairs = family.query("ancestor", None, None)
        assert ("ann", "dave") in all_pairs
        from_ann = family.query("ancestor", "ann", None)
        assert sorted(b for _a, b in from_ann) == ["bob", "carol", "dave", "eve"]


class TestSafetyAndStratification:
    def test_unsafe_head_variable_rejected(self):
        with pytest.raises(RuleError):
            rule("p", ["?x", "?y"], ("q", ["?x"]))

    def test_unsafe_negation_rejected(self):
        with pytest.raises(RuleError):
            rule("p", ["?x"], ("q", ["?x"]), ("r", ["?y"], "not"))

    def test_negated_head_rejected(self):
        with pytest.raises(RuleError):
            Rule(Literal("p", ["?x"], negated=True), [Literal("q", ["?x"])])

    def test_stratified_negation(self):
        engine = RuleEngine()
        engine.assert_fact("node", "a")
        engine.assert_fact("node", "b")
        engine.assert_fact("broken", "b")
        engine.add_rule(
            rule("healthy", ["?n"], ("node", ["?n"]), ("broken", ["?n"], "not"))
        )
        assert engine.query("healthy", None) == [("a",)]

    def test_negation_through_recursion_rejected(self):
        engine = RuleEngine()
        engine.add_rule(rule("p", ["?x"], ("q", ["?x"]), ("p", ["?x"], "not"), name="bad"))
        engine.assert_fact("q", 1)
        with pytest.raises(RuleError):
            engine.infer()

    def test_multi_stratum_evaluation_order(self):
        engine = RuleEngine()
        engine.assert_fact("edge", "a", "b")
        engine.assert_fact("edge", "b", "c")
        engine.assert_fact("node", "a")
        engine.assert_fact("node", "b")
        engine.assert_fact("node", "c")
        engine.add_rule(rule("reach", ["?x", "?y"], ("edge", ["?x", "?y"])))
        engine.add_rule(
            rule("reach", ["?x", "?z"], ("edge", ["?x", "?y"]), ("reach", ["?y", "?z"]))
        )
        engine.add_rule(
            rule(
                "isolated",
                ["?n"],
                ("node", ["?n"]),
                ("reach", ["a", "?n"], "not"),
            )
        )
        assert engine.query("isolated", None) == [("a",)]


class TestClassMappings:
    def test_objects_as_facts(self):
        db = Database()
        db.define_class("Company", attributes=[AttributeDef("location", "String")])
        db.define_class("AutoCompany", superclasses=("Company",))
        detroit = db.new("AutoCompany", {"location": "Detroit"})
        db.new("Company", {"location": "Tokyo"})
        engine = RuleEngine(db)
        engine.map_class("company", "Company", ["location"])
        engine.add_rule(rule("local", ["?c"], ("company", ["?c", "Detroit"])))
        results = engine.query("local", None)
        assert results == [(detroit.oid,)]

    def test_mapping_requires_database(self):
        with pytest.raises(RuleError):
            RuleEngine().map_class("p", "C", ["a"])

    def test_mapping_sees_fresh_data(self):
        db = Database()
        db.define_class("Item", attributes=[AttributeDef("n", "Integer")])
        engine = RuleEngine(db)
        engine.map_class("item", "Item", ["n"])
        engine.add_rule(rule("big", ["?i"], ("item", ["?i", 10])))
        assert engine.query("big", None) == []
        handle = db.new("Item", {"n": 10})
        engine._fresh = False  # new data arrived
        assert engine.query("big", None) == [(handle.oid,)]


class TestTruthMaintenance:
    def test_why_explains_derivation(self, family):
        tms = TruthMaintenance(family)
        justifications = tms.why("ancestor", "ann", "dave")
        assert justifications
        assert justifications[0][0] in ("base", "step")

    def test_why_unknown_fact_raises(self, family):
        tms = TruthMaintenance(family)
        with pytest.raises(RuleError):
            tms.why("ancestor", "dave", "ann")

    def test_support_closure_reaches_base_facts(self, family):
        tms = TruthMaintenance(family)
        support = tms.support_closure("ancestor", "ann", "dave")
        assert ("parent", ("ann", "bob")) in support
        assert ("parent", ("carol", "dave")) in support

    def test_retract_reports_fallout(self, family):
        tms = TruthMaintenance(family)
        fallen = tms.retract("parent", "carol", "dave")
        assert ("ancestor", ("ann", "dave")) in fallen

    def test_retract_non_base_fact_rejected(self, family):
        tms = TruthMaintenance(family)
        with pytest.raises(RuleError):
            tms.retract("ancestor", "ann", "dave")

    def test_contradiction_raises_with_support(self):
        engine = RuleEngine()
        engine.assert_fact("approved", "doc1")
        engine.assert_fact("flagged", "doc1")
        engine.add_rule(rule("rejected", ["?d"], ("flagged", ["?d"])))
        tms = TruthMaintenance(engine, strategy="raise")
        tms.declare_contradiction("approved", "rejected")
        with pytest.raises(RuleError):
            tms.check()

    def test_contradiction_report_strategy(self):
        engine = RuleEngine()
        engine.assert_fact("approved", "doc1")
        engine.assert_fact("rejected", "doc1")
        tms = TruthMaintenance(engine, strategy="report")
        tms.declare_contradiction("approved", "rejected")
        conflicts = tms.check()
        assert len(conflicts) == 1
        assert conflicts[0].args == ("doc1",)

    def test_prefer_positive_suppresses_negative(self):
        engine = RuleEngine()
        engine.assert_fact("approved", "doc1")
        engine.assert_fact("flagged", "doc1")
        engine.add_rule(rule("rejected", ["?d"], ("flagged", ["?d"])))
        tms = TruthMaintenance(engine, strategy="prefer_positive")
        tms.declare_contradiction("approved", "rejected")
        tms.check()
        assert ("rejected", ("doc1",)) in tms.suppressed

    def test_no_contradiction_is_empty(self, family):
        tms = TruthMaintenance(family, strategy="report")
        tms.declare_contradiction("ancestor", "stranger")
        assert tms.check() == []

    def test_unknown_strategy_rejected(self, family):
        with pytest.raises(RuleError):
            TruthMaintenance(family, strategy="coin-flip")


class TestProve:
    def test_prove_derived_fact(self, family):
        chain = family.prove("ancestor", "ann", "dave")
        assert chain and chain[0] in ("base", "step")

    def test_prove_unprovable_returns_none(self, family):
        assert family.prove("ancestor", "dave", "ann") is None

    def test_prove_base_fact_empty_chain(self, family):
        assert family.prove("parent", "ann", "bob") == []
