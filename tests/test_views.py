"""Views: rewriting, stacking, renames, content-based authorization."""

import pytest

from repro import Database
from repro.authz import attach as attach_authz
from repro.bench.schemas import build_vehicle_schema, populate_vehicles
from repro.errors import AuthorizationError, ViewError
from repro.views import attach


@pytest.fixture
def vdb():
    db = Database()
    attach(db)
    build_vehicle_schema(db)
    populate_vehicles(db, n_vehicles=100, n_companies=8, seed=3)
    return db


class TestDefinition:
    def test_define_and_list(self, vdb):
        vdb.views.define_view("Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500")
        assert vdb.views.names() == ["Heavy"]
        assert vdb.views.is_view("Heavy")

    def test_duplicate_rejected(self, vdb):
        vdb.views.define_view("Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500")
        with pytest.raises(ViewError):
            vdb.views.define_view("Heavy", "SELECT v FROM Vehicle v")

    def test_shadowing_class_rejected(self, vdb):
        with pytest.raises(ViewError):
            vdb.views.define_view("Vehicle", "SELECT v FROM Truck v")

    def test_unknown_base_rejected(self, vdb):
        with pytest.raises(ViewError):
            vdb.views.define_view("X", "SELECT v FROM Ghost v")

    def test_projection_views_rejected(self, vdb):
        with pytest.raises(ViewError):
            vdb.views.define_view("X", "SELECT v.weight FROM Vehicle v")

    def test_drop_view(self, vdb):
        vdb.views.define_view("Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500")
        vdb.views.drop_view("Heavy")
        assert not vdb.views.is_view("Heavy")


class TestRewriting:
    def test_view_query_equals_conjoined_query(self, vdb):
        vdb.views.define_view("Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500")
        via_view = vdb.select("SELECT h FROM Heavy h WHERE h.color = 'red'")
        direct = vdb.select(
            "SELECT v FROM Vehicle v WHERE v.weight > 7500 AND v.color = 'red'"
        )
        assert [h.oid for h in via_view] == [h.oid for h in direct]

    def test_unfiltered_view_query(self, vdb):
        vdb.views.define_view("Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500")
        via_view = vdb.select("SELECT h FROM Heavy h")
        direct = vdb.select("SELECT v FROM Vehicle v WHERE v.weight > 7500")
        assert len(via_view) == len(direct) > 0

    def test_view_over_view(self, vdb):
        vdb.views.define_view("Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500")
        vdb.views.define_view("HeavyRed", "SELECT h FROM Heavy h WHERE h.color = 'red'")
        via_stack = vdb.select("SELECT x FROM HeavyRed x")
        direct = vdb.select(
            "SELECT v FROM Vehicle v WHERE v.weight > 7500 AND v.color = 'red'"
        )
        assert [h.oid for h in via_stack] == [h.oid for h in direct]

    def test_view_scope_follows_base_query(self, vdb):
        vdb.views.define_view("OnlyVehicles", "SELECT v FROM ONLY Vehicle v")
        via_view = vdb.select("SELECT x FROM OnlyVehicles x")
        assert len(via_view) == vdb.count("Vehicle", hierarchy=False)

    def test_view_uses_indexes(self, vdb):
        vdb.create_hierarchy_index("Vehicle", "weight")
        vdb.views.define_view("Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500")
        rewritten = vdb.views.rewrite(
            __import__("repro.query.parser", fromlist=["parse_query"]).parse_query(
                "SELECT h FROM Heavy h"
            )
        )
        plan = vdb.planner.plan(rewritten)
        assert "index" in plan.access.description

    def test_projection_through_view(self, vdb):
        vdb.views.define_view("Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500")
        result = vdb.execute("SELECT h.weight FROM Heavy h LIMIT 3")
        assert all(row["weight"] > 7500 for row in result.rows)

    def test_order_and_limit_through_view(self, vdb):
        vdb.views.define_view("Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500")
        result = vdb.execute("SELECT h FROM Heavy h ORDER BY h.weight DESC LIMIT 2")
        assert len(result.oids) == 2


class TestRenameMaps:
    def test_schema_versioning_rename(self, vdb):
        # Old applications see "maker"; the stored attribute is
        # "manufacturer" — a view gives the old name after the change.
        vdb.views.define_view(
            "VehicleV1",
            "SELECT v FROM Vehicle v",
            rename={"maker": "manufacturer"},
        )
        via_view = vdb.select(
            "SELECT x FROM VehicleV1 x WHERE x.maker.location = 'Detroit'"
        )
        direct = vdb.select(
            "SELECT v FROM Vehicle v WHERE v.manufacturer.location = 'Detroit'"
        )
        assert [h.oid for h in via_view] == [h.oid for h in direct]

    def test_rename_to_nested_path(self, vdb):
        vdb.views.define_view(
            "VehicleFlat",
            "SELECT v FROM Vehicle v",
            rename={"city": "manufacturer.location"},
        )
        via_view = vdb.select("SELECT x FROM VehicleFlat x WHERE x.city = 'Detroit'")
        direct = vdb.select(
            "SELECT v FROM Vehicle v WHERE v.manufacturer.location = 'Detroit'"
        )
        assert [h.oid for h in via_view] == [h.oid for h in direct]

    def test_rename_in_projection(self, vdb):
        vdb.views.define_view(
            "VehicleFlat",
            "SELECT v FROM Vehicle v",
            rename={"city": "manufacturer.location"},
        )
        result = vdb.execute("SELECT x.city FROM VehicleFlat x LIMIT 2")
        assert all("manufacturer.location" in row for row in result.rows)


class TestContentBasedAuthorization:
    def test_view_grant_without_class_grant(self, vdb):
        authz = attach_authz(vdb)
        authz.add_role("analyst")
        vdb.views.define_view("Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500")
        authz.grant("analyst", "read", "Heavy")
        authz.set_subject("analyst")
        # Direct class access denied, view access allowed.
        with pytest.raises(AuthorizationError):
            vdb.select("SELECT v FROM Vehicle v")
        result = vdb.select("SELECT h FROM Heavy h")
        assert result  # only the heavy vehicles are visible
        for handle in result:
            authz.set_subject("system")
            assert vdb.get(handle.oid)["weight"] > 7500
            authz.set_subject("analyst")
