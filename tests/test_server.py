"""The network front end: wire protocol, sessions, isolation, cleanup.

Covers the repro.server subsystem end to end over real sockets: frame
and OID codecs, typed error frames, session-scoped transactions
(read-your-writes, writer/writer conflict as a typed error rather than
a hang, rollback-and-release on disconnect), cursor streaming, the
idle-session reaper, the SysSession view, and the connection pool.
"""

import threading
import time

import pytest

from repro import AttributeDef, Database
from repro.core.oid import OID
from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    ObjectNotFoundError,
    QuerySyntaxError,
    TransactionError,
)
from repro.server import Client, ConnectionPool, ProtocolError, Server, ServerError
from repro.server import protocol


def _wait_until(predicate, timeout=5.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _make_db():
    db = Database()
    db.define_class(
        "Vehicle",
        attributes=[
            AttributeDef("weight", "Integer"),
            AttributeDef("color", "String", default="white"),
        ],
    )
    for i in range(24):
        db.new("Vehicle", {"weight": 1000 + i, "color": ("red", "blue")[i % 2]})
    return db


@pytest.fixture
def served():
    """(db, server) with a short lock timeout so conflicts fail fast."""
    db = _make_db()
    server = Server(db, port=0, workers=4, lock_timeout=0.5)
    server.start()
    yield db, server
    server.stop()
    db.close()


@pytest.fixture
def client(served):
    _db, server = served
    c = Client(*server.address)
    yield c
    c.close()


class TestProtocol:
    def test_frame_round_trip(self):
        payload = {"id": 7, "op": "query", "params": {"q": "Vehicle"}}
        frame = protocol.encode_frame(payload)
        length = protocol.frame_length(frame[:4])
        assert length == len(frame) - 4
        assert protocol.decode_payload(frame[4:]) == payload

    def test_oversized_announced_frame_rejected(self):
        import struct

        header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            protocol.frame_length(header)

    def test_malformed_body_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_payload(b"not json at all {")
        with pytest.raises(ProtocolError):
            protocol.decode_payload(b"[1, 2, 3]")  # not an object

    def test_oid_survives_wire_round_trip(self):
        oid = OID(42, "Vehicle")
        revived = protocol.from_wire(protocol.to_wire({"ref": oid, "n": [1, oid]}))
        assert revived["n"][1] == oid
        assert revived["ref"].hint == "Vehicle"

    def test_unencodable_value_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.to_wire(object())

    def test_error_codes_most_specific_first(self):
        assert protocol.error_code(DeadlockError("x")) == "DEADLOCK"
        assert protocol.error_code(LockTimeoutError("x")) == "LOCK_TIMEOUT"
        assert protocol.error_code(TransactionError("x")) == "TRANSACTION"
        assert protocol.error_code(QuerySyntaxError("x")) == "SYNTAX"
        assert protocol.error_code(ObjectNotFoundError("x")) == "NOT_FOUND"
        assert protocol.error_code(ValueError("x")) == "INTERNAL"


class TestBasicOps:
    def test_ping(self, client):
        assert client.ping()

    def test_object_lifecycle_over_the_wire(self, client):
        oid = client.new("Vehicle", {"weight": 7600, "color": "green"})
        assert isinstance(oid, OID)
        fetched = client.get(oid)
        assert fetched["class"] == "Vehicle"
        assert fetched["values"]["weight"] == 7600
        client.update(oid, {"color": "black"})
        assert client.get(oid)["values"]["color"] == "black"
        client.delete(oid)
        with pytest.raises(ServerError) as err:
            client.get(oid)
        assert err.value.code == "NOT_FOUND"

    def test_query_returns_oids_or_values(self, client):
        oids = client.query("Vehicle where color = 'red'")
        assert oids and all(isinstance(o, OID) for o in oids)
        rows = client.query("Vehicle where color = 'red'", values=True)
        assert len(rows) == len(oids)
        assert all(row["values"]["color"] == "red" for row in rows)

    def test_syntax_error_is_typed(self, client):
        with pytest.raises(ServerError) as err:
            client.query("SELEKT banana FROM nowhere")
        assert err.value.code == "SYNTAX"

    def test_unknown_op_is_session_error(self, client):
        with pytest.raises(ServerError) as err:
            client.call("frobnicate")
        assert err.value.code == "SESSION"

    def test_protocol_error_closes_connection(self, served):
        _db, server = served
        c = Client(*server.address)
        # A length prefix announcing more than MAX_FRAME_BYTES.
        import struct

        c._sock.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
        payload, _n = protocol.recv_frame(c._sock)
        assert payload["ok"] is False
        assert payload["error"]["code"] == "PROTOCOL"
        with pytest.raises(ConnectionError):
            protocol.recv_frame(c._sock)  # server hung up
        c.close()

    def test_stats_op(self, client):
        snapshot = client.stats()
        assert snapshot["objects"] >= 24


class TestSessionTransactions:
    def test_read_your_writes_then_rollback(self, served):
        db, server = served
        target = db.select("Vehicle where color = 'red' limit 1")[0].oid
        with Client(*server.address) as c1:
            c1.begin()
            c1.update(target, {"color": "purple"})
            # The writer sees its own uncommitted write...
            assert c1.get(target)["values"]["color"] == "purple"
            c1.rollback()
            # ...and rollback restores the committed state for everyone.
            with Client(*server.address) as c2:
                assert c2.get(target)["values"]["color"] == "red"

    def test_commit_is_visible_to_other_sessions(self, served):
        db, server = served
        target = db.select("Vehicle where color = 'blue' limit 1")[0].oid
        with Client(*server.address) as c1, Client(*server.address) as c2:
            c1.begin()
            c1.update(target, {"weight": 31337})
            c1.commit()
            assert c2.get(target)["values"]["weight"] == 31337

    def test_writer_writer_conflict_is_typed_error_not_hang(self, served):
        db, server = served
        target = db.select("Vehicle limit 1")[0].oid
        with Client(*server.address) as c1, Client(*server.address) as c2:
            c1.begin()
            c1.update(target, {"color": "held"})
            c2.begin()
            started = time.perf_counter()
            with pytest.raises(ServerError) as err:
                c2.update(target, {"color": "contender"})
            elapsed = time.perf_counter() - started
            assert err.value.code == "LOCK_TIMEOUT"
            assert elapsed < 5.0  # bounded by the server's lock_timeout
            c1.rollback()
            # The loser's transaction is still usable after the timeout.
            c2.update(target, {"color": "contender"})
            c2.commit()
        assert db.select("Vehicle where color = 'contender' limit 1")

    def test_nested_begin_rejected(self, client):
        client.begin()
        with pytest.raises(ServerError) as err:
            client.call("begin")
        assert err.value.code == "SESSION"
        client.rollback()

    def test_commit_without_begin_rejected(self, client):
        with pytest.raises(ServerError) as err:
            client.call("commit")
        assert err.value.code == "SESSION"

    def test_disconnect_mid_txn_rolls_back_and_frees_locks(self, served):
        db, server = served
        target = db.select("Vehicle limit 1")[0].oid
        victim = Client(*server.address)
        victim.begin()
        victim.update(target, {"color": "doomed"})
        assert db.txns.active_transactions()
        victim.kill()
        assert _wait_until(lambda: len(server.sessions) == 0)
        assert _wait_until(lambda: not db.txns.active_transactions())
        # SysLock and SysSession agree: nothing is held, nobody is home.
        assert db.select("SysLock") == []
        assert db.select("SysSession") == []
        # And a fresh client can write the object immediately.
        with Client(*server.address) as c:
            c.update(target, {"color": "survivor"})
            assert c.get(target)["values"]["color"] == "survivor"

    def test_deadlock_victim_gets_typed_error_and_loses_txn(self, served):
        db, server = served
        vehicles = db.select("Vehicle limit 2")
        oid_a, oid_b = vehicles[0].oid, vehicles[1].oid
        errors = []
        with Client(*server.address) as c1, Client(*server.address) as c2:
            c1.begin()
            c1.update(oid_a, {"weight": 1})
            c2.begin()
            c2.update(oid_b, {"weight": 2})

            def cross():
                try:
                    c1.update(oid_b, {"weight": 3})
                except ServerError as exc:
                    errors.append(exc)

            thread = threading.Thread(target=cross)
            thread.start()
            try:
                c2.update(oid_a, {"weight": 4})
            except ServerError as exc:
                errors.append(exc)
            thread.join(timeout=30)
        assert errors, "one of the two writers must fail"
        assert all(e.code in ("DEADLOCK", "LOCK_TIMEOUT") for e in errors)
        # Whatever happened, disconnecting both cleaned everything up.
        assert _wait_until(lambda: not db.txns.active_transactions())
        assert db.select("SysLock") == []

    def test_commit_time_error_surfaces_typed_and_ends_txn(self, served):
        db, server = served
        real_log_commit = db.wal.log_commit

        def failing_log_commit(txn_id):
            raise TransactionError("injected commit failure")

        with Client(*server.address) as c:
            c.begin()
            oid = c.new("Vehicle", {"weight": 123, "color": "doomed"})
            db.wal.log_commit = failing_log_commit
            try:
                with pytest.raises(ServerError) as err:
                    c.commit()
            finally:
                db.wal.log_commit = real_log_commit
            # The failure reaches the caller with its typed wire code —
            # not swallowed by a pool rollback on a dead transaction.
            assert err.value.code == "TRANSACTION"
            assert not c.in_txn
            # Server side: the transaction was rolled back, not stranded.
            assert db.txns.active_transactions() == []
            assert db.select("SysLock") == []
            assert db.select("Vehicle where color = 'doomed'") == []
            # The connection is still usable for a fresh transaction.
            c.begin()
            c.new("Vehicle", {"weight": 124, "color": "phoenix"})
            c.commit()
            assert len(db.select("Vehicle where color = 'phoenix'")) == 1

    def test_transaction_context_propagates_commit_error(self, served):
        db, server = served
        real_log_commit = db.wal.log_commit

        def failing_log_commit(txn_id):
            raise TransactionError("injected commit failure")

        with Client(*server.address) as c:
            try:
                with pytest.raises(ServerError) as err:
                    with c.transaction():
                        c.new("Vehicle", {"weight": 9, "color": "ghost"})
                        db.wal.log_commit = failing_log_commit
            finally:
                db.wal.log_commit = real_log_commit
            assert err.value.code == "TRANSACTION"
            assert not c.in_txn
            assert db.txns.active_transactions() == []


class TestStreaming:
    def test_query_stream_yields_all_rows(self, client):
        rows = list(client.query_stream("Vehicle where color = 'red'", batch=5))
        assert len(rows) == 12
        assert all(row["values"]["color"] == "red" for row in rows)

    def test_abandoned_stream_releases_server_state(self, served):
        db, server = served
        with Client(*server.address) as c:
            stream = c.query_stream("Vehicle", batch=4)
            next(stream)
            next(stream)
            stream.close()  # generator finally -> close_cursor round trip
            # The cursor is gone server-side and its read txn released.
            assert _wait_until(lambda: not db.txns.active_transactions())
            rows = db.select("SysSession")
            assert len(rows) == 1 and rows[0]["cursors"] == 0

    def test_fetch_unknown_cursor(self, client):
        with pytest.raises(ServerError) as err:
            client.call("fetch", cursor=999)
        assert err.value.code == "SESSION"

    def test_stream_under_session_txn_sees_own_writes(self, client):
        client.begin()
        oid = client.new("Vehicle", {"weight": 50000, "color": "cerise"})
        seen = [
            row
            for row in client.query_stream("Vehicle where color = 'cerise'")
            if row["oid"] == oid
        ]
        assert len(seen) == 1
        client.rollback()


class TestSysSession:
    def test_sessions_visible_while_connected(self, served):
        db, server = served
        with Client(*server.address) as c:
            assert c.ping()
            rows = db.select("SysSession")
            assert len(rows) == 1
            row = rows[0]
            assert row["state"] == "idle"
            assert row["requests"] >= 1
            c.begin()
            row = db.select("SysSession")[0]
            assert row["state"] == "in_txn"
            assert row["txn"] == db.txns.active_transactions()[0]
            c.rollback()
        assert _wait_until(lambda: db.select("SysSession") == [])

    def test_syssession_queryable_over_the_wire(self, served):
        _db, server = served
        with Client(*server.address) as c:
            rows = c.query("SysSession")
            assert len(rows) == 1
            assert rows[0]["client"].startswith("127.0.0.1:")


class TestIdleReaper:
    def test_idle_session_is_evicted_and_rolled_back(self):
        db = _make_db()
        target = db.select("Vehicle limit 1")[0].oid
        with Server(db, port=0, workers=2, idle_timeout=0.3) as server:
            c = Client(*server.address)
            c.begin()
            c.update(target, {"color": "sleepy"})
            assert _wait_until(lambda: len(server.sessions) == 0, timeout=10.0)
            assert not db.txns.active_transactions()
            assert db.select("SysLock") == []
            assert db.metrics.counter("server.idle_evictions").value >= 1
            with pytest.raises((ConnectionError, OSError)):
                c.ping()
            c.close()
        db.close()


class TestConnectionPool:
    def test_pooled_connection_is_reused(self, served):
        _db, server = served
        with ConnectionPool(*server.address, size=2) as pool:
            c1 = pool.acquire()
            pool.release(c1)
            c2 = pool.acquire()
            assert c2 is c1
            pool.release(c2)

    def test_release_rolls_back_open_txn(self, served):
        db, server = served
        target = db.select("Vehicle limit 1")[0].oid
        with ConnectionPool(*server.address, size=2) as pool:
            c = pool.acquire()
            c.begin()
            c.update(target, {"color": "leaky"})
            pool.release(c)
            assert not c.in_txn
            assert not db.txns.active_transactions()

    def test_dead_pooled_connection_replaced(self, served):
        _db, server = served
        with ConnectionPool(*server.address, size=2) as pool:
            c = pool.acquire()
            pool.release(c)
            c._sock.close()  # the server side of the pool entry died
            fresh = pool.acquire()
            assert fresh.ping()
            pool.release(fresh)


class TestServerLifecycle:
    def test_stop_is_idempotent_and_detaches_registry(self):
        db = _make_db()
        server = Server(db, port=0)
        server.start()
        assert db.sessions is server.sessions
        server.stop()
        server.stop()
        assert db.sessions is None
        db.close()

    def test_database_close_is_idempotent(self, tmp_path):
        db = Database(str(tmp_path / "kimdb.pages"))
        db.define_class("Thing", attributes=[AttributeDef("n", "Integer")])
        db.new("Thing", {"n": 1})
        db.close()
        assert db.closed
        db.close()  # second close is a no-op, not a crash
        assert db.closed

    def test_in_memory_double_close(self):
        db = Database()
        db.close()
        db.close()
        assert db.closed


class TestSemanticErrorPayload:
    """Semantic/rewrite diagnostics must survive the wire with their
    source spans intact: the remote client gets the same line/column and
    caret snippet a local caller sees in the rendered message."""

    def test_semantic_error_keeps_span_over_the_wire(self, client):
        query = "SELECT v FROM Vehicle v WHERE v.bogus = 1"
        with pytest.raises(ServerError) as err:
            client.query(query)
        exc = err.value
        assert exc.code == "SEMANTIC"
        assert exc.diagnostics, "SEMANTIC error frame lost its diagnostics"
        diag = exc.diagnostics[0]
        assert diag["code"] == "ANA101"
        assert diag["severity"] == "error"
        # The span is the character range of `v.bogus` in the query text.
        start, end = diag["span"]
        assert query[start:end] == "v.bogus"
        assert diag["line"] == 1
        assert diag["column"] == start + 1
        caret_line, caret = diag["caret"].split("\n")
        assert caret_line == query
        assert caret.index("^") == start
        assert caret.count("^") == end - start

    def test_rewrite_info_diagnostics_do_not_fail_queries(self, client):
        # A provably-empty query is still a *successful* query: REW001 is
        # informational, the server returns an empty result, not an error.
        oids = client.query("Vehicle where weight > 10 and weight < 5")
        assert oids == []
