"""The physical operator pipeline: protocol, top-K, early termination."""

import pytest

from repro import Database
from repro.bench.schemas import build_vehicle_schema, populate_vehicles
from repro.errors import QueryError
from repro.query.operators import LimitOp, PhysicalOperator
from repro.query.planner import ExtentScan, IndexOrderScan


class CountingSource(PhysicalOperator):
    """Leaf emitting 1..n, tracking pulls and close calls."""

    name = "counting"

    def __init__(self, n):
        super().__init__()
        self.n = n
        self.closes = 0
        self._emitted = 0

    def _next(self):
        if self._emitted >= self.n:
            return None
        self._emitted += 1
        return self._emitted

    def _on_close(self):
        self.closes += 1


class TestIteratorProtocol:
    def test_open_next_close_counts_rows(self):
        source = CountingSource(3)
        source.open()
        assert [source.next() for _ in range(4)] == [1, 2, 3, None]
        assert source.rows_out == 3
        source.close()
        assert source.closes == 1

    def test_elapsed_only_advances_when_timed(self):
        source = CountingSource(5)
        source.open()
        list(source.rows())
        assert source.elapsed == 0.0
        source.close()
        timed = CountingSource(5)
        timed.set_timed()
        timed.open()
        list(timed.rows())
        assert timed.elapsed > 0.0
        timed.close()

    def test_limit_stops_pulling_and_closes_subtree(self):
        source = CountingSource(100)
        limit = LimitOp(source, 5)
        limit.open()
        rows = list(limit.rows())
        assert rows == [1, 2, 3, 4, 5]
        # The 6th pull was never made: the quota check closed the
        # subtree before asking the child for another row.
        assert source.rows_out == 5
        assert source.closes >= 1
        limit.close()  # idempotent after the early close
        assert limit.rows_out == 5

    def test_limit_on_short_input(self):
        source = CountingSource(2)
        limit = LimitOp(source, 5)
        limit.open()
        assert list(limit.rows()) == [1, 2]
        limit.close()


class TestTopKParity:
    """ORDER BY ... LIMIT k must equal the full sort's first k rows."""

    CASES = [
        (order, desc, where, k)
        for order in ("v.weight", "v.manufacturer.name")
        for desc in (False, True)
        for where in ("", "WHERE v.weight > 7500 ")
        for k in (1, 7, 50, 200, 999)
    ]

    @pytest.mark.parametrize("order,desc,where,k", CASES)
    def test_limit_matches_full_sort_prefix(self, populated_db, order, desc, where, k):
        direction = " DESC" if desc else ""
        base = "SELECT v FROM Vehicle v %sORDER BY %s%s" % (where, order, direction)
        full = populated_db.execute(base)
        limited = populated_db.execute("%s LIMIT %d" % (base, k))
        assert limited.oids == full.oids[:k]

    def test_limit_without_order_matches_oid_prefix(self, populated_db):
        full = populated_db.execute("SELECT v FROM Vehicle v")
        limited = populated_db.execute("SELECT v FROM Vehicle v LIMIT 9")
        assert limited.oids == full.oids[:9]


@pytest.fixture(scope="module")
def big_indexed_db():
    """E1 vehicle fixture at N=5000 with a hierarchy index on weight."""
    database = Database()
    build_vehicle_schema(database)
    populate_vehicles(database, n_vehicles=5000, n_companies=25, seed=1990)
    database.create_hierarchy_index("Vehicle", "weight")
    return database


class TestOrderedIndexScan:
    """The acceptance scenario: ORDER BY + LIMIT stops the walk early."""

    QUERY = "SELECT v FROM Vehicle v ORDER BY v.weight LIMIT 10"

    def test_planner_chooses_index_order_scan(self, big_indexed_db):
        plan = big_indexed_db.plan(self.QUERY)
        assert isinstance(plan.access, IndexOrderScan)
        assert any("ordered index scan" in note for note in plan.notes)
        # Without a LIMIT there is nothing to terminate early; the
        # planner sticks to scan + sort.
        unlimited = big_indexed_db.plan("SELECT v FROM Vehicle v ORDER BY v.weight")
        assert isinstance(unlimited.access, ExtentScan)

    def test_results_match_full_sort(self, big_indexed_db):
        n = big_indexed_db.count("Vehicle")
        assert n >= 5000
        full = big_indexed_db.execute("SELECT v FROM Vehicle v ORDER BY v.weight")
        limited = big_indexed_db.execute(self.QUERY)
        assert limited.oids == full.oids[:10]

    def test_desc_results_match_full_sort(self, big_indexed_db):
        full = big_indexed_db.execute(
            "SELECT v FROM Vehicle v ORDER BY v.weight DESC"
        )
        limited = big_indexed_db.execute(
            "SELECT v FROM Vehicle v ORDER BY v.weight DESC LIMIT 10"
        )
        assert limited.oids == full.oids[:10]

    def test_examined_stays_below_extent_size(self, big_indexed_db):
        n = big_indexed_db.count("Vehicle")
        result = big_indexed_db.execute(self.QUERY)
        assert len(result.oids) == 10
        # The deref stage fed by the ordered walk stopped after the
        # LIMIT was satisfied — nowhere near the full extent.
        assert result.stats.examined < n
        assert result.stats.examined <= 20
        assert result.pipeline.source.rows_out == result.stats.examined

    def test_explain_analyze_reports_live_counters(self, big_indexed_db):
        n = big_indexed_db.count("Vehicle")
        explained = big_indexed_db.explain(self.QUERY)
        access = explained.root.find("index-order-scan")
        assert access is not None
        assert access.meta["access"] == "index-order"
        assert access.actual_rows < n
        assert access.actual_rows == explained.result.pipeline.source.rows_out
        limit = explained.root.find("limit")
        assert limit is not None and limit.actual_rows == 10
        assert explained.root.actual_seconds > 0
        assert "index-order-scan" in str(explained)

    def test_with_predicate_reexamines_until_quota(self, big_indexed_db):
        n = big_indexed_db.count("Vehicle")
        query = (
            "SELECT v FROM Vehicle v WHERE v.weight > 2000 "
            "ORDER BY v.weight LIMIT 10"
        )
        plan = big_indexed_db.plan(query)
        assert isinstance(plan.access, IndexOrderScan)
        full = big_indexed_db.execute(
            "SELECT v FROM Vehicle v WHERE v.weight > 2000 ORDER BY v.weight"
        )
        limited = big_indexed_db.execute(query)
        assert limited.oids == full.oids[:10]
        assert limited.stats.examined < n


class TestSelectIter:
    def test_streams_same_handles_as_select(self, populated_db):
        query = "SELECT v FROM Vehicle v WHERE v.weight > 7500"
        streamed = [h.oid for h in populated_db.select_iter(query)]
        assert streamed == populated_db.execute(query).oids

    def test_streaming_order_by_limit(self, big_indexed_db):
        query = "SELECT v FROM Vehicle v ORDER BY v.weight LIMIT 5"
        streamed = [h.oid for h in big_indexed_db.select_iter(query)]
        assert streamed == big_indexed_db.execute(query).oids

    def test_abandoning_the_iterator_is_clean(self, big_indexed_db):
        iterator = big_indexed_db.select_iter(
            "SELECT v FROM Vehicle v ORDER BY v.weight"
        )
        first = next(iterator)
        assert first.oid is not None
        iterator.close()  # generator close propagates to pipeline close

    def test_mid_stream_close_releases_snapshot_and_operators(self, populated_db):
        locks_before = populated_db.locks.stats.acquisitions
        stream = populated_db.select_iter("SELECT v FROM Vehicle v")
        next(stream)
        next(stream)
        # Snapshot reads: the stream runs lock-free against its begin
        # snapshot — no transaction, no scan locks, one live snapshot.
        assert populated_db.locks.stats.acquisitions == locks_before
        assert populated_db.txns.active_transactions() == []
        assert populated_db.version_store.live_snapshots()
        stream.close()
        assert stream.closed
        # Snapshot gone (GC horizon advanced), leaf scan operator closed.
        assert populated_db.version_store.live_snapshots() == []
        assert stream._pipeline.source._iter is None
        with pytest.raises(StopIteration):
            next(stream)
        stream.close()  # idempotent

    def test_mid_stream_close_with_locking_reads_holds_scan_locks(self):
        db = Database(snapshot_reads=False)
        build_vehicle_schema(db)
        populate_vehicles(db, n_vehicles=20, n_companies=2)
        try:
            stream = db.select_iter("SELECT v FROM Vehicle v")
            next(stream)
            # Legacy mode: the stream's implicit read transaction holds
            # the scan locks until close commits it.
            assert db.txns.active_transactions()
            assert db.locks.held_snapshot()
            stream.close()
            assert db.txns.active_transactions() == []
            assert db.locks.held_snapshot() == []
        finally:
            db.close()

    def test_mid_stream_close_under_explicit_txn_keeps_txn(self, populated_db):
        with populated_db.txns.begin() as txn:
            stream = populated_db.select_iter("SELECT v FROM Vehicle v")
            next(stream)
            stream.close()
            # The caller's transaction owns the stream's snapshot and
            # survives the stream; only commit/abort closes it.
            assert txn.is_active
            assert txn.snapshot is not None
            assert populated_db.version_store.live_snapshots()
        assert populated_db.version_store.live_snapshots() == []
        assert populated_db.locks.held_snapshot() == []

    def test_exhausted_stream_self_closes(self, populated_db):
        stream = populated_db.select_iter("Vehicle where weight > 7500")
        for _handle in stream:
            pass
        assert populated_db.txns.active_transactions() == []
        assert populated_db.locks.held_snapshot() == []
        assert populated_db.version_store.live_snapshots() == []

    def test_rejects_aggregates_and_projections(self, populated_db):
        with pytest.raises(QueryError):
            list(populated_db.select_iter("SELECT COUNT(v) FROM Vehicle v"))
        with pytest.raises(QueryError):
            list(populated_db.select_iter("SELECT v.weight FROM Vehicle v"))


class TestPipelineCounters:
    def test_operator_stats_expose_each_stage(self, populated_db):
        result = populated_db.execute(
            "SELECT v FROM Vehicle v WHERE v.weight > 7500 ORDER BY v.weight LIMIT 3"
        )
        stats = result.operator_stats()
        ops = [entry["op"] for entry in stats]
        assert ops == ["extent-scan", "filter", "sort", "limit"]
        by_op = {entry["op"]: entry for entry in stats}
        assert by_op["extent-scan"]["rows_out"] == result.stats.examined
        assert by_op["filter"]["rows_out"] == result.stats.matched
        assert by_op["limit"]["rows_out"] == 3

    def test_projection_streams_with_oids_aligned(self, populated_db):
        result = populated_db.execute(
            "SELECT v.weight FROM Vehicle v WHERE v.weight > 7500 LIMIT 4"
        )
        assert len(result.oids) == len(result.rows) == 4
        for oid, row in zip(result.oids, result.rows):
            state = populated_db.get(oid)
            assert row["weight"] == state["weight"]
