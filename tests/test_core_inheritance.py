"""C3 linearization and conflict resolution."""

import pytest

from repro.core.inheritance import c3_linearize, detect_cycle, resolve_by_precedence
from repro.errors import CycleError, InheritanceConflictError


def make_parents(graph):
    return lambda name: graph.get(name, [])


class TestLinearization:
    def test_single_chain(self):
        graph = {"C": ["B"], "B": ["A"], "A": []}
        assert c3_linearize("C", make_parents(graph)) == ["C", "B", "A"]

    def test_diamond_respects_local_order(self):
        graph = {"D": ["B", "C"], "B": ["A"], "C": ["A"], "A": []}
        assert c3_linearize("D", make_parents(graph)) == ["D", "B", "C", "A"]

    def test_matches_python_mro(self):
        class A:  # noqa: N801 - mirrors graph names
            pass

        class B(A):
            pass

        class C(A):
            pass

        class D(B, C):
            pass

        class E(C, B):
            pass

        graph = {"D": ["B", "C"], "E": ["C", "B"], "B": ["A"], "C": ["A"], "A": []}
        assert c3_linearize("D", make_parents(graph)) == [
            k.__name__ for k in D.__mro__ if k is not object
        ]
        assert c3_linearize("E", make_parents(graph)) == [
            k.__name__ for k in E.__mro__ if k is not object
        ]

    def test_inconsistent_order_raises(self):
        graph = {
            "G": ["E", "F"],
            "E": ["B", "C"],
            "F": ["C", "B"],
            "B": [],
            "C": [],
        }
        with pytest.raises(InheritanceConflictError):
            c3_linearize("G", make_parents(graph))

    def test_cycle_raises(self):
        graph = {"A": ["B"], "B": ["A"]}
        with pytest.raises(CycleError):
            c3_linearize("A", make_parents(graph))

    def test_deep_multiple_inheritance(self):
        graph = {
            "X": ["M1", "M2", "M3"],
            "M1": ["Base"],
            "M2": ["Base"],
            "M3": ["Base"],
            "Base": [],
        }
        assert c3_linearize("X", make_parents(graph)) == [
            "X", "M1", "M2", "M3", "Base",
        ]


class TestCycleDetection:
    def test_no_cycle(self):
        graph = {"B": ["A"], "A": []}
        assert detect_cycle(["A", "B"], make_parents(graph)) == []

    def test_self_loop(self):
        graph = {"A": ["A"]}
        cycle = detect_cycle(["A"], make_parents(graph))
        assert cycle[0] == cycle[-1] == "A"

    def test_long_cycle_found(self):
        graph = {"A": ["B"], "B": ["C"], "C": ["A"]}
        cycle = detect_cycle(["A"], make_parents(graph))
        assert len(cycle) >= 3


class TestPrecedenceResolution:
    def test_first_definition_wins(self):
        members = {
            "C": {"f": "C.f"},
            "B": {"f": "B.f", "g": "B.g"},
            "A": {"f": "A.f", "h": "A.h"},
        }
        resolved = resolve_by_precedence(["C", "B", "A"], lambda c: members.get(c, {}))
        assert resolved == {"f": "C.f", "g": "B.g", "h": "A.h"}

    def test_empty_classes_skipped(self):
        resolved = resolve_by_precedence(["C", "B"], lambda c: {})
        assert resolved == {}
