"""Long-duration transactions: checkout/checkin workspaces."""

import pytest

from repro import AttributeDef, Database
from repro.errors import LockTimeoutError, TransactionError


@pytest.fixture
def ddb():
    db = Database()
    db.define_class(
        "Design",
        attributes=[
            AttributeDef("name", "String"),
            AttributeDef("revision", "Integer", default=0),
        ],
    )
    return db


class TestOptimisticWorkspace:
    def test_checkout_copies_state(self, ddb):
        design = ddb.new("Design", {"name": "chip", "revision": 1})
        workspace = ddb.workspace("alice")
        workspace.checkout([design.oid])
        workspace.update(design.oid, {"revision": 2})
        # Shared database untouched until checkin.
        assert ddb.get(design.oid)["revision"] == 1

    def test_checkin_writes_edits(self, ddb):
        design = ddb.new("Design", {"name": "chip", "revision": 1})
        workspace = ddb.workspace()
        workspace.checkout([design.oid])
        workspace.update(design.oid, {"revision": 2})
        report = workspace.checkin()
        assert report.ok
        assert report.written == [design.oid]
        assert ddb.get(design.oid)["revision"] == 2

    def test_unchanged_objects_not_rewritten(self, ddb):
        design = ddb.new("Design", {"name": "chip"})
        other = ddb.new("Design", {"name": "board"})
        workspace = ddb.workspace()
        workspace.checkout([design.oid, other.oid])
        workspace.update(design.oid, {"revision": 5})
        report = workspace.checkin()
        assert report.unchanged == [other.oid]
        assert report.written == [design.oid]

    def test_conflict_detected(self, ddb):
        design = ddb.new("Design", {"name": "chip", "revision": 1})
        workspace = ddb.workspace("alice")
        workspace.checkout([design.oid])
        workspace.update(design.oid, {"revision": 2})
        # Concurrent change in the shared database.
        ddb.update(design.oid, {"revision": 9})
        report = workspace.checkin()
        assert not report.ok
        assert report.conflicts[0].oid == design.oid
        assert report.conflicts[0].theirs.values["revision"] == 9
        # Nothing written on conflict.
        assert ddb.get(design.oid)["revision"] == 9

    def test_force_checkin_overwrites(self, ddb):
        design = ddb.new("Design", {"name": "chip", "revision": 1})
        workspace = ddb.workspace()
        workspace.checkout([design.oid])
        workspace.update(design.oid, {"revision": 2})
        ddb.update(design.oid, {"revision": 9})
        report = workspace.checkin(force=True)
        assert report.ok
        assert ddb.get(design.oid)["revision"] == 2

    def test_local_delete_checked_in(self, ddb):
        design = ddb.new("Design", {"name": "chip"})
        workspace = ddb.workspace()
        workspace.checkout([design.oid])
        workspace.delete(design.oid)
        report = workspace.checkin()
        assert report.deleted == [design.oid]
        assert not ddb.exists(design.oid)

    def test_edited_listing(self, ddb):
        a = ddb.new("Design", {"name": "a"})
        b = ddb.new("Design", {"name": "b"})
        workspace = ddb.workspace()
        workspace.checkout([a.oid, b.oid])
        workspace.update(b.oid, {"revision": 1})
        assert workspace.edited() == [b.oid]

    def test_workspace_validates_updates(self, ddb):
        design = ddb.new("Design", {"name": "chip"})
        workspace = ddb.workspace()
        workspace.checkout([design.oid])
        with pytest.raises(Exception):
            workspace.update(design.oid, {"revision": "not-an-int"})

    def test_closed_workspace_rejects_use(self, ddb):
        design = ddb.new("Design", {"name": "chip"})
        workspace = ddb.workspace()
        workspace.checkout([design.oid])
        workspace.release()
        with pytest.raises(TransactionError):
            workspace.get(design.oid)

    def test_not_checked_out_rejected(self, ddb):
        design = ddb.new("Design", {"name": "chip"})
        workspace = ddb.workspace()
        with pytest.raises(TransactionError):
            workspace.update(design.oid, {"revision": 1})

    def test_checkin_is_atomic(self, ddb):
        # Two edits land in one transaction.
        a = ddb.new("Design", {"name": "a"})
        b = ddb.new("Design", {"name": "b"})
        workspace = ddb.workspace()
        workspace.checkout([a.oid, b.oid])
        workspace.update(a.oid, {"revision": 1})
        workspace.update(b.oid, {"revision": 1})
        committed_before = ddb.txns.committed_count
        workspace.checkin()
        assert ddb.txns.committed_count == committed_before + 1


class TestPessimisticWorkspace:
    def test_persistent_lock_blocks_writers(self, ddb):
        design = ddb.new("Design", {"name": "chip", "revision": 1})
        workspace = ddb.workspace("alice", pessimistic=True)
        workspace.checkout([design.oid])
        # A short transaction on another "session" cannot write the object.
        txn = ddb.transaction()
        with pytest.raises(LockTimeoutError):
            ddb.locks.acquire(txn.txn_id, ("object", design.oid), "X", timeout=0.05)
        txn.abort()
        workspace.release()

    def test_no_conflicts_under_pessimism(self, ddb):
        design = ddb.new("Design", {"name": "chip", "revision": 1})
        workspace = ddb.workspace(pessimistic=True)
        workspace.checkout([design.oid])
        workspace.update(design.oid, {"revision": 2})
        report = workspace.checkin()
        assert report.ok
        assert ddb.get(design.oid)["revision"] == 2

    def test_release_frees_locks(self, ddb):
        design = ddb.new("Design", {"name": "chip"})
        workspace = ddb.workspace(pessimistic=True)
        workspace.checkout([design.oid])
        workspace.release()
        ddb.update(design.oid, {"revision": 3})  # no longer blocked
        assert ddb.get(design.oid)["revision"] == 3
