"""Property-based tests (hypothesis) on core data structures."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.inheritance import c3_linearize
from repro.core.obj import ObjectState
from repro.core.oid import OID
from repro.index.btree import BTree, normalize_key
from repro.query.paths import compare
from repro.storage.page import SlottedPage
from repro.storage.serializer import decode_object, encode_object

# ----------------------------------------------------------------------
# value strategies
# ----------------------------------------------------------------------

scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=40),
    st.builds(OID, st.integers(min_value=0, max_value=2 ** 40)),
)

storable_values = st.one_of(
    scalar_values,
    st.lists(scalar_values, max_size=5),
    st.lists(st.lists(scalar_values, max_size=3), max_size=3),
)

attr_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


class TestSerializerProperties:
    @given(
        oid_value=st.integers(min_value=0, max_value=2 ** 40),
        class_name=st.text(alphabet=string.ascii_letters, min_size=1, max_size=12),
        values=st.dictionaries(attr_names, storable_values, max_size=8),
    )
    @settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow])
    def test_roundtrip_identity(self, oid_value, class_name, values):
        state = ObjectState(OID(oid_value), class_name, values)
        decoded = decode_object(encode_object(state))
        assert decoded.oid == state.oid
        assert decoded.class_name == class_name
        assert decoded.values == values

    @given(values=st.dictionaries(attr_names, storable_values, max_size=6))
    @settings(max_examples=50)
    def test_encoding_deterministic(self, values):
        state = ObjectState(OID(1), "A", values)
        assert encode_object(state) == encode_object(state)


index_keys = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-1000, max_value=1000),
    st.floats(allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6),
    st.text(max_size=10),
)


class TestBTreeProperties:
    @given(keys=st.lists(index_keys, max_size=200))
    @settings(max_examples=100)
    def test_insert_then_search_finds_all(self, keys):
        tree = BTree(order=8)
        for position, key in enumerate(keys):
            tree.insert(key, "A", OID(position + 1))
        tree.check_invariants()
        for position, key in enumerate(keys):
            assert ("A", OID(position + 1)) in tree.search(key)

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=100), max_size=150),
        to_remove=st.sets(st.integers(min_value=0, max_value=149), max_size=80),
    )
    @settings(max_examples=100)
    def test_removal_leaves_exactly_the_rest(self, keys, to_remove):
        tree = BTree(order=6)
        for position, key in enumerate(keys):
            tree.insert(key, "A", OID(position + 1))
        for position in sorted(to_remove):
            if position < len(keys):
                assert tree.remove(keys[position], "A", OID(position + 1))
        tree.check_invariants()
        surviving = {
            position
            for position in range(len(keys))
            if position not in to_remove
        }
        assert len(tree) == len(surviving)
        for position in surviving:
            assert ("A", OID(position + 1)) in tree.search(keys[position])

    @given(keys=st.lists(st.integers(min_value=-500, max_value=500), max_size=150))
    @settings(max_examples=100)
    def test_range_scan_is_sorted_and_complete(self, keys):
        tree = BTree(order=8)
        for position, key in enumerate(keys):
            tree.insert(key, "A", OID(position + 1))
        scanned = [key for key, _entries in tree.range()]
        assert scanned == sorted(set(keys))

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=100),
        low=st.integers(min_value=0, max_value=100),
        high=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=100)
    def test_bounded_range_matches_filter(self, keys, low, high):
        tree = BTree(order=8)
        for position, key in enumerate(keys):
            tree.insert(key, "A", OID(position + 1))
        scanned = [key for key, _entries in tree.range(low, high)]
        expected = sorted({k for k in keys if low <= k <= high})
        assert scanned == expected


class TestNormalizeKeyProperties:
    @given(a=index_keys, b=index_keys)
    @settings(max_examples=200)
    def test_total_order_antisymmetry(self, a, b):
        ka, kb = normalize_key(a), normalize_key(b)
        assert (ka < kb) + (kb < ka) + (ka == kb) == 1

    @given(a=index_keys, b=index_keys, c=index_keys)
    @settings(max_examples=200)
    def test_transitivity(self, a, b, c):
        ka, kb, kc = sorted([normalize_key(a), normalize_key(b), normalize_key(c)])
        assert ka <= kb <= kc
        assert ka <= kc


class TestPageProperties:
    @given(records=st.lists(st.binary(min_size=1, max_size=60), max_size=30))
    @settings(max_examples=100)
    def test_roundtrip_preserves_live_records(self, records):
        page = SlottedPage.empty(4096)
        slots = [page.insert(record) for record in records]
        loaded = SlottedPage.from_bytes(page.to_bytes())
        for slot, record in zip(slots, records):
            assert loaded.read(slot) == record

    @given(
        records=st.lists(st.binary(min_size=1, max_size=60), min_size=1, max_size=30),
        delete_mask=st.lists(st.booleans(), min_size=1, max_size=30),
    )
    @settings(max_examples=100)
    def test_delete_subset_roundtrip(self, records, delete_mask):
        page = SlottedPage.empty(4096)
        slots = [page.insert(record) for record in records]
        kept = []
        for position, slot in enumerate(slots):
            if position < len(delete_mask) and delete_mask[position]:
                page.delete(slot)
            else:
                kept.append((slot, records[position]))
        loaded = SlottedPage.from_bytes(page.to_bytes())
        assert list(loaded.records()) == kept


class TestCompareProperties:
    @given(a=index_keys)
    @settings(max_examples=100)
    def test_equality_reflexive(self, a):
        if a is not None:
            assert compare("=", a, a)

    @given(a=index_keys, b=index_keys)
    @settings(max_examples=200)
    def test_eq_and_ne_are_complements(self, a, b):
        assert compare("=", a, b) != compare("!=", a, b)


class TestC3Properties:
    @given(data=st.data())
    @settings(max_examples=60)
    def test_linearization_starts_with_class_and_contains_ancestors(self, data):
        # Build a random DAG layer by layer (parents only from earlier layers).
        layer_count = data.draw(st.integers(min_value=1, max_value=4))
        names = []
        graph = {}
        counter = 0
        for layer in range(layer_count):
            width = data.draw(st.integers(min_value=1, max_value=3))
            layer_names = []
            for _ in range(width):
                name = "C%d" % counter
                counter += 1
                if names:
                    parent_pool = st.sets(
                        st.sampled_from(names), min_size=0, max_size=min(3, len(names))
                    )
                    parents = sorted(data.draw(parent_pool))
                else:
                    parents = []
                graph[name] = parents
                layer_names.append(name)
            names.extend(layer_names)
        for name in names:
            try:
                mro = c3_linearize(name, lambda n: graph.get(n, []))
            except Exception:
                continue  # inconsistent precedence orders are allowed to fail
            assert mro[0] == name
            # Every transitive ancestor appears exactly once.
            ancestors = set()
            stack = list(graph.get(name, []))
            while stack:
                ancestor = stack.pop()
                if ancestor not in ancestors:
                    ancestors.add(ancestor)
                    stack.extend(graph.get(ancestor, []))
            assert set(mro) == {name} | ancestors
            assert len(mro) == len(set(mro))
