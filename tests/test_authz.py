"""Authorization: role graph, implicit grants, negative overrides."""

import pytest

from repro import AttributeDef, Database
from repro.authz import attach
from repro.errors import AuthorizationError


@pytest.fixture
def adb():
    db = Database()
    manager = attach(db)
    db.define_class("Document", attributes=[
        AttributeDef("title", "String"), AttributeDef("level", "Integer"),
    ])
    db.define_class("SecretDocument", superclasses=("Document",))
    manager.add_role("employee")
    manager.add_role("manager", extends=["employee"])
    manager.add_role("auditor")
    return db


class TestRoleGraph:
    def test_duplicate_role_rejected(self, adb):
        with pytest.raises(AuthorizationError):
            adb.authz.add_role("employee")

    def test_unknown_parent_rejected(self, adb):
        with pytest.raises(AuthorizationError):
            adb.authz.add_role("x", extends=["ghost"])

    def test_role_inherits_grants(self, adb):
        adb.authz.grant("employee", "read", "Document")
        adb.authz.set_subject("manager")
        assert adb.authz.allowed("read", "Document")

    def test_superuser_bypasses(self, adb):
        adb.authz.set_subject("system")
        assert adb.authz.allowed("delete", "Document")


class TestImplicitDerivation:
    def test_database_grant_covers_classes(self, adb):
        adb.authz.grant("employee", "read", "database")
        adb.authz.set_subject("employee")
        assert adb.authz.allowed("read", "Document")
        assert adb.authz.allowed("read", "SecretDocument")

    def test_class_grant_covers_instances(self, adb):
        adb.authz.set_subject("system")
        doc = adb.new("Document", {"title": "t"})
        adb.authz.grant("employee", "read", "Document")
        adb.authz.set_subject("employee")
        assert adb.authz.allowed("read", "Document", doc.oid)

    def test_class_grant_covers_subclasses_by_default(self, adb):
        adb.authz.grant("employee", "read", "Document")
        adb.authz.set_subject("employee")
        assert adb.authz.allowed("read", "SecretDocument")

    def test_subclass_exclusion(self, adb):
        adb.authz.grant("employee", "read", "Document", include_subclasses=False)
        adb.authz.set_subject("employee")
        assert adb.authz.allowed("read", "Document")
        assert not adb.authz.allowed("read", "SecretDocument")

    def test_write_implies_read(self, adb):
        adb.authz.grant("employee", "write", "Document")
        adb.authz.set_subject("employee")
        assert adb.authz.allowed("read", "Document")
        assert not adb.authz.allowed("delete", "Document")

    def test_closed_world_default_deny(self, adb):
        adb.authz.set_subject("employee")
        assert not adb.authz.allowed("read", "Document")


class TestNegativeAuthorizations:
    def test_deny_overrides_grant(self, adb):
        adb.authz.grant("employee", "read", "database")
        adb.authz.deny("employee", "read", "SecretDocument")
        adb.authz.set_subject("employee")
        assert adb.authz.allowed("read", "Document")
        assert not adb.authz.allowed("read", "SecretDocument")

    def test_deny_read_poisons_write(self, adb):
        adb.authz.grant("employee", "write", "database")
        adb.authz.deny("employee", "read", "SecretDocument")
        adb.authz.set_subject("employee")
        assert not adb.authz.allowed("write", "SecretDocument")

    def test_object_level_deny(self, adb):
        adb.authz.set_subject("system")
        public = adb.new("Document", {"title": "public"})
        private = adb.new("Document", {"title": "private"})
        adb.authz.grant("employee", "read", "Document")
        adb.authz.deny("employee", "read", private.oid)
        adb.authz.set_subject("employee")
        assert adb.authz.allowed("read", "Document", public.oid)
        assert not adb.authz.allowed("read", "Document", private.oid)


class TestEnforcement:
    def test_unauthorized_create_blocked(self, adb):
        adb.authz.set_subject("employee")
        with pytest.raises(AuthorizationError):
            adb.new("Document", {"title": "t"})

    def test_unauthorized_read_blocked(self, adb):
        adb.authz.set_subject("system")
        doc = adb.new("Document", {"title": "t"})
        adb.authz.set_subject("employee")
        with pytest.raises(AuthorizationError):
            adb.get_state(doc.oid)

    def test_unauthorized_query_blocked(self, adb):
        adb.authz.set_subject("employee")
        with pytest.raises(AuthorizationError):
            adb.select("SELECT d FROM Document d")

    def test_authorized_flow(self, adb):
        adb.authz.grant("manager", "create", "Document")
        adb.authz.grant("manager", "write", "Document")
        adb.authz.set_subject("manager")
        doc = adb.new("Document", {"title": "t"})
        adb.update(doc.oid, {"level": 2})
        assert adb.get(doc.oid)["level"] == 2

    def test_result_filtering_per_object(self, adb):
        adb.authz.set_subject("system")
        visible = adb.new("Document", {"title": "a"})
        hidden = adb.new("Document", {"title": "b"})
        adb.authz.grant("employee", "read", "Document")
        adb.authz.deny("employee", "read", hidden.oid)
        adb.authz.set_subject("employee")
        oids = [h.oid for h in adb.select("SELECT d FROM Document d")]
        assert visible.oid in oids
        assert hidden.oid not in oids

    def test_as_subject_context_manager(self, adb):
        adb.authz.grant("employee", "read", "Document")
        with adb.authz.as_subject("employee"):
            assert adb.authz.allowed("read", "Document")
        assert adb.authz.subject == adb.authz.SUPERUSER

    def test_unknown_action_rejected(self, adb):
        with pytest.raises(AuthorizationError):
            adb.authz.grant("employee", "fly", "Document")
