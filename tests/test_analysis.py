"""repro.analysis: OQL semantic analyzer and engine lint rules."""

import os

import pytest

from repro import (
    AttributeDef,
    Database,
    MethodDef,
    SemanticError,
)
from repro.analysis.diagnostics import ERROR, INFO, WARNING, DiagnosticReport, SourceSpan
from repro.analysis.lint import (
    ALL_RULES,
    LintConfig,
    Linter,
    engine_config,
    lint_paths,
)
from repro.analysis.resolve import resolve_path
from repro.errors import QueryError, QuerySyntaxError
from repro.tools.lint import main as lint_main

SRC_REPRO = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro"
)


# ---------------------------------------------------------------------------
# path resolver (shared by analyzer and plan-time validation)
# ---------------------------------------------------------------------------


class TestResolvePath:
    def test_resolves_nested_path(self, populated_db):
        res = resolve_path(populated_db.schema, "Vehicle", ("manufacturer", "location"))
        assert res.ok and res.domain == "String"
        assert [a.name for a in res.attrs] == ["manufacturer", "location"]

    def test_unknown_attribute_with_suggestion(self, populated_db):
        res = resolve_path(populated_db.schema, "Vehicle", ("wieght",))
        assert not res.ok
        assert res.failed_step == 0
        assert res.suggestion == "weight"

    def test_unknown_root_class(self, db):
        res = resolve_path(db.schema, "Nope", ("x",))
        assert not res.ok and res.failed_step == -1

    def test_primitive_navigation_fails(self, populated_db):
        res = resolve_path(populated_db.schema, "Vehicle", ("weight", "value"))
        assert not res.ok and "primitive" in res.failure

    def test_validate_path_delegates(self, populated_db):
        # the plan-time wrapper raises QueryError from the same resolver
        from repro.query.paths import validate_path

        with pytest.raises(QueryError, match="wieght"):
            validate_path(populated_db.schema, "Vehicle", ("wieght",))


# ---------------------------------------------------------------------------
# semantic analyzer diagnostics
# ---------------------------------------------------------------------------


class TestAnalyzerDiagnostics:
    def test_unknown_attribute_structured_diagnostic(self, populated_db):
        query = "SELECT v FROM Vehicle v WHERE v.wieght > 7500"
        report = populated_db.check(query)
        assert not report.ok
        [diag] = report.errors
        assert diag.code == "ANA101"
        assert "wieght" in diag.message and "weight" in diag.message
        assert diag.span == SourceSpan(30, 38)
        assert query[diag.span.start : diag.span.end] == "v.wieght"
        rendered = diag.render(query)
        assert "^" in rendered and "line 1" in rendered

    def test_unknown_target_class(self, populated_db):
        report = populated_db.check("SELECT v FROM Vehicel v WHERE v.weight > 1")
        assert report.codes() == ["ANA001"]
        assert "Vehicle" in report.errors[0].message  # did-you-mean

    def test_domain_mismatch_rejected_before_planning(self, populated_db):
        with pytest.raises(SemanticError) as excinfo:
            populated_db.plan("SELECT v FROM Vehicle v WHERE v.weight = 'heavy'")
        assert [d.code for d in excinfo.value.diagnostics] == ["ANA201"]
        # SemanticError is a QueryError so existing callers keep working
        assert isinstance(excinfo.value, QueryError)

    def test_execute_also_gated(self, populated_db):
        with pytest.raises(SemanticError):
            populated_db.execute("SELECT v FROM Vehicle v WHERE v.weight = 'heavy'")

    def test_numeric_widening_is_compatible(self, populated_db):
        assert populated_db.check(
            "SELECT v FROM Vehicle v WHERE v.weight > 7500.5"
        ).ok

    def test_check_does_not_execute(self, populated_db):
        before = populated_db.metrics.snapshot().get("query.executes", 0)
        populated_db.check("SELECT v FROM Vehicle v WHERE v.weight > 7500")
        after = populated_db.metrics.snapshot().get("query.executes", 0)
        assert before == after

    def test_ordered_comparison_on_reference_domain(self, populated_db):
        report = populated_db.check(
            "SELECT v FROM Vehicle v WHERE v.manufacturer > 3"
        )
        assert "ANA203" in report.codes()

    def test_like_on_integer_domain(self, populated_db):
        report = populated_db.check(
            "SELECT v FROM Vehicle v WHERE v.weight LIKE 'x%'"
        )
        assert "ANA204" in report.codes()

    def test_reference_vs_literal_warns(self, populated_db):
        report = populated_db.check(
            "SELECT v FROM Vehicle v WHERE v.manufacturer = 'GM'"
        )
        assert report.ok  # warning, not error
        assert "ANA205" in report.codes()

    def test_unknown_adt_operation(self, db):
        import repro.adt as adt_pkg

        adt_pkg.attach(db)
        db.define_class("Region", attributes=[AttributeDef("shape", "Any")])
        report = db.check("SELECT r FROM Region r WHERE overlapz(r.shape, [0, 0, 1, 1])")
        assert "ANA304" in report.codes()


class TestSetValuedPaths:
    @pytest.fixture
    def multi_db(self):
        database = Database()
        database.define_class("Tag", attributes=[AttributeDef("label", "String")])
        database.define_class(
            "Doc",
            attributes=[
                AttributeDef("title", "String"),
                AttributeDef("tags", "Tag", multi=True),
            ],
        )
        return database

    def test_contains_on_set_valued_is_clean(self, multi_db):
        tag = multi_db.new("Tag", {"label": "a"})
        multi_db.new("Doc", {"title": "t", "tags": [tag.oid]})
        report = multi_db.check("SELECT d FROM Doc d WHERE d.tags.label CONTAINS 'a'")
        assert report.ok and not report.warnings

    def test_contains_on_single_valued_warns(self, multi_db):
        report = multi_db.check("SELECT d FROM Doc d WHERE d.title CONTAINS 'a'")
        assert report.ok
        assert "ANA202" in report.codes()

    def test_order_by_set_valued_warns(self, multi_db):
        report = multi_db.check(
            "SELECT d FROM Doc d WHERE d.title = 't' ORDER BY d.tags.label"
        )
        assert "ANA402" in report.codes()


class TestMethodChecks:
    def test_unknown_method_with_suggestion(self, shape_db):
        report = shape_db.check("SELECT s FROM Shape s WHERE s.dispaly() = 'x'")
        [diag] = report.errors
        assert diag.code == "ANA301"
        assert "display" in diag.message

    def test_bad_arity(self, shape_db):
        report = shape_db.check("SELECT s FROM Shape s WHERE s.area(1, 2) > 0")
        assert "ANA302" in report.codes()

    def test_good_call_is_clean(self, shape_db):
        assert shape_db.check("SELECT s FROM Shape s WHERE s.area() > 0").ok

    @pytest.fixture
    def partial_db(self):
        """``diagonal`` exists only on the Disc subclass."""
        database = Database()
        database.define_class("Figure", attributes=[AttributeDef("name", "String")])

        def diagonal(receiver):
            return 1

        database.define_class(
            "Disc",
            superclasses=("Figure",),
            methods=[MethodDef("diagonal", diagonal)],
        )
        return database

    def test_partial_coverage_warns_in_hierarchy_scope(self, partial_db):
        report = partial_db.check("SELECT f FROM Figure f WHERE f.diagonal() > 0")
        assert report.ok
        assert "ANA303" in report.codes()

    def test_only_scope_turns_partial_into_error(self, partial_db):
        # ONLY Figure: Disc's method is out of scope entirely
        report = partial_db.check("SELECT f FROM ONLY Figure f WHERE f.diagonal() > 0")
        assert "ANA301" in report.codes()
        # ONLY Disc: fully covered, no diagnostics
        assert partial_db.check("SELECT f FROM ONLY Disc f WHERE f.diagonal() > 0").ok


class TestPruningFacts:
    @pytest.fixture
    def redefined_db(self):
        database = Database()
        database.define_class("Item", attributes=[AttributeDef("tag", "Integer")])
        database.define_class(
            "OddItem", superclasses=["Item"], attributes=[AttributeDef("tag", "String")]
        )
        database.new("Item", {"tag": 5})
        database.new("OddItem", {"tag": "x"})
        return database

    def test_incompatible_redefinition_prunes_subclass(self, redefined_db):
        report = redefined_db.check("SELECT i FROM Item i WHERE i.tag > 3")
        assert report.ok
        assert report.pruned_classes == ["OddItem"]
        assert "ANA501" in report.codes()

    def test_plan_scope_shrinks(self, redefined_db):
        plan = redefined_db.plan("SELECT i FROM Item i WHERE i.tag > 3")
        assert sorted(plan.scope) == ["Item"]
        assert any("pruned" in note for note in plan.notes)

    def test_results_unchanged_by_pruning(self, redefined_db):
        rows = redefined_db.execute("SELECT i FROM Item i WHERE i.tag > 3")
        assert len(rows) == 1

    def test_only_scope_never_prunes(self, redefined_db):
        report = redefined_db.check("SELECT i FROM ONLY OddItem i WHERE i.tag = 'x'")
        assert report.ok and not report.pruned_classes

    def test_explain_surfaces_analysis(self, redefined_db):
        rendered = redefined_db.explain("SELECT i FROM Item i WHERE i.tag > 3").render()
        assert "-- analysis --" in rendered and "ANA501" in rendered


class TestSyntaxErrorSpans:
    def test_caret_points_at_offender(self, populated_db):
        query = "SELECT v FROM Vehicle v WHERE v.weight >"
        with pytest.raises(QuerySyntaxError) as excinfo:
            populated_db.execute(query)
        message = str(excinfo.value)
        assert "position" in message
        assert "line 1, column 41" in message
        assert message.splitlines()[-1].strip() == "^"

    def test_error_carries_offsets(self):
        from repro.query.parser import parse_query

        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_query("SELECT v FROM Vehicle v WHERE ?")
        assert excinfo.value.pos == 30
        assert excinfo.value.line == 1 and excinfo.value.column == 31


class TestDiagnosticReport:
    def test_truthiness_and_severities(self):
        report = DiagnosticReport("q")
        assert report.ok and bool(report)
        report.info("ANA501", "fyi")
        report.warning("ANA202", "hm")
        assert report.ok
        report.error("ANA101", "bad")
        assert not report.ok and not bool(report)
        assert [d.severity for d in report] == [INFO, WARNING, ERROR]

    def test_to_dict_round_trip(self):
        report = DiagnosticReport("q")
        report.error("ANA101", "bad", SourceSpan(2, 5))
        data = report.to_dict()
        assert data["ok"] is False
        assert data["diagnostics"][0]["span"] == [2, 5]


# ---------------------------------------------------------------------------
# engine lint rules
# ---------------------------------------------------------------------------


LATTICE = {"_low": 10, "_high": 20}


def lint(source, subpackage="txn", **config):
    config.setdefault("lock_lattice", LATTICE)
    return Linter(LintConfig(**config)).lint_source(source, "fixture.py", subpackage)


class TestLockOrderRule:
    BAD = """
import threading
class T:
    def __init__(self):
        self._low = threading.Lock()
        self._high = threading.Lock()
    def bad(self):
        with self._high:
            with self._low:
                pass
"""

    GOOD = """
import threading
class T:
    def __init__(self):
        self._low = threading.Lock()
        self._high = threading.Lock()
    def good(self):
        with self._low:
            with self._high:
                pass
"""

    def test_fires_on_decreasing_acquisition(self):
        violations = lint(self.BAD)
        assert [v.rule for v in violations] == ["lock-order"]
        assert "_low" in violations[0].message and "_high" in violations[0].message

    def test_quiet_on_increasing_acquisition(self):
        assert lint(self.GOOD) == []

    def test_same_level_nesting_fires(self):
        source = self.BAD.replace("with self._low:", "with self._high:")
        # re-acquiring the same level while held is also a violation
        assert [v.rule for v in lint(source)] == ["lock-order"]

    def test_undeclared_lock(self):
        source = """
import threading
class T:
    def __init__(self):
        self._mystery = threading.RLock()
"""
        assert [v.rule for v in lint(source)] == ["undeclared-lock"]

    def test_multi_item_with_statement(self):
        source = """
import threading
class T:
    def __init__(self):
        self._low = threading.Lock()
        self._high = threading.Lock()
    def bad(self):
        with self._high, self._low:
            pass
"""
        assert [v.rule for v in lint(source)] == ["lock-order"]


class TestResourceRule:
    def test_span_outside_with_fires(self):
        source = """
def f(tracer):
    s = tracer.span("x")
    return s
"""
        assert [v.rule for v in lint(source)] == ["unreleased-resource"]

    def test_span_inside_with_is_clean(self):
        source = """
def f(tracer):
    with tracer.span("x"):
        pass
"""
        assert lint(source) == []

    def test_stdlib_time_time_not_flagged_as_resource(self):
        # time.time() is not a histogram timer: the resource rule stays
        # quiet; only the wall-clock rule fires.
        source = """
import time
def f():
    return time.time()
"""
        assert [v.rule for v in lint(source)] == ["wall-clock-duration"]

    def test_begin_without_commit_fires(self):
        source = """
def f(mgr):
    txn = mgr.begin()
    txn.put("k", 1)
"""
        violations = lint(source)
        assert [v.rule for v in violations] == ["unreleased-resource"]
        assert "begin" in violations[0].message

    def test_begin_with_commit_or_abort_is_clean(self):
        source = """
def f(mgr):
    txn = mgr.begin()
    try:
        txn.commit()
    except ValueError:
        txn.abort()
"""
        assert lint(source) == []

    def test_begin_escaping_via_return_is_clean(self):
        source = """
def f(mgr):
    txn = mgr.begin()
    return txn
"""
        assert lint(source) == []


class TestPrivacyRule:
    def test_private_import_across_subpackages_fires(self):
        source = "from ..storage.pager import _page_bytes\n"
        violations = lint(source, subpackage="txn")
        assert [v.rule for v in violations] == ["private-access"]

    def test_private_attribute_across_subpackages_fires(self):
        source = """
from ..storage.buffer import pool

def f():
    return pool._frames
"""
        assert [v.rule for v in lint(source, subpackage="txn")] == ["private-access"]

    def test_same_subpackage_private_use_is_fine(self):
        source = """
from .locks import _order

def f():
    return _order
"""
        assert lint(source, subpackage="txn") == []

    def test_public_cross_package_import_is_fine(self):
        source = "from ..storage.buffer import BufferPool\n"
        assert lint(source, subpackage="txn") == []


class TestNestedPrivacyDomain:
    """repro.query.operators is a privacy domain of its own."""

    def test_subpackage_of_resolves_nested_domain(self):
        from repro.analysis.lint import _subpackage_of

        assert (
            _subpackage_of("src/repro/query/operators/base.py", None)
            == "query.operators"
        )
        assert _subpackage_of("src/repro/query/algebra.py", None) == "query"
        assert _subpackage_of("src/repro/database.py", None) == ""

    def test_parent_package_private_import_fires(self):
        source = "from ..algebra import _fold\n"
        violations = lint(source, subpackage="query.operators")
        assert [v.rule for v in violations] == ["private-access"]

    def test_nested_domain_internal_private_import_is_fine(self):
        source = "from .base import _chain\n"
        assert lint(source, subpackage="query.operators") == []

    def test_absolute_private_import_into_nested_domain_fires(self):
        source = "from repro.query.operators.base import _chain\n"
        violations = lint(source, subpackage="obs")
        assert [v.rule for v in violations] == ["private-access"]
        assert "query.operators" in violations[0].message


class TestAsyncBlockingRule:
    """Blocking engine calls in repro.server coroutines stall the loop."""

    def test_direct_db_call_in_coroutine_fires(self):
        source = """
class Session:
    async def handle(self, text):
        return self.db.query(text)
"""
        violations = lint(source, subpackage="server")
        assert [v.rule for v in violations] == ["async-blocking-call"]
        assert ".db.query()" in violations[0].message

    def test_executor_dispatch_is_clean(self):
        source = """
import asyncio

class Session:
    async def handle(self, text):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.pool, self.run_query, text)
"""
        assert lint(source, subpackage="server") == []

    def test_open_and_acquire_in_coroutine_fire(self):
        source = """
class Session:
    async def dump(self, path):
        self._lock.acquire()
        with open(path) as handle:
            return handle.read()
"""
        rules = [v.rule for v in lint(source, subpackage="server")]
        assert rules == ["async-blocking-call", "async-blocking-call"]

    def test_sync_lock_with_in_coroutine_fires(self):
        source = """
import threading

class Session:
    def __init__(self):
        self._low = threading.Lock()
    async def handle(self):
        with self._low:
            pass
"""
        violations = lint(source, subpackage="server")
        assert "async-blocking-call" in [v.rule for v in violations]

    def test_nested_sync_helper_is_exempt(self):
        # The nested def runs on the executor thread, not the loop.
        source = """
class Session:
    async def handle(self, text):
        def work():
            return self.db.query(text)
        return await self.dispatch(work)
"""
        assert lint(source, subpackage="server") == []

    def test_rule_only_runs_in_server_subpackage(self):
        source = """
class Worker:
    async def tick(self):
        return self.db.query("SysStat")
"""
        assert lint(source, subpackage="txn") == []

    def test_parent_reaching_into_nested_domain_privates_fires(self):
        source = "from .operators.base import _chain\n"
        violations = lint(source, subpackage="query")
        assert [v.rule for v in violations] == ["private-access"]


class TestOperatorMaterializationRule:
    def test_fires_inside_operators_package(self):
        source = "def drain(rows):\n    return list(rows)\n"
        violations = lint(source, subpackage="query.operators")
        assert [v.rule for v in violations] == ["operator-materialization"]
        assert "materializes" in violations[0].message

    def test_silent_outside_operators_package(self):
        source = "def drain(rows):\n    return list(rows)\n"
        assert lint(source, subpackage="query") == []

    def test_pragma_marks_deliberate_pipeline_breaker(self):
        source = (
            "def drain(rows):\n"
            "    return list(rows)  # lint: ignore[operator-materialization]\n"
        )
        assert lint(source, subpackage="query.operators") == []


class TestSimpleRules:
    def test_mutable_default(self):
        assert [v.rule for v in lint("def f(x=[]):\n    pass\n")] == ["mutable-default"]
        assert [v.rule for v in lint("def f(x=dict()):\n    pass\n")] == [
            "mutable-default"
        ]
        assert lint("def f(x=None):\n    pass\n") == []

    def test_bare_except(self):
        source = """
def f():
    try:
        pass
    except:
        pass
"""
        assert [v.rule for v in lint(source)] == ["bare-except"]
        assert lint(source.replace("except:", "except ValueError:")) == []

    def test_pragma_silences_one_rule(self):
        source = "def f(x=[]):  # lint: ignore[mutable-default]\n    pass\n"
        assert lint(source) == []

    def test_pragma_blanket(self):
        source = "def f(x=[]):  # lint: ignore\n    pass\n"
        assert lint(source) == []

    def test_pragma_for_other_rule_does_not_silence(self):
        source = "def f(x=[]):  # lint: ignore[bare-except]\n    pass\n"
        assert [v.rule for v in lint(source)] == ["mutable-default"]


class TestWallClockRule:
    def test_time_time_flagged(self):
        source = """
import time
def f():
    started = time.time()
    return time.time() - started
"""
        violations = lint(source)
        assert [v.rule for v in violations] == ["wall-clock-duration"] * 2
        assert "perf_counter" in violations[0].message

    def test_perf_counter_and_monotonic_clean(self):
        source = """
import time
def f():
    return time.perf_counter() + time.monotonic()
"""
        assert lint(source) == []

    def test_pragma_marks_genuine_timestamp(self):
        source = """
import time
def f():
    return {"generated_at": time.time()}  # lint: ignore[wall-clock-duration]
"""
        assert lint(source) == []

    def test_other_modules_time_attribute_not_flagged(self):
        # Only the stdlib wall clock is the hazard; foo.time() is not
        # (though the resource rule may still see an unentered timer).
        source = """
def f(stopwatch):
    return stopwatch.time()
"""
        assert "wall-clock-duration" not in [v.rule for v in lint(source)]


class TestLintGate:
    def test_engine_source_is_clean(self):
        assert lint_paths([SRC_REPRO], engine_config()) == []

    def test_engine_lattice_covers_discovered_locks(self):
        config = engine_config()
        assert {"_id_mutex", "_mutex", "_condition"} <= set(config.lock_lattice)

    def test_server_mutexes_rank_below_every_engine_latch(self):
        # The session mutex is held across whole engine calls, so the
        # lattice must place it (and its registry/pool cousins) below
        # the engine's own latches.
        lattice = engine_config().lock_lattice
        server_locks = {"_session_mutex", "_sessions_mutex", "_pool_mutex"}
        assert server_locks <= set(lattice)
        ceiling = max(lattice[name] for name in server_locks)
        engine_floor = min(
            level for name, level in lattice.items() if name not in server_locks
        )
        assert ceiling < engine_floor

    def test_cli_strict_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x=None):\n    return x\n")
        assert lint_main([str(clean), "--strict"]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(x=[]):\n    return x\n")
        assert lint_main([str(dirty), "--strict"]) == 1
        assert lint_main([str(dirty)]) == 0  # non-strict reports but passes
        out = capsys.readouterr().out
        assert "mutable-default" in out

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules", "ignored"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out

    def test_cli_single_rule_filter(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(x=[]):\n    pass\n")
        assert lint_main([str(dirty), "--strict", "--rule", "bare-except"]) == 0
        assert lint_main([str(dirty), "--strict", "--rule", "mutable-default"]) == 1
