"""Schema: class definition, hierarchy, inheritance resolution."""

import pytest

from repro.core.attribute import AttributeDef
from repro.core.method import MethodDef
from repro.core.schema import Schema
from repro.errors import (
    AttributeNotFoundError,
    ClassNotFoundError,
    DuplicateClassError,
    InheritanceConflictError,
    MethodNotFoundError,
    SchemaError,
)


@pytest.fixture
def schema():
    return Schema()


class TestDefinition:
    def test_builtins_present(self, schema):
        for name in ("Object", "Any", "Integer", "Float", "String", "Boolean", "Bytes"):
            assert schema.has_class(name)

    def test_define_simple_class(self, schema):
        schema.define_class("Vehicle", attributes=[AttributeDef("weight", "Integer")])
        assert schema.has_class("Vehicle")
        assert schema.get_class("Vehicle").superclasses == ["Object"]

    def test_duplicate_class_rejected(self, schema):
        schema.define_class("A")
        with pytest.raises(DuplicateClassError):
            schema.define_class("A")

    def test_unknown_superclass_rejected(self, schema):
        with pytest.raises(ClassNotFoundError):
            schema.define_class("A", superclasses=("Ghost",))

    def test_cannot_subclass_primitive(self, schema):
        with pytest.raises(SchemaError):
            schema.define_class("FancyInt", superclasses=("Integer",))

    def test_empty_superclasses_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.define_class("A", superclasses=())

    def test_invalid_class_name(self, schema):
        with pytest.raises(SchemaError):
            schema.define_class("not a name")

    def test_duplicate_superclasses_deduped(self, schema):
        schema.define_class("A")
        cls = schema.define_class("B", superclasses=("A", "A"))
        assert cls.superclasses == ["A"]

    def test_user_classes_excludes_builtins(self, schema):
        schema.define_class("A")
        names = [c.name for c in schema.user_classes()]
        assert names == ["A"]


class TestHierarchy:
    @pytest.fixture
    def diamond(self, schema):
        schema.define_class("A", attributes=[AttributeDef("x", "Integer")])
        schema.define_class("B", superclasses=("A",), attributes=[AttributeDef("y", "Integer")])
        schema.define_class("C", superclasses=("A",), attributes=[AttributeDef("z", "Integer")])
        schema.define_class("D", superclasses=("B", "C"))
        return schema

    def test_mro_linear(self, diamond):
        assert diamond.mro("B") == ["B", "A", "Object"]

    def test_mro_diamond(self, diamond):
        assert diamond.mro("D") == ["D", "B", "C", "A", "Object"]

    def test_is_subclass(self, diamond):
        assert diamond.is_subclass("D", "A")
        assert diamond.is_subclass("D", "D")
        assert not diamond.is_subclass("A", "D")

    def test_any_is_universal_ancestor(self, diamond):
        assert diamond.is_subclass("D", "Any")

    def test_subclasses_transitive(self, diamond):
        assert diamond.subclasses("A") == ["B", "C", "D"]

    def test_direct_subclasses(self, diamond):
        assert diamond.direct_subclasses("A") == ["B", "C"]

    def test_hierarchy_of(self, diamond):
        assert diamond.hierarchy_of("A") == ["A", "B", "C", "D"]
        assert diamond.hierarchy_of("D") == ["D"]

    def test_superclasses(self, diamond):
        assert diamond.superclasses("D") == ["B", "C", "A", "Object"]
        assert diamond.superclasses("D", transitive=False) == ["B", "C"]

    def test_unknown_class_raises(self, schema):
        with pytest.raises(ClassNotFoundError):
            schema.mro("Nope")

    def test_inconsistent_diamond_rejected_at_definition(self, schema):
        # Local precedence order conflict: E says (B, C), F says (C, B),
        # G cannot linearize both.
        schema.define_class("B")
        schema.define_class("C")
        schema.define_class("E", superclasses=("B", "C"))
        schema.define_class("F", superclasses=("C", "B"))
        with pytest.raises(InheritanceConflictError):
            schema.define_class("G", superclasses=("E", "F"))
        # The failed definition must not leave a half-registered class.
        assert not schema.has_class("G")


class TestInheritedMembers:
    @pytest.fixture
    def shapes(self, schema):
        schema.define_class(
            "Shape",
            attributes=[
                AttributeDef("center", "String"),
                AttributeDef("bbox", "String"),
            ],
            methods=[MethodDef("display", lambda recv: "shape")],
        )
        schema.define_class(
            "Triangle",
            superclasses=("Shape",),
            attributes=[AttributeDef("vertices", "String")],
            methods=[MethodDef("display", lambda recv: "triangle")],
        )
        return schema

    def test_attributes_inherited(self, shapes):
        attrs = shapes.attributes("Triangle")
        assert set(attrs) == {"center", "bbox", "vertices"}

    def test_attribute_provenance(self, shapes):
        assert shapes.attribute("Triangle", "center").defined_in == "Shape"
        assert shapes.attribute("Triangle", "vertices").defined_in == "Triangle"

    def test_method_redefinition_shadows(self, shapes):
        meth = shapes.resolve_method("Triangle", "display")
        assert meth.invoke(None) == "triangle"

    def test_method_inherited(self, shapes):
        shapes.define_class("Circle", superclasses=("Shape",))
        assert shapes.resolve_method("Circle", "display").invoke(None) == "shape"

    def test_resolve_method_above(self, shapes):
        meth = shapes.resolve_method_above("Triangle", "display", "Triangle")
        assert meth.invoke(None) == "shape"

    def test_missing_method_raises(self, shapes):
        with pytest.raises(MethodNotFoundError):
            shapes.resolve_method("Shape", "rotate")

    def test_missing_attribute_raises(self, shapes):
        with pytest.raises(AttributeNotFoundError):
            shapes.attribute("Shape", "ghost")

    def test_attribute_redefinition_narrows(self, schema):
        schema.define_class("Company")
        schema.define_class("AutoCompany", superclasses=("Company",))
        schema.define_class(
            "Vehicle", attributes=[AttributeDef("manufacturer", "Company")]
        )
        schema.define_class(
            "Automobile",
            superclasses=("Vehicle",),
            attributes=[AttributeDef("manufacturer", "AutoCompany")],
        )
        assert schema.attribute("Automobile", "manufacturer").domain == "AutoCompany"
        assert schema.attribute("Vehicle", "manufacturer").domain == "Company"


class TestDynamicExtension:
    def test_new_subclass_after_the_fact(self, schema):
        schema.define_class("A", attributes=[AttributeDef("x", "Integer")])
        before = schema.version
        schema.define_class("B", superclasses=("A",))
        assert schema.version > before
        assert "x" in schema.attributes("B")

    def test_change_listener_fires(self, schema):
        events = []
        schema.on_change(events.append)
        schema.define_class("A")
        assert events == ["A"]

    def test_caches_invalidated_on_definition(self, schema):
        schema.define_class("A")
        assert schema.hierarchy_of("A") == ["A"]
        schema.define_class("B", superclasses=("A",))
        assert schema.hierarchy_of("A") == ["A", "B"]


class TestCatalogRoundtrip:
    def test_to_from_dict(self, schema):
        schema.define_class(
            "Company",
            attributes=[
                AttributeDef("name", "String", required=True),
                AttributeDef("tags", "String", multi=True),
            ],
        )
        schema.define_class("AutoCompany", superclasses=("Company",))
        schema.define_class(
            "Vehicle",
            attributes=[
                AttributeDef("maker", "Company"),
                AttributeDef(
                    "engine", "Any", composite=True, exclusive=True, dependent=True
                ),
            ],
            abstract=False,
        )
        rebuilt = Schema.from_dict(schema.to_dict())
        assert rebuilt.mro("AutoCompany") == ["AutoCompany", "Company", "Object"]
        attr = rebuilt.attribute("Vehicle", "engine")
        assert attr.composite and attr.exclusive and attr.dependent
        assert rebuilt.attribute("Company", "tags").multi

    def test_from_dict_order_independent(self, schema):
        schema.define_class("A")
        schema.define_class("B", superclasses=("A",))
        data = schema.to_dict()
        data["classes"].reverse()  # B before A
        rebuilt = Schema.from_dict(data)
        assert rebuilt.is_subclass("B", "A")

    def test_methods_rebound_after_load(self, schema):
        schema.define_class("A", methods=[MethodDef("ping", lambda recv: "pong")])
        rebuilt = Schema.from_dict(schema.to_dict())
        with pytest.raises(MethodNotFoundError):
            rebuilt.resolve_method("A", "ping")
        rebuilt.bind_methods("A", [MethodDef("ping", lambda recv: "pong")])
        assert rebuilt.resolve_method("A", "ping").invoke(None) == "pong"
