"""Mandatory multilevel security [THUR89]."""

import pytest

from repro import AttributeDef, Database
from repro.authz import attach, attach_mandatory
from repro.errors import AuthorizationError


@pytest.fixture
def mdb():
    db = Database()
    mac = attach_mandatory(db)
    db.define_class("Report", attributes=[
        AttributeDef("title", "String"), AttributeDef("body", "String"),
    ])
    db.define_class("IntelReport", superclasses=("Report",))
    mac.classify_class("Report", "confidential")
    mac.classify_class("IntelReport", "secret")
    mac.clear_subject("private", "unclassified")
    mac.clear_subject("analyst", "confidential")
    mac.clear_subject("chief", "top_secret")
    return db


class TestConfiguration:
    def test_unknown_level_rejected(self, mdb):
        with pytest.raises(AuthorizationError):
            mdb.mac.classify_class("Report", "ultraviolet")

    def test_unknown_subject_rejected(self, mdb):
        with pytest.raises(AuthorizationError):
            mdb.mac.set_subject("stranger")

    def test_too_few_levels_rejected(self):
        with pytest.raises(AuthorizationError):
            attach_mandatory(Database(), levels=("only",))

    def test_classification_defaults_along_mro(self, mdb):
        assert mdb.mac.classification_of("Report") == "confidential"
        assert mdb.mac.classification_of("IntelReport") == "secret"
        mdb.define_class("FieldReport", superclasses=("IntelReport",))
        assert mdb.mac.classification_of("FieldReport") == "secret"

    def test_unclassified_default(self, mdb):
        mdb.define_class("Memo")
        assert mdb.mac.classification_of("Memo") == "unclassified"


class TestSimpleSecurity:
    def test_no_read_up(self, mdb):
        report = mdb.new("Report", {"title": "t"})
        mdb.mac.set_subject("private")
        with pytest.raises(AuthorizationError):
            mdb.get_state(report.oid)

    def test_read_at_level(self, mdb):
        report = mdb.new("Report", {"title": "t"})
        mdb.mac.set_subject("analyst")
        assert mdb.get_state(report.oid).values["title"] == "t"

    def test_read_down_allowed(self, mdb):
        report = mdb.new("Report", {"title": "t"})
        mdb.mac.set_subject("chief")
        assert mdb.get_state(report.oid).values["title"] == "t"

    def test_object_override_beats_class_default(self, mdb):
        report = mdb.new("Report", {"title": "t"})
        mdb.mac.classify_object(report.oid, "top_secret")
        mdb.mac.set_subject("analyst")
        with pytest.raises(AuthorizationError):
            mdb.get_state(report.oid)


class TestStarProperty:
    def test_no_write_down(self, mdb):
        report = mdb.new("Report", {"title": "t"})  # confidential
        mdb.mac.set_subject("chief")  # top_secret
        with pytest.raises(AuthorizationError):
            mdb.update(report.oid, {"body": "leak"})

    def test_write_up_and_at_level_allowed(self, mdb):
        mdb.mac.set_subject("analyst")
        report = mdb.new("Report", {"title": "mine"})  # at level: ok
        mdb.update(report.oid, {"body": "more"})
        intel = mdb.new("IntelReport", {"title": "up"})  # write up: ok
        assert mdb.exists(intel.oid)

    def test_create_below_clearance_rejected(self, mdb):
        mdb.define_class("Memo")  # unclassified
        mdb.mac.set_subject("analyst")
        with pytest.raises(AuthorizationError):
            mdb.new("Memo")

    def test_delete_follows_star_property(self, mdb):
        report = mdb.new("Report", {"title": "t"})
        mdb.mac.set_subject("chief")
        with pytest.raises(AuthorizationError):
            mdb.delete(report.oid)


class TestQueryFiltering:
    def test_results_filtered_not_denied(self, mdb):
        mdb.new("Report", {"title": "conf"})
        mdb.new("IntelReport", {"title": "secret"})
        mdb.mac.set_subject("analyst")
        result = mdb.select("SELECT r FROM Report r")
        titles = {h["title"] for h in result}
        assert titles == {"conf"}  # the secret one silently vanishes

    def test_chief_sees_everything(self, mdb):
        mdb.new("Report", {"title": "conf"})
        mdb.new("IntelReport", {"title": "secret"})
        mdb.mac.set_subject("chief")
        assert len(mdb.select("SELECT r FROM Report r")) == 2

    def test_private_sees_nothing(self, mdb):
        mdb.new("Report", {"title": "conf"})
        mdb.mac.set_subject("private")
        assert mdb.select("SELECT r FROM Report r") == []

    def test_as_subject_context(self, mdb):
        mdb.new("Report", {"title": "conf"})
        with mdb.mac.as_subject("private"):
            assert mdb.select("SELECT r FROM Report r") == []
        assert len(mdb.select("SELECT r FROM Report r")) == 1  # MAC off again


class TestComposedWithDiscretionary:
    def test_mac_overrides_discretionary_grant(self, mdb):
        authz = attach(mdb)
        authz.add_role("analyst_role")
        authz.grant("analyst_role", "read", "Report")
        mdb.new("Report", {"title": "conf"})
        mdb.new("IntelReport", {"title": "secret"})
        authz.set_subject("analyst_role")
        mdb.mac.set_subject("analyst")
        # Discretionary grant covers both classes; MAC still strips the
        # secret instance.
        titles = {h["title"] for h in mdb.select("SELECT r FROM Report r")}
        assert titles == {"conf"}
