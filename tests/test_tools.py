"""Database tools: schema browser and index advisor (Section 5.1)."""

import pytest

from repro import Database
from repro.bench.schemas import build_vehicle_schema, populate_vehicles
from repro.tools import (
    IndexAdvisor,
    aggregation_graph,
    catalog_report,
    class_tree,
    describe_class,
)
from repro.views import attach as attach_views


@pytest.fixture
def tdb():
    db = Database()
    attach_views(db)
    build_vehicle_schema(db)
    populate_vehicles(db, n_vehicles=80, n_companies=8, seed=4)
    return db


class TestBrowser:
    def test_class_tree_structure(self, tdb):
        tree = class_tree(tdb)
        lines = tree.splitlines()
        assert lines[0].startswith("Object")
        vehicle_line = next(l for l in lines if l.strip().startswith("Vehicle"))
        truck_line = next(l for l in lines if l.strip().startswith("Truck"))
        # Truck is indented one level deeper than Vehicle.
        assert (len(truck_line) - len(truck_line.lstrip())) > (
            len(vehicle_line) - len(vehicle_line.lstrip())
        )

    def test_class_tree_shows_extents(self, tdb):
        assert "(20)" in class_tree(tdb)  # each vehicle class has 20 direct

    def test_class_tree_subtree(self, tdb):
        tree = class_tree(tdb, root="Vehicle")
        assert "Company" not in tree
        assert "Truck" in tree

    def test_multiple_inheritance_marked(self, tdb):
        tdb.define_class("Amphibian", superclasses=("Automobile", "Truck"))
        tree = class_tree(tdb)
        assert tree.count("Amphibian") == 2
        assert "Amphibian *" in tree

    def test_describe_class_provenance(self, tdb):
        text = describe_class(tdb, "Truck")
        assert "payload" in text
        assert "[from Vehicle]" in text
        assert "mro: Truck -> Vehicle -> Object" in text

    def test_describe_composite_flags(self, tdb):
        text = describe_class(tdb, "Vehicle")
        assert "composite(exclusive, dependent)" in text

    def test_describe_lists_indexes(self, tdb):
        tdb.create_hierarchy_index("Vehicle", "weight")
        assert "ch_Vehicle_weight" in describe_class(tdb, "Truck")

    def test_aggregation_graph_cycles_cut(self, tdb):
        tdb.define_class("Node2")
        from repro import AttributeDef
        from repro.evolution import SchemaEvolution

        SchemaEvolution(tdb).add_attribute("Node2", AttributeDef("next", "Node2"))
        graph = aggregation_graph(tdb, "Node2")
        assert "(cycle)" in graph

    def test_aggregation_graph_vehicle(self, tdb):
        graph = aggregation_graph(tdb, "Vehicle")
        assert "Vehicle.manufacturer -> Company" in graph
        assert "Vehicle.drivetrain -> VehicleDrivetrain" in graph

    def test_catalog_report(self, tdb):
        tdb.create_hierarchy_index("Vehicle", "weight")
        tdb.views.define_view("Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500")
        report = catalog_report(tdb)
        assert "ch_Vehicle_weight" in report
        assert "Heavy" in report
        assert "objects:" in report


class TestAdvisor:
    def test_recommends_hierarchy_index(self, tdb):
        advisor = IndexAdvisor(tdb)
        for _ in range(3):
            advisor.observe("SELECT v FROM Vehicle v WHERE v.weight > 7500")
        recs = advisor.recommend()
        assert len(recs) == 1
        assert recs[0].kind == "class-hierarchy"
        assert recs[0].path == ("weight",)

    def test_recommends_nested_index_for_paths(self, tdb):
        advisor = IndexAdvisor(tdb)
        for _ in range(2):
            advisor.observe(
                "SELECT v FROM Vehicle v WHERE v.manufacturer.location = 'Detroit'"
            )
        recs = advisor.recommend()
        assert recs[0].kind == "nested-attribute"
        assert recs[0].path == ("manufacturer", "location")

    def test_recommends_single_class_for_only_scope(self, tdb):
        advisor = IndexAdvisor(tdb)
        for _ in range(2):
            advisor.observe("SELECT v FROM ONLY Vehicle v WHERE v.color = 'red'")
        recs = advisor.recommend()
        assert recs[0].kind == "single-class"

    def test_existing_index_suppresses_recommendation(self, tdb):
        tdb.create_hierarchy_index("Vehicle", "weight")
        advisor = IndexAdvisor(tdb)
        for _ in range(3):
            advisor.observe("SELECT v FROM Vehicle v WHERE v.weight > 7500")
        assert advisor.recommend() == []

    def test_min_hits_threshold(self, tdb):
        advisor = IndexAdvisor(tdb)
        advisor.observe("SELECT v FROM Vehicle v WHERE v.weight > 7500")
        assert advisor.recommend(min_hits=2) == []
        assert len(advisor.recommend(min_hits=1)) == 1

    def test_unsargable_predicates_ignored(self, tdb):
        advisor = IndexAdvisor(tdb)
        for _ in range(3):
            advisor.observe("SELECT v FROM Vehicle v WHERE v.color LIKE 'r%'")
        assert advisor.recommend() == []

    def test_tiny_extents_ignored(self, tdb):
        tdb.define_class("Rare")
        from repro import AttributeDef
        from repro.evolution import SchemaEvolution

        SchemaEvolution(tdb).add_attribute("Rare", AttributeDef("n", "Integer"))
        advisor = IndexAdvisor(tdb)
        for _ in range(5):
            advisor.observe("SELECT r FROM Rare r WHERE r.n = 1")
        assert advisor.recommend() == []

    def test_apply_creates_usable_index(self, tdb):
        advisor = IndexAdvisor(tdb)
        for _ in range(3):
            advisor.observe("SELECT v FROM Vehicle v WHERE v.weight = 5000")
        recs = advisor.recommend()
        index = recs[0].apply(tdb)
        plan = tdb.plan("SELECT v FROM Vehicle v WHERE v.weight = 5000")
        assert index.name in plan.access.description

    def test_view_queries_observed_through_rewrite(self, tdb):
        tdb.views.define_view("Heavy", "SELECT v FROM Vehicle v WHERE v.weight > 7500")
        advisor = IndexAdvisor(tdb)
        for _ in range(3):
            advisor.observe("SELECT h FROM Heavy h WHERE h.color = 'red'")
        paths = {rec.path for rec in advisor.recommend()}
        assert ("weight",) in paths or ("color",) in paths

    def test_report_text(self, tdb):
        advisor = IndexAdvisor(tdb)
        assert "no index recommendations" in advisor.report()
        for _ in range(3):
            advisor.observe("SELECT v FROM Vehicle v WHERE v.weight > 7500")
        assert "create_hierarchy_index" in advisor.report()
