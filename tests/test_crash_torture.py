"""Crash-recovery torture: random workloads, random crash points.

For many random operation sequences, the database is "crashed" (files
closed without checkpoint, possibly with stolen dirty pages) and
recovered; the surviving state must equal exactly the state produced by
the committed transactions — nothing more, nothing less.
"""

import random

import pytest

from repro import AttributeDef, Database


def run_workload(db, rng, n_txns, record):
    """Random inserts/updates/deletes across committed/aborted txns.

    ``record`` is a dict mirroring what the committed state should be:
    oid -> value or absence.
    """
    live = list(record)
    for _ in range(n_txns):
        commit = rng.random() < 0.7
        txn = db.transaction()
        local = {}
        local_deletes = set()
        for _ in range(rng.randrange(1, 6)):
            action = rng.random()
            if action < 0.5 or not live:
                handle = db.new("Item", {"n": rng.randrange(1000)})
                local[handle.oid] = handle["n"]
            elif action < 0.8:
                oid = rng.choice(live)
                if oid in local_deletes or not db.exists(oid):
                    continue
                value = rng.randrange(1000)
                db.update(oid, {"n": value})
                local[oid] = value
            else:
                oid = rng.choice(live)
                if oid in local_deletes or not db.exists(oid):
                    continue
                db.delete(oid)
                local_deletes.add(oid)
                local.pop(oid, None)
        if commit:
            txn.commit()
            record.update(local)
            for oid in local_deletes:
                record.pop(oid, None)
            live = list(record)
        else:
            txn.abort()
    return record


def crash(db):
    """Simulate a crash: flush whatever happens to be dirty, close files."""
    db.storage.buffer.flush_all()
    db.storage.save_metadata()
    db.storage.pager.close()
    db.wal.close()


def current_state(db):
    return {
        state.oid: state.values["n"] for state in db.storage.scan_class("Item")
    }


@pytest.mark.parametrize("seed", range(8))
def test_random_workload_recovers_exactly_committed_state(tmp_path, seed):
    path = str(tmp_path / ("torture-%d.pages" % seed))
    db = Database(path, sync_on_commit=False, buffer_capacity=8)
    db.define_class("Item", attributes=[AttributeDef("n", "Integer")])
    db.checkpoint()
    rng = random.Random(seed)
    expected = run_workload(db, rng, n_txns=25, record={})

    # Leave a final uncommitted transaction in flight at the crash.
    in_flight = db.transaction()
    db.new("Item", {"n": 424242})
    crash(db)
    del in_flight

    reopened = Database(path)
    assert current_state(reopened) == expected
    reopened.close()


@pytest.mark.parametrize("seed", range(4))
def test_crash_mid_run_with_intermediate_checkpoints(tmp_path, seed):
    path = str(tmp_path / ("ckpt-%d.pages" % seed))
    db = Database(path, sync_on_commit=False, buffer_capacity=8)
    db.define_class("Item", attributes=[AttributeDef("n", "Integer")])
    db.checkpoint()
    rng = random.Random(100 + seed)
    expected = {}
    for phase in range(3):
        expected = run_workload(db, rng, n_txns=10, record=expected)
        if phase < 2:
            db.checkpoint()  # truncates the WAL; pages now authoritative
    crash(db)

    reopened = Database(path)
    assert current_state(reopened) == expected
    # The recovered database is fully usable.
    reopened.new("Item", {"n": 1})
    assert reopened.count("Item") == len(expected) + 1
    reopened.close()


def test_double_crash_is_idempotent(tmp_path):
    path = str(tmp_path / "double.pages")
    db = Database(path, sync_on_commit=False)
    db.define_class("Item", attributes=[AttributeDef("n", "Integer")])
    db.checkpoint()
    rng = random.Random(7)
    expected = run_workload(db, rng, n_txns=15, record={})
    crash(db)

    once = Database(path)
    assert current_state(once) == expected
    crash(once)  # crash again right after recovery, before checkpoint

    twice = Database(path)
    assert current_state(twice) == expected
    twice.close()
