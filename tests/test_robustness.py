"""Robustness fuzzing: malformed inputs fail cleanly, never crash."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, KimDBError
from repro.errors import QueryError, QuerySyntaxError, StorageError
from repro.lang import Interpreter
from repro.multidb.osql import translate_sql
from repro.query.parser import parse_query
from repro.storage.serializer import decode_object

query_alphabet = string.ascii_letters + string.digits + " .,'\"()[]<>=!*%_-"


class TestParserFuzz:
    @given(text=st.text(alphabet=query_alphabet, max_size=120))
    @settings(max_examples=300)
    def test_random_text_raises_query_errors_only(self, text):
        try:
            parse_query(text)
        except QueryError:
            pass  # QuerySyntaxError is a QueryError

    @given(text=st.text(max_size=60))
    @settings(max_examples=150)
    def test_arbitrary_unicode_never_crashes(self, text):
        try:
            parse_query("SELECT v FROM Vehicle v WHERE v.name = '%s'" % text.replace("'", ""))
        except QueryError:
            pass

    @given(
        clauses=st.lists(
            st.sampled_from(
                ["WHERE", "ORDER BY", "LIMIT", "GROUP BY", "AND", "OR", "v.x = 1"]
            ),
            max_size=6,
        )
    )
    @settings(max_examples=150)
    def test_shuffled_clauses_raise_cleanly(self, clauses):
        text = "SELECT v FROM V v " + " ".join(clauses)
        try:
            parse_query(text)
        except QueryError:
            pass


class TestDlFuzz:
    @given(text=st.text(alphabet=query_alphabet, max_size=100))
    @settings(max_examples=200)
    def test_random_statements_fail_cleanly(self, text):
        db = Database()
        interpreter = Interpreter(db)
        try:
            interpreter.execute(text)
        except KimDBError:
            pass  # any library error is acceptable; crashes are not

    def test_empty_script_is_noop(self):
        assert Interpreter(Database()).run_script("  ;;  ; ") == []


class TestOsqlFuzz:
    @given(text=st.text(alphabet=query_alphabet, max_size=100))
    @settings(max_examples=200)
    def test_random_sql_raises_syntax_errors_only(self, text):
        try:
            translate_sql(text)
        except QuerySyntaxError:
            pass


class TestSerializerFuzz:
    @given(data=st.binary(max_size=200))
    @settings(max_examples=300)
    def test_random_bytes_never_crash_decoder(self, data):
        try:
            decode_object(data)
        except StorageError:
            pass

    @given(data=st.binary(min_size=8, max_size=200))
    @settings(max_examples=200)
    def test_truncated_valid_records_detected(self, data):
        from repro.core.obj import ObjectState
        from repro.core.oid import OID
        from repro.storage.serializer import encode_object

        record = encode_object(ObjectState(OID(1), "A", {"x": data}))
        for cut in (len(record) // 3, len(record) // 2, len(record) - 1):
            try:
                decoded = decode_object(record[:cut])
            except StorageError:
                continue
            # A truncated record that still decodes must not silently
            # invent the attribute payload.
            assert decoded.values.get("x") != data


class TestQueryErrorQuality:
    def test_messages_name_the_problem(self):
        db = Database()
        db.define_class("T")
        with pytest.raises(QueryError) as excinfo:
            db.select("SELECT t FROM T t WHERE t.ghost = 1")
        assert "ghost" in str(excinfo.value)
        with pytest.raises(Exception) as excinfo:
            db.select("SELECT t FROM Nope t")
        assert "Nope" in str(excinfo.value)

    def test_syntax_error_positions(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_query("SELECT v FROM Vehicle v WHERE v.x # 3")
        assert "position" in str(excinfo.value)
