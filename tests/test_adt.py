"""Abstract data types: registry, rectangle ops, spatial access method."""

import random

import pytest

from repro import AttributeDef, Database
from repro.adt import (
    attach,
    is_rect,
    make_rect,
    rect_area,
    rect_contains_point,
    rect_overlaps,
    rect_within,
    register_rectangle_type,
    register_spatial_index,
)
from repro.errors import SchemaError, TypeCheckError
from repro.query.planner import AdtIndexProbe, ExtentScan


@pytest.fixture
def sdb():
    db = Database()
    registry = attach(db)
    register_rectangle_type(registry)
    db.define_class(
        "Cell",
        attributes=[
            AttributeDef("layer", "Integer"),
            AttributeDef("shape", "Rectangle"),
        ],
    )
    return db


def populate_cells(db, count=300, seed=0, span=200):
    rng = random.Random(seed)
    for _ in range(count):
        x, y = rng.randrange(span), rng.randrange(span)
        db.new(
            "Cell",
            {
                "layer": rng.randrange(4),
                "shape": make_rect(x, y, x + rng.randrange(1, 8), y + rng.randrange(1, 8)),
            },
        )


class TestRectangleOps:
    def test_make_rect_normalizes(self):
        assert make_rect(5, 6, 1, 2) == [1.0, 2.0, 5.0, 6.0]

    def test_is_rect(self):
        assert is_rect([0.0, 0.0, 1.0, 1.0])
        assert not is_rect([1.0, 1.0, 0.0, 0.0])  # unnormalized
        assert not is_rect([0, 0, 1])
        assert not is_rect("rect")
        assert not is_rect([0, 0, 1, True])

    def test_overlaps(self):
        rect = make_rect(0, 0, 4, 4)
        assert rect_overlaps(rect, 2, 2, 6, 6)
        assert rect_overlaps(rect, 4, 4, 5, 5)  # touching counts
        assert not rect_overlaps(rect, 5, 5, 6, 6)

    def test_contains_point(self):
        rect = make_rect(0, 0, 4, 4)
        assert rect_contains_point(rect, 2, 2)
        assert not rect_contains_point(rect, 5, 2)

    def test_within(self):
        rect = make_rect(1, 1, 2, 2)
        assert rect_within(rect, 0, 0, 4, 4)
        assert not rect_within(rect, 0, 0, 1.5, 4)

    def test_area(self):
        assert rect_area(make_rect(0, 0, 3, 4)) == 12.0


class TestValueDomain:
    def test_rectangle_attribute_accepts_rect(self, sdb):
        cell = sdb.new("Cell", {"shape": make_rect(0, 0, 1, 1)})
        assert sdb.get(cell.oid)["shape"] == [0.0, 0.0, 1.0, 1.0]

    def test_rectangle_attribute_rejects_junk(self, sdb):
        with pytest.raises(TypeCheckError):
            sdb.new("Cell", {"shape": [3, 2, 1]})

    def test_duplicate_type_registration_rejected(self, sdb):
        with pytest.raises(SchemaError):
            sdb.adt.register_type("Rectangle", is_rect)

    def test_direct_operation_call(self, sdb):
        assert sdb.adt.call("overlaps", make_rect(0, 0, 2, 2), 1, 1, 3, 3)

    def test_unknown_operation_rejected(self, sdb):
        with pytest.raises(SchemaError):
            sdb.adt.call("teleports", make_rect(0, 0, 1, 1))


class TestAdtQueries:
    def test_predicate_without_index_scans(self, sdb):
        populate_cells(sdb, 50)
        query = "SELECT c FROM Cell c WHERE overlaps(c.shape, [0, 0, 50, 50])"
        plan = sdb.plan(query)
        assert isinstance(plan.access, ExtentScan)
        results = sdb.select(query)
        for handle in results:
            assert rect_overlaps(handle["shape"], 0, 0, 50, 50)

    def test_results_match_brute_force(self, sdb):
        populate_cells(sdb, 200)
        query = "SELECT c FROM Cell c WHERE overlaps(c.shape, [10, 10, 40, 40])"
        no_index = {h.oid for h in sdb.select(query)}
        register_spatial_index(sdb.adt, "Cell", "shape", cell_size=16)
        with_index = {h.oid for h in sdb.select(query)}
        assert no_index == with_index
        brute = {
            h.oid
            for h in sdb.instances("Cell")
            if rect_overlaps(h["shape"], 10, 10, 40, 40)
        }
        assert with_index == brute

    def test_adt_combined_with_ordinary_predicate(self, sdb):
        populate_cells(sdb, 150)
        results = sdb.select(
            "SELECT c FROM Cell c "
            "WHERE overlaps(c.shape, [0, 0, 100, 100]) AND c.layer = 2"
        )
        for handle in results:
            assert handle["layer"] == 2
            assert rect_overlaps(handle["shape"], 0, 0, 100, 100)


class TestSpatialIndex:
    def test_planner_uses_access_method(self, sdb):
        populate_cells(sdb, 100)
        register_spatial_index(sdb.adt, "Cell", "shape", cell_size=16)
        plan = sdb.plan("SELECT c FROM Cell c WHERE overlaps(c.shape, [0, 0, 10, 10])")
        assert isinstance(plan.access, AdtIndexProbe)

    def test_index_maintained_on_mutations(self, sdb):
        register_spatial_index(sdb.adt, "Cell", "shape", cell_size=16)
        cell = sdb.new("Cell", {"shape": make_rect(0, 0, 2, 2), "layer": 0})
        query = "SELECT c FROM Cell c WHERE overlaps(c.shape, [0, 0, 3, 3])"
        assert [h.oid for h in sdb.select(query)] == [cell.oid]
        sdb.update(cell.oid, {"shape": make_rect(100, 100, 102, 102)})
        assert sdb.select(query) == []
        far_query = "SELECT c FROM Cell c WHERE overlaps(c.shape, [99, 99, 103, 103])"
        assert [h.oid for h in sdb.select(far_query)] == [cell.oid]
        sdb.delete(cell.oid)
        assert sdb.select(far_query) == []

    def test_wrong_domain_rejected(self, sdb):
        with pytest.raises(SchemaError):
            register_spatial_index(sdb.adt, "Cell", "layer")

    def test_estimate_counts_candidates(self, sdb):
        grid = register_spatial_index(sdb.adt, "Cell", "shape", cell_size=16)
        populate_cells(sdb, 100, span=100)
        assert grid.estimate(0, 0, 100, 100) >= 100
        assert grid.estimate(1000, 1000, 1001, 1001) == 0

    def test_large_rectangle_spans_cells(self, sdb):
        grid = register_spatial_index(sdb.adt, "Cell", "shape", cell_size=8)
        cell = sdb.new("Cell", {"shape": make_rect(0, 0, 30, 4)})
        # A window touching only the far end of the rectangle finds it.
        assert cell.oid in grid.candidates(28, 0, 29, 2)
