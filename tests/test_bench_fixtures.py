"""Benchmark fixtures: determinism and structural properties."""

import pytest

from repro import Database
from repro.bench import (
    FIG1_QUERY,
    OO1Data,
    OO1KimDB,
    OO1Relational,
    build_assembly,
    build_vehicle_schema,
    define_assembly_schema,
    define_document_schema,
    populate_documents,
    populate_vehicles,
    selectivity_values,
)
from repro.relational import RelationalEngine


class TestVehicleFixture:
    def test_schema_matches_figure_1(self):
        db = Database()
        build_vehicle_schema(db)
        assert db.schema.is_subclass("DomesticAutomobile", "Automobile")
        assert db.schema.is_subclass("JapaneseAutoCompany", "AutoCompany")
        assert db.schema.attribute("Vehicle", "manufacturer").domain == "Company"
        assert db.schema.attribute("Vehicle", "drivetrain").domain == "VehicleDrivetrain"

    def test_population_deterministic(self):
        first = Database()
        build_vehicle_schema(first)
        oids_a = populate_vehicles(first, n_vehicles=50, n_companies=6, seed=42)
        second = Database()
        build_vehicle_schema(second)
        oids_b = populate_vehicles(second, n_vehicles=50, n_companies=6, seed=42)
        state_a = [s.values for s in first.storage.scan_class("Vehicle")]
        state_b = [s.values for s in second.storage.scan_class("Vehicle")]
        assert state_a == state_b
        assert {k: len(v) for k, v in oids_a.items()} == {
            k: len(v) for k, v in oids_b.items()
        }

    def test_population_counts(self):
        db = Database()
        build_vehicle_schema(db)
        oids = populate_vehicles(db, n_vehicles=40, n_companies=8, seed=1)
        assert db.count("Vehicle", hierarchy=True) == 40
        assert len(oids["Company"]) == 8
        assert db.count("VehicleDrivetrain") == 40

    def test_fig1_query_selective_but_nonempty(self):
        db = Database()
        build_vehicle_schema(db)
        populate_vehicles(db, n_vehicles=400, n_companies=20, seed=3)
        matches = db.select(FIG1_QUERY)
        assert 0 < len(matches) < 400


class TestOO1Fixture:
    def test_deterministic_generation(self):
        a = OO1Data(100, seed=5)
        b = OO1Data(100, seed=5)
        assert a.parts == b.parts
        assert a.connections == b.connections

    def test_connection_count(self):
        data = OO1Data(100, seed=5)
        assert len(data.connections) == 300

    def test_locality_rule(self):
        data = OO1Data(1000, seed=5)
        window = max(1, 1000 // 100)
        local = sum(
            1
            for from_id, to_id, _t, _l in data.connections
            if abs(from_id - to_id) <= window
        )
        # ~90% of connections are local by construction.
        assert local / len(data.connections) > 0.8

    def test_engines_agree_on_traversal(self):
        data = OO1Data(150, seed=6)
        kim = OO1KimDB(Database(), data)
        rel = OO1Relational(RelationalEngine(), data)
        for depth in (1, 2, 3, 4):
            assert kim.traverse(5, depth=depth) == rel.traverse(5, depth=depth)

    def test_lookup_paths_agree(self):
        data = OO1Data(120, seed=6)
        kim = OO1KimDB(Database(), data)
        ids = data.random_part_ids(30, seed=1)
        assert kim.lookup(ids) == kim.lookup_oql(ids) == 30

    def test_insert_extends_graph(self):
        data = OO1Data(80, seed=6)
        kim = OO1KimDB(Database(), data)
        created = kim.insert(10)
        assert len(created) == 10
        assert kim.db.count("Part") == 90


class TestWorkloadFixtures:
    def test_assembly_tree_shape(self):
        db = Database()
        define_assembly_schema(db)
        root = build_assembly(db, depth=3, fanout=2, seed=1)
        # Full binary tree of depth 3: 2^4 - 1 nodes.
        assert db.count("Assembly") == 15
        state = db.get_state(root)
        assert len(state.values["subassemblies"]) == 2

    def test_documents_fixture(self):
        db = Database()
        define_document_schema(db)
        docs = populate_documents(db, n_documents=10, elements_per_doc=2, seed=9)
        assert len(docs) == 10
        assert db.count("MediaElement") == 20
        sample = db.get_state(docs[0])
        assert len(sample.values["elements"]) == 2

    def test_selectivity_values(self):
        values = selectivity_values(100, distinct=10, seed=2)
        assert len(values) == 100
        assert len(set(values)) == 10
        assert values.count(0) == 10
