"""OIDs: identity, ordering, generation."""

import pytest

from repro.core.oid import OID, OIDGenerator


class TestOID:
    def test_equality_ignores_hint(self):
        assert OID(5, "Vehicle") == OID(5, "Company")

    def test_inequality_by_value(self):
        assert OID(5) != OID(6)

    def test_not_equal_to_plain_int(self):
        assert OID(5) != 5

    def test_hash_consistent_with_equality(self):
        assert hash(OID(9, "A")) == hash(OID(9, "B"))
        assert len({OID(1), OID(1, "x"), OID(2)}) == 2

    def test_total_order(self):
        assert OID(1) < OID(2) <= OID(2) < OID(3)
        assert OID(3) > OID(2) >= OID(2)

    def test_sorting(self):
        oids = [OID(3), OID(1), OID(2)]
        assert [o.value for o in sorted(oids)] == [1, 2, 3]

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            OID(-1)

    def test_repr_includes_hint(self):
        assert "Vehicle" in repr(OID(7, "Vehicle"))
        assert repr(OID(7)) == "@7"


class TestOIDGenerator:
    def test_monotonic(self):
        gen = OIDGenerator()
        values = [gen.next().value for _ in range(10)]
        assert values == sorted(values)
        assert len(set(values)) == 10

    def test_starts_at_one(self):
        assert OIDGenerator().next().value == 1

    def test_hint_propagates(self):
        assert OIDGenerator().next("Part").hint == "Part"

    def test_advance_past(self):
        gen = OIDGenerator()
        gen.next()
        gen.advance_past(100)
        assert gen.next().value == 101

    def test_advance_past_lower_value_is_noop(self):
        gen = OIDGenerator()
        for _ in range(5):
            gen.next()
        gen.advance_past(2)
        assert gen.next().value == 6

    def test_last_issued(self):
        gen = OIDGenerator()
        assert gen.last_issued == 0
        gen.next()
        gen.next()
        assert gen.last_issued == 2
