"""Versions: derivation graph, policies, generic binding, notification."""

import pytest

from repro import AttributeDef, Database
from repro.errors import VersionError
from repro.versions import (
    ChouKimPolicy,
    FreezeOnDerivePolicy,
    attach,
    attach_notifications,
)


@pytest.fixture
def vdb():
    db = Database()
    attach_notifications(db)
    attach(db)
    db.define_class(
        "Design",
        attributes=[AttributeDef("name", "String"), AttributeDef("rev", "Integer")],
        versionable=True,
    )
    return db


class TestDerivation:
    def test_first_version_is_transient_v1(self, vdb):
        oid = vdb.versions.create_versioned("Design", {"name": "chip", "rev": 0})
        record = vdb.versions.record_of(oid)
        assert record.number == 1
        assert record.status == "transient"
        assert record.parent is None

    def test_derive_copies_and_applies_changes(self, vdb):
        v1 = vdb.versions.create_versioned("Design", {"name": "chip", "rev": 0})
        v2 = vdb.versions.derive(v1, {"rev": 1})
        assert vdb.get(v2)["name"] == "chip"
        assert vdb.get(v2)["rev"] == 1
        assert vdb.get(v1)["rev"] == 0  # parent untouched

    def test_version_numbers_increase(self, vdb):
        v1 = vdb.versions.create_versioned("Design", {"name": "chip"})
        v2 = vdb.versions.derive(v1)
        v3 = vdb.versions.derive(v2)
        numbers = [vdb.versions.record_of(v).number for v in (v1, v2, v3)]
        assert numbers == [1, 2, 3]

    def test_branching(self, vdb):
        v1 = vdb.versions.create_versioned("Design", {"name": "chip"})
        left = vdb.versions.derive(v1)
        right = vdb.versions.derive(v1)
        assert vdb.versions.record_of(left).parent == v1
        assert vdb.versions.record_of(right).parent == v1
        assert len(vdb.versions.versions_of_generic(1)) == 3

    def test_history_chain(self, vdb):
        v1 = vdb.versions.create_versioned("Design", {"name": "chip"})
        v2 = vdb.versions.derive(v1)
        v3 = vdb.versions.derive(v2)
        assert vdb.versions.history(v3) == [v1, v2, v3]

    def test_unversioned_object_rejected(self, vdb):
        plain = vdb.new("Design", {"name": "plain"})
        with pytest.raises(VersionError):
            vdb.versions.derive(plain.oid)


class TestChouKimPolicy:
    def test_transient_updatable(self, vdb):
        v1 = vdb.versions.create_versioned("Design", {"name": "chip", "rev": 0})
        vdb.update(v1, {"rev": 5})
        assert vdb.get(v1)["rev"] == 5

    def test_working_frozen(self, vdb):
        v1 = vdb.versions.create_versioned("Design", {"name": "chip"})
        assert vdb.versions.promote(v1) == "working"
        with pytest.raises(VersionError):
            vdb.update(v1, {"rev": 5})

    def test_working_deletable_released_not(self, vdb):
        v1 = vdb.versions.create_versioned("Design", {"name": "a"})
        vdb.versions.promote(v1)  # working
        v2 = vdb.versions.create_versioned("Design", {"name": "b"})
        vdb.versions.promote(v2)
        vdb.versions.promote(v2)  # released
        vdb.delete(v1)  # ok
        with pytest.raises(VersionError):
            vdb.delete(v2)

    def test_promotion_ladder_ends(self, vdb):
        v1 = vdb.versions.create_versioned("Design", {"name": "chip"})
        vdb.versions.promote(v1)
        vdb.versions.promote(v1)
        with pytest.raises(VersionError):
            vdb.versions.promote(v1)

    def test_version_with_children_not_deletable(self, vdb):
        v1 = vdb.versions.create_versioned("Design", {"name": "chip"})
        vdb.versions.derive(v1)
        with pytest.raises(VersionError):
            vdb.delete(v1)

    def test_generic_binding_prefers_released(self, vdb):
        v1 = vdb.versions.create_versioned("Design", {"name": "chip"})
        v2 = vdb.versions.derive(v1)
        v3 = vdb.versions.derive(v2)
        # v2 released, v3 transient: binding picks released v2.
        vdb.versions.promote(v2)
        vdb.versions.promote(v2)
        assert vdb.versions.resolve_generic(1) == v2

    def test_generic_binding_latest_within_status(self, vdb):
        v1 = vdb.versions.create_versioned("Design", {"name": "chip"})
        v2 = vdb.versions.derive(v1)
        assert vdb.versions.resolve_generic(1) == v2

    def test_deleting_version_updates_graph(self, vdb):
        v1 = vdb.versions.create_versioned("Design", {"name": "chip"})
        v2 = vdb.versions.derive(v1)
        vdb.delete(v2)
        assert not vdb.versions.is_versioned(v2)
        assert vdb.versions.record_of(v1).children == []
        assert vdb.versions.resolve_generic(1) == v1


class TestFreezeOnDerivePolicy:
    def test_default_binding_is_newest(self):
        db = Database()
        attach(db, FreezeOnDerivePolicy())
        db.define_class("D", attributes=[AttributeDef("n", "Integer")])
        v1 = db.versions.create_versioned("D", {"n": 1})
        v2 = db.versions.derive(v1, {"n": 2})
        assert db.versions.resolve_generic(1) == v2

    def test_policy_swappable(self):
        assert ChouKimPolicy().name != FreezeOnDerivePolicy().name


class TestChangeNotification:
    def test_message_based_on_update(self, vdb):
        events = []
        design = vdb.new("Design", {"name": "chip"})
        vdb.notifications.subscribe(design.oid, lambda *a: events.append(a))
        vdb.update(design.oid, {"rev": 1})
        assert events and events[0][0] == "update"

    def test_class_subscription_covers_subclasses(self, vdb):
        vdb.define_class("SubDesign", superclasses=("Design",))
        events = []
        vdb.notifications.subscribe_class("Design", lambda *a: events.append(a))
        sub = vdb.new("SubDesign", {"name": "s"})
        vdb.update(sub.oid, {"rev": 2})
        assert len(events) == 1

    def test_derivation_notifies_parent_subscribers(self, vdb):
        events = []
        v1 = vdb.versions.create_versioned("Design", {"name": "chip"})
        vdb.notifications.subscribe(v1, lambda *a: events.append(a))
        v2 = vdb.versions.derive(v1)
        derive_events = [e for e in events if e[0] == "derive"]
        assert derive_events == [("derive", v1, v2)]

    def test_flag_based_polling(self, vdb):
        design = vdb.new("Design", {"name": "chip"})
        other = vdb.new("Design", {"name": "other"})
        vdb.update(design.oid, {"rev": 1})
        assert vdb.notifications.is_flagged(design.oid)
        flagged = vdb.notifications.changed_since_checked([design.oid, other.oid])
        assert flagged == [design.oid]
        # Flags cleared after the check.
        assert vdb.notifications.changed_since_checked([design.oid]) == []

    def test_delete_notifies(self, vdb):
        events = []
        design = vdb.new("Design", {"name": "chip"})
        vdb.notifications.subscribe(design.oid, lambda *a: events.append(a))
        vdb.delete(design.oid)
        assert events[0][0] == "delete"

    def test_unsubscribe(self, vdb):
        events = []
        design = vdb.new("Design", {"name": "chip"})
        vdb.notifications.subscribe(design.oid, lambda *a: events.append(a))
        vdb.notifications.unsubscribe(design.oid)
        vdb.update(design.oid, {"rev": 1})
        assert events == []
