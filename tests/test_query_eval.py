"""Path evaluation, algebra, planner and executor semantics."""

import pytest

from repro import AttributeDef, Database, MethodDef
from repro.bench.schemas import FIG1_QUERY, build_vehicle_schema, populate_vehicles
from repro.errors import QueryError
from repro.query.ast import Comparison, Const, Path, Query
from repro.query.parser import parse_query
from repro.query.paths import compare, evaluate_path, validate_path
from repro.query.planner import ExtentScan, IndexEqProbe, IndexRangeProbe
from repro.query import algebra


@pytest.fixture
def pdb():
    db = Database()
    build_vehicle_schema(db)
    populate_vehicles(db, n_vehicles=150, n_companies=10, seed=11)
    return db


def brute_force_fig1(db):
    out = []
    for cls in db.schema.hierarchy_of("Vehicle"):
        for state in db.storage.scan_class(cls):
            if state.values["weight"] <= 7500:
                continue
            maker = state.values.get("manufacturer")
            if maker is None:
                continue
            if db.get_state(maker).values["location"] == "Detroit":
                out.append(state.oid)
    return sorted(out)


class TestPathEvaluation:
    def test_single_step(self, pdb):
        state = next(iter(pdb.storage.scan_class("Vehicle")))
        assert evaluate_path(state, ("weight",), pdb._deref) == [state.values["weight"]]

    def test_nested_step(self, pdb):
        state = next(iter(pdb.storage.scan_class("Vehicle")))
        location = evaluate_path(state, ("manufacturer", "location"), pdb._deref)
        maker = pdb.get_state(state.values["manufacturer"])
        assert location == [maker.values["location"]]

    def test_broken_chain_yields_nothing(self, pdb):
        vehicle = pdb.new("Vehicle", {"weight": 1})
        state = pdb.get_state(vehicle.oid)
        assert evaluate_path(state, ("manufacturer", "location"), pdb._deref) == []

    def test_multi_valued_fanout(self, db):
        db.define_class("Tag", attributes=[AttributeDef("label", "String")])
        db.define_class("Doc", attributes=[AttributeDef("tags", "Tag", multi=True)])
        tags = [db.new("Tag", {"label": l}) for l in ("a", "b")]
        doc = db.new("Doc", {"tags": [t.oid for t in tags]})
        state = db.get_state(doc.oid)
        assert sorted(evaluate_path(state, ("tags", "label"), db._deref)) == ["a", "b"]

    def test_validate_path_ok(self, pdb):
        assert validate_path(pdb.schema, "Vehicle", ("manufacturer", "location")) == "String"

    def test_validate_path_bad_step(self, pdb):
        with pytest.raises(QueryError):
            validate_path(pdb.schema, "Vehicle", ("manufacturer", "bogus"))


class TestCompare:
    def test_numeric_cross_type(self):
        assert compare("=", 7500.0, 7500)
        assert compare(">", 7500.5, 7500)

    def test_bool_not_equal_to_int(self):
        assert not compare("=", True, 1)

    def test_none_never_orders(self):
        assert not compare("<", None, 5)
        assert not compare(">", 5, None)

    def test_incomparable_types_false(self):
        assert not compare("<", "abc", 5)

    def test_like_patterns(self):
        assert compare("like", "company-12", "company-%")
        assert compare("like", "abc", "a_c")
        assert not compare("like", "abc", "a_d")
        assert not compare("like", 5, "5%")

    def test_in(self):
        assert compare("in", "red", ["red", "blue"])
        assert not compare("in", "green", ["red", "blue"])


class TestExecutorSemantics:
    def test_fig1_scan_matches_brute_force(self, pdb):
        assert [h.oid for h in pdb.select(FIG1_QUERY)] == brute_force_fig1(pdb)

    def test_fig1_with_indexes_same_answer(self, pdb):
        expected = brute_force_fig1(pdb)
        pdb.create_hierarchy_index("Vehicle", "weight")
        assert [h.oid for h in pdb.select(FIG1_QUERY)] == expected
        pdb.create_nested_index("Vehicle", ["manufacturer", "location"])
        assert [h.oid for h in pdb.select(FIG1_QUERY)] == expected

    def test_hierarchy_scope_default(self, pdb):
        total = len(pdb.select("SELECT v FROM Vehicle v"))
        assert total == pdb.count("Vehicle", hierarchy=True)

    def test_only_scope(self, pdb):
        only = len(pdb.select("SELECT v FROM ONLY Vehicle v"))
        assert only == pdb.count("Vehicle", hierarchy=False)
        assert only < pdb.count("Vehicle", hierarchy=True)

    def test_subclass_target(self, pdb):
        autos = pdb.select("SELECT a FROM Automobile a")
        classes = {pdb.class_of(h.oid) for h in autos}
        assert classes <= {"Automobile", "DomesticAutomobile"}

    def test_projection_rows(self, pdb):
        result = pdb.execute(
            "SELECT v.weight, v.manufacturer.name FROM Vehicle v LIMIT 3"
        )
        assert len(result.rows) == 3
        for row in result.rows:
            assert set(row) == {"weight", "manufacturer.name"}

    def test_order_by_and_limit(self, pdb):
        result = pdb.execute("SELECT v FROM Vehicle v ORDER BY v.weight DESC LIMIT 5")
        weights = [pdb.get_state(oid).values["weight"] for oid in result.oids]
        assert weights == sorted(weights, reverse=True)
        assert len(weights) == 5

    def test_default_order_is_oid(self, pdb):
        result = pdb.execute("SELECT v FROM Vehicle v")
        assert result.oids == sorted(result.oids)

    def test_in_predicate(self, pdb):
        reds_blues = pdb.select("SELECT v FROM Vehicle v WHERE v.color IN ('red','blue')")
        for handle in reds_blues:
            assert handle["color"] in ("red", "blue")

    def test_not_predicate(self, pdb):
        not_red = pdb.select("SELECT v FROM Vehicle v WHERE NOT v.color = 'red'")
        red = pdb.select("SELECT v FROM Vehicle v WHERE v.color = 'red'")
        assert len(not_red) + len(red) == pdb.count("Vehicle")

    def test_method_predicate(self, db):
        def is_heavy(receiver):
            return receiver["weight"] > 100

        db.define_class(
            "Box",
            attributes=[AttributeDef("weight", "Integer")],
            methods=[MethodDef("is_heavy", is_heavy)],
        )
        db.new("Box", {"weight": 50})
        heavy = db.new("Box", {"weight": 500})
        result = db.select("SELECT b FROM Box b WHERE b.is_heavy()")
        assert [h.oid for h in result] == [heavy.oid]

    def test_programmatic_query_object(self, pdb):
        query = Query(
            "Vehicle",
            where=Comparison(">", Path(("weight",)), Const(7500)),
        )
        via_object = pdb.execute(query)
        via_text = pdb.execute("SELECT v FROM Vehicle v WHERE v.weight > 7500")
        assert via_object.oids == via_text.oids


class TestPlanner:
    def test_scan_without_index(self, pdb):
        plan = pdb.plan("SELECT v FROM Vehicle v WHERE v.weight = 1")
        assert isinstance(plan.access, ExtentScan)

    def test_eq_probe_with_index(self, pdb):
        pdb.create_hierarchy_index("Vehicle", "weight")
        plan = pdb.plan("SELECT v FROM Vehicle v WHERE v.weight = 1")
        assert isinstance(plan.access, IndexEqProbe)

    def test_range_probe(self, pdb):
        pdb.create_hierarchy_index("Vehicle", "weight")
        plan = pdb.plan("SELECT v FROM Vehicle v WHERE v.weight > 7500")
        assert isinstance(plan.access, IndexRangeProbe)
        assert plan.access.low == 7500 and not plan.access.include_low

    def test_residual_retained(self, pdb):
        pdb.create_hierarchy_index("Vehicle", "weight")
        plan = pdb.plan(FIG1_QUERY)
        assert plan.residual is not None

    def test_single_class_index_not_used_for_hierarchy_scope(self, pdb):
        pdb.create_class_index("Vehicle", "weight")
        plan = pdb.plan("SELECT v FROM Vehicle v WHERE v.weight = 1")
        assert isinstance(plan.access, ExtentScan)
        plan_only = pdb.plan("SELECT v FROM ONLY Vehicle v WHERE v.weight = 1")
        assert isinstance(plan_only.access, IndexEqProbe)

    def test_unsargable_ops_scan(self, pdb):
        pdb.create_hierarchy_index("Vehicle", "color")
        plan = pdb.plan("SELECT v FROM Vehicle v WHERE v.color LIKE 'r%'")
        assert isinstance(plan.access, ExtentScan)

    def test_or_not_sargable(self, pdb):
        pdb.create_hierarchy_index("Vehicle", "weight")
        plan = pdb.plan(
            "SELECT v FROM Vehicle v WHERE v.weight = 1 OR v.color = 'red'"
        )
        assert isinstance(plan.access, ExtentScan)

    def test_explain_mentions_access(self, pdb):
        pdb.create_hierarchy_index("Vehicle", "weight")
        text = pdb.plan("SELECT v FROM Vehicle v WHERE v.weight = 1").explain()
        assert "index-eq" in text and "scope:" in text

    def test_unknown_class_rejected(self, pdb):
        with pytest.raises(Exception):
            pdb.plan("SELECT x FROM Nope x")

    def test_invalid_predicate_path_rejected(self, pdb):
        with pytest.raises(QueryError):
            pdb.plan("SELECT v FROM Vehicle v WHERE v.bogus = 1")


class TestAlgebra:
    def test_set_ops_by_identity(self, pdb):
        all_vehicles = list(pdb._scan_coerced("Vehicle"))
        heavy = [s for s in all_vehicles if s.values["weight"] > 7500]
        red = [s for s in all_vehicles if s.values["color"] == "red"]
        union = algebra.union(heavy, red)
        inter = algebra.intersect(heavy, red)
        diff = algebra.difference(heavy, red)
        assert len(union) == len(heavy) + len(red) - len(inter)
        assert len(diff) == len(heavy) - len(inter)
        assert {s.oid for s in inter} <= {s.oid for s in heavy}

    def test_project(self, pdb):
        states = list(pdb._scan_coerced("Vehicle"))[:3]
        rows = list(algebra.project(states, [("weight",)], pdb._deref))
        assert [row["weight"] for row in rows] == [s.values["weight"] for s in states]

    def test_unnest(self, pdb):
        states = list(pdb._scan_coerced("Vehicle"))[:5]
        makers = list(algebra.unnest(states, "manufacturer", pdb._deref))
        assert all(m.class_name.endswith("Company") or m.class_name == "Company" for m in makers)

    def test_order_by_missing_values_last(self, db):
        db.define_class("T", attributes=[AttributeDef("k", "Integer")])
        a = db.new("T", {"k": 2})
        b = db.new("T", {"k": None})
        c = db.new("T", {"k": 1})
        states = list(db._scan_coerced("T"))
        ordered = algebra.order_by(states, ("k",), db._deref)
        assert [s.oid for s in ordered] == [c.oid, a.oid, b.oid]
        ordered_desc = algebra.order_by(states, ("k",), db._deref, descending=True)
        assert [s.oid for s in ordered_desc] == [a.oid, c.oid, b.oid]
