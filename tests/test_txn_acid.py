"""Transactions: atomicity, rollback, WAL, recovery, durability."""

import pytest

from repro import AttributeDef, Database
from repro.core.obj import ObjectState
from repro.core.oid import OID
from repro.errors import RecoveryError, TransactionError
from repro.storage.manager import StorageManager
from repro.txn.recovery import checkpoint, recover
from repro.txn.wal import COMMIT, INSERT, LogRecord, WriteAheadLog


@pytest.fixture
def adb():
    db = Database()
    db.define_class("Account", attributes=[AttributeDef("balance", "Integer")])
    return db


class TestTransactionLifecycle:
    def test_commit_persists(self, adb):
        with adb.transaction():
            account = adb.new("Account", {"balance": 100})
        assert adb.get(account.oid)["balance"] == 100

    def test_abort_rolls_back_insert(self, adb):
        txn = adb.transaction()
        account = adb.new("Account", {"balance": 100})
        txn.abort()
        assert not adb.exists(account.oid)

    def test_abort_rolls_back_update(self, adb):
        account = adb.new("Account", {"balance": 100})
        txn = adb.transaction()
        adb.update(account.oid, {"balance": 50})
        txn.abort()
        assert adb.get(account.oid)["balance"] == 100

    def test_abort_rolls_back_delete(self, adb):
        account = adb.new("Account", {"balance": 100})
        txn = adb.transaction()
        adb.delete(account.oid)
        txn.abort()
        assert adb.get(account.oid)["balance"] == 100

    def test_abort_restores_indexes(self, adb):
        index = adb.create_hierarchy_index("Account", "balance")
        account = adb.new("Account", {"balance": 100})
        txn = adb.transaction()
        adb.update(account.oid, {"balance": 50})
        adb.new("Account", {"balance": 75})
        txn.abort()
        assert account.oid in index.lookup_eq(100)
        assert index.lookup_eq(50) == []
        assert index.lookup_eq(75) == []

    def test_multi_operation_atomicity(self, adb):
        a = adb.new("Account", {"balance": 100})
        b = adb.new("Account", {"balance": 0})
        txn = adb.transaction()
        adb.update(a.oid, {"balance": 0})
        adb.update(b.oid, {"balance": 100})
        txn.abort()
        assert adb.get(a.oid)["balance"] == 100
        assert adb.get(b.oid)["balance"] == 0

    def test_context_manager_commits(self, adb):
        with adb.transaction():
            account = adb.new("Account", {"balance": 1})
        assert adb.exists(account.oid)

    def test_context_manager_aborts_on_exception(self, adb):
        with pytest.raises(RuntimeError):
            with adb.transaction():
                account = adb.new("Account", {"balance": 1})
                raise RuntimeError("boom")
        assert not adb.exists(account.oid)

    def test_nested_begin_rejected(self, adb):
        with adb.transaction():
            with pytest.raises(TransactionError):
                adb.transaction()

    def test_commit_twice_rejected(self, adb):
        txn = adb.transaction()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_autocommit_single_op(self, adb):
        account = adb.new("Account", {"balance": 5})
        assert adb.txns.committed_count >= 1
        assert adb.exists(account.oid)

    def test_locks_released_after_commit(self, adb):
        with adb.transaction():
            adb.new("Account", {"balance": 5})
        assert adb.locks.lock_count() == 0

    def test_abort_all_active(self, adb):
        adb.txns.begin()
        account = adb.new("Account", {"balance": 9})
        adb.txns.abort_all_active()
        assert not adb.exists(account.oid)
        assert adb.txns.active_transactions() == []


class TestWalFraming:
    def test_memory_log_roundtrip(self):
        wal = WriteAheadLog()
        wal.log_begin(1)
        state = ObjectState(OID(1), "A", {"x": 1})
        wal.log_insert(1, state)
        wal.log_commit(1)
        records = list(wal.replay())
        assert [r.record_type for r in records] == [1, INSERT, COMMIT]
        assert records[1].after.values == {"x": 1}

    def test_file_log_roundtrip(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        wal.log_begin(1)
        wal.log_insert(1, ObjectState(OID(1), "A", {"x": 1}))
        wal.log_commit(1)
        wal.close()
        reopened = WriteAheadLog(path)
        assert reopened.record_count == 3
        reopened.close()

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        wal.log_begin(1)
        wal.log_insert(1, ObjectState(OID(1), "A", {"x": 1}))
        wal.log_commit(1)
        wal.close()
        with open(path, "ab") as handle:
            handle.write(b"\x00\x01\x02")  # torn frame
        reopened = WriteAheadLog(path)
        assert reopened.record_count == 3
        reopened.close()

    def test_mid_log_corruption_detected(self, tmp_path):
        path = str(tmp_path / "log.wal")
        wal = WriteAheadLog(path)
        wal.log_begin(1)
        wal.log_insert(1, ObjectState(OID(1), "A", {"x": "payload"}))
        wal.log_commit(1)
        wal.close()
        data = bytearray(open(path, "rb").read())
        data[20] ^= 0xFF  # flip a byte inside the first frames
        with open(path, "wb") as handle:
            handle.write(data)
        reopened = WriteAheadLog(path)
        with pytest.raises(RecoveryError):
            list(reopened.replay())
        reopened.close()

    def test_truncate(self):
        wal = WriteAheadLog()
        wal.log_begin(1)
        wal.truncate()
        assert wal.record_count == 0


class TestRecovery:
    def _storage_and_wal(self):
        return StorageManager(), WriteAheadLog()

    def test_committed_insert_redone(self):
        storage, wal = self._storage_and_wal()
        state = ObjectState(OID(1), "A", {"x": 1})
        wal.log_begin(1)
        wal.log_insert(1, state)
        wal.log_commit(1)
        report = recover(wal, storage)
        assert report.winners == {1}
        assert storage.load(OID(1)).values == {"x": 1}

    def test_loser_insert_undone(self):
        storage, wal = self._storage_and_wal()
        wal.log_begin(1)
        wal.log_insert(1, ObjectState(OID(1), "A", {"x": 1}))
        # no commit: loser
        report = recover(wal, storage)
        assert report.losers == {1}
        assert not storage.contains(OID(1))

    def test_loser_update_restores_before_image(self):
        storage, wal = self._storage_and_wal()
        before = ObjectState(OID(1), "A", {"x": 1})
        after = ObjectState(OID(1), "A", {"x": 2})
        wal.log_begin(1)
        wal.log_insert(1, before)
        wal.log_commit(1)
        wal.log_begin(2)
        wal.log_update(2, before, after)
        report = recover(wal, storage)
        assert report.losers == {2}
        assert storage.load(OID(1)).values == {"x": 1}

    def test_aborted_txn_with_logged_compensation_nets_out(self):
        storage, wal = self._storage_and_wal()
        state = ObjectState(OID(1), "A", {"x": 1})
        wal.log_begin(1)
        wal.log_insert(1, state)
        wal.log_delete(1, state)  # compensation logged by the abort path
        wal.log_abort(1)
        recover(wal, storage)
        assert not storage.contains(OID(1))

    def test_checkpoint_truncates(self):
        storage, wal = self._storage_and_wal()
        wal.log_begin(1)
        wal.log_insert(1, ObjectState(OID(1), "A", {"x": 1}))
        wal.log_commit(1)
        recover(wal, storage)
        checkpoint(wal, storage)
        assert wal.record_count == 0
        # Recovery over the empty log must keep the checkpointed data.
        recover(wal, storage)
        assert storage.contains(OID(1))

    def test_interleaved_winner_and_loser(self):
        storage, wal = self._storage_and_wal()
        wal.log_begin(1)
        wal.log_begin(2)
        wal.log_insert(1, ObjectState(OID(1), "A", {"who": "winner"}))
        wal.log_insert(2, ObjectState(OID(2), "A", {"who": "loser"}))
        wal.log_commit(1)
        report = recover(wal, storage)
        assert storage.contains(OID(1))
        assert not storage.contains(OID(2))
        assert report.redone == 2 and report.undone == 1


class TestDurability:
    def test_reopen_preserves_committed_data(self, durable_path):
        db = Database(durable_path)
        db.define_class("Account", attributes=[AttributeDef("balance", "Integer")])
        with db.transaction():
            account = db.new("Account", {"balance": 77})
        oid = account.oid
        db.close()

        reopened = Database(durable_path)
        assert reopened.get(oid)["balance"] == 77
        assert reopened.class_of(oid) == "Account"
        reopened.close()

    def test_crash_before_checkpoint_recovers_from_wal(self, durable_path):
        db = Database(durable_path)
        db.define_class("Account", attributes=[AttributeDef("balance", "Integer")])
        db.checkpoint()  # persist schema catalog
        with db.transaction():
            account = db.new("Account", {"balance": 123})
        oid = account.oid
        # Simulate crash: no close/checkpoint, just drop the handles.
        db.storage.pager.close()
        db.wal.close()

        reopened = Database(durable_path)
        assert reopened.get(oid)["balance"] == 123
        reopened.close()

    def test_uncommitted_work_lost_on_crash(self, durable_path):
        db = Database(durable_path)
        db.define_class("Account", attributes=[AttributeDef("balance", "Integer")])
        db.checkpoint()
        committed = db.new("Account", {"balance": 1})
        txn = db.transaction()
        uncommitted = db.new("Account", {"balance": 2})
        # Force uncommitted data pages to disk (steal), then crash.
        db.storage.buffer.flush_all()
        db.storage.save_metadata({"schema": db.schema.to_dict()})
        db.storage.pager.close()
        db.wal.close()
        del txn

        reopened = Database(durable_path)
        assert reopened.exists(committed.oid)
        assert not reopened.exists(uncommitted.oid)
        reopened.close()

    def test_oid_generator_resumes_past_stored(self, durable_path):
        db = Database(durable_path)
        db.define_class("Account", attributes=[AttributeDef("balance", "Integer")])
        first = db.new("Account", {"balance": 1})
        db.close()
        reopened = Database(durable_path)
        second = reopened.new("Account", {"balance": 2})
        assert second.oid.value > first.oid.value
        reopened.close()

    def test_schema_survives_reopen(self, durable_path):
        db = Database(durable_path)
        db.define_class("Base", attributes=[AttributeDef("x", "Integer")])
        db.define_class("Derived", superclasses=("Base",))
        db.close()
        reopened = Database(durable_path)
        assert reopened.schema.is_subclass("Derived", "Base")
        assert "x" in reopened.schema.attributes("Derived")
        reopened.close()
