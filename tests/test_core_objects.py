"""Objects, handles, encapsulation and message passing (concepts 1-3, 6)."""

import pytest

from repro import AttributeDef, Database, MethodDef
from repro.core.obj import ObjectState
from repro.core.oid import OID
from repro.errors import (
    AttributeNotFoundError,
    MethodNotFoundError,
    ObjectNotFoundError,
    TypeCheckError,
)


class TestObjectState:
    def test_copy_is_deep_enough(self):
        state = ObjectState(OID(1), "A", {"xs": [1, 2], "y": 3})
        copy = state.copy()
        copy.values["xs"].append(99)
        copy.values["y"] = 4
        assert state.values == {"xs": [1, 2], "y": 3}

    def test_references_iterates_single_and_multi(self):
        state = ObjectState(
            OID(1), "A", {"a": OID(2), "b": [OID(3), 5, OID(4)], "c": "x"}
        )
        assert sorted(state.references()) == [OID(2), OID(3), OID(4)]

    def test_equality(self):
        a = ObjectState(OID(1), "A", {"x": 1})
        b = ObjectState(OID(1), "A", {"x": 1})
        assert a == b
        assert a != ObjectState(OID(1), "A", {"x": 2})


class TestLifecycle:
    def test_new_assigns_unique_oids(self, shape_db):
        first = shape_db.new("Shape", {"name": "a"})
        second = shape_db.new("Shape", {"name": "b"})
        assert first.oid != second.oid

    def test_defaults_applied(self, shape_db):
        rect = shape_db.new("RectangleShape", {"name": "r"})
        assert rect["width"] == 1 and rect["height"] == 1

    def test_get_unknown_oid_raises(self, shape_db):
        with pytest.raises(ObjectNotFoundError):
            shape_db.get(OID(9999))

    def test_update_and_read(self, shape_db):
        rect = shape_db.new("RectangleShape", {"name": "r", "width": 3})
        shape_db.update(rect.oid, {"width": 10})
        assert shape_db.get(rect.oid)["width"] == 10

    def test_update_validates(self, shape_db):
        rect = shape_db.new("RectangleShape", {"name": "r"})
        with pytest.raises(TypeCheckError):
            shape_db.update(rect.oid, {"width": "wide"})

    def test_delete(self, shape_db):
        rect = shape_db.new("RectangleShape", {"name": "r"})
        shape_db.delete(rect.oid)
        assert not shape_db.exists(rect.oid)
        with pytest.raises(ObjectNotFoundError):
            shape_db.get_state(rect.oid)

    def test_instance_of_single_class(self, shape_db):
        square = shape_db.new("Square", {"name": "s"})
        assert shape_db.class_of(square.oid) == "Square"

    def test_new_rejects_unknown_attribute(self, shape_db):
        with pytest.raises(AttributeNotFoundError):
            shape_db.new("Shape", {"bogus": 1})


class TestHandles:
    def test_getitem_reads_current_state(self, shape_db):
        rect = shape_db.new("RectangleShape", {"name": "r", "width": 2})
        assert rect["width"] == 2

    def test_setitem_persists(self, shape_db):
        rect = shape_db.new("RectangleShape", {"name": "r"})
        rect["width"] = 7
        assert shape_db.get_state(rect.oid).values["width"] == 7

    def test_getitem_unknown_attribute(self, shape_db):
        rect = shape_db.new("RectangleShape", {"name": "r"})
        with pytest.raises(AttributeNotFoundError):
            rect["bogus"]

    def test_get_with_default(self, shape_db):
        rect = shape_db.new("RectangleShape", {"name": "r"})
        assert rect.get("bogus", 42) == 42

    def test_fetch_dereferences(self, db):
        db.define_class("B", attributes=[AttributeDef("tag", "String")])
        db.define_class("A", attributes=[AttributeDef("b", "B")])
        b = db.new("B", {"tag": "hello"})
        a = db.new("A", {"b": b.oid})
        assert a.fetch("b")["tag"] == "hello"

    def test_fetch_none_reference(self, db):
        db.define_class("B")
        db.define_class("A", attributes=[AttributeDef("b", "B")])
        a = db.new("A")
        assert a.fetch("b") is None

    def test_fetch_all(self, db):
        db.define_class("B", attributes=[AttributeDef("n", "Integer")])
        db.define_class("A", attributes=[AttributeDef("bs", "B", multi=True)])
        bs = [db.new("B", {"n": i}) for i in range(3)]
        a = db.new("A", {"bs": [b.oid for b in bs]})
        assert [h["n"] for h in a.fetch_all("bs")] == [0, 1, 2]

    def test_is_instance_of(self, shape_db):
        square = shape_db.new("Square", {"name": "s"})
        assert square.is_instance_of("Shape")
        assert square.is_instance_of("Square", strict=True)
        assert not square.is_instance_of("Shape", strict=True)

    def test_handle_equality_and_hash(self, shape_db):
        shape = shape_db.new("Shape", {"name": "x"})
        again = shape_db.get(shape.oid)
        assert shape == again
        assert len({shape, again}) == 1

    def test_to_dict_returns_copy(self, shape_db):
        shape = shape_db.new("Shape", {"name": "x"})
        d = shape.to_dict()
        d["name"] = "mutated"
        assert shape["name"] == "x"


class TestMessagePassing:
    def test_send_invokes_method(self, shape_db):
        shape = shape_db.new("Shape", {"name": "s"})
        assert shape.send("display") == "Shape@s"

    def test_late_binding_picks_most_specific(self, shape_db):
        rect = shape_db.new("RectangleShape", {"name": "r", "width": 3, "height": 4})
        assert rect.send("area") == 12

    def test_inherited_method_binds_up_hierarchy(self, shape_db):
        square = shape_db.new("Square", {"name": "q", "width": 5, "height": 5})
        # area comes from RectangleShape, display redefined on Square.
        assert square.send("area") == 25
        assert square.send("display") == "Square@q"

    def test_unknown_message_raises(self, shape_db):
        shape = shape_db.new("Shape", {"name": "s"})
        with pytest.raises(MethodNotFoundError):
            shape.send("rotate")

    def test_super_send(self, shape_db):
        square = shape_db.new("Square", {"name": "q"})
        assert square.super_send("Square", "display") == "Shape@q"

    def test_responds_to(self, shape_db):
        shape = shape_db.new("Shape", {"name": "s"})
        assert shape.responds_to("display")
        assert not shape.responds_to("rotate")

    def test_method_with_arguments(self, db):
        def scale(receiver, factor):
            return receiver["size"] * factor

        db.define_class(
            "Thing",
            attributes=[AttributeDef("size", "Integer", default=2)],
            methods=[MethodDef("scale", scale)],
        )
        thing = db.new("Thing")
        assert thing.send("scale", 10) == 20
        assert db.send(thing.oid, "scale", factor=3) == 6

    def test_method_can_send_further_messages(self, db):
        def describe(receiver):
            return "size=%d doubled=%d" % (receiver["size"], receiver.send("double"))

        def double(receiver):
            return receiver["size"] * 2

        db.define_class(
            "Chained",
            attributes=[AttributeDef("size", "Integer", default=5)],
            methods=[MethodDef("describe", describe), MethodDef("double", double)],
        )
        assert db.new("Chained").send("describe") == "size=5 doubled=10"


class TestSelfReferentialDomain:
    def test_class_can_reference_itself(self, db):
        # Core concept 4: "The domain of an attribute of a class C may be
        # the class C."
        db.define_class(
            "Person",
            attributes=[
                AttributeDef("name", "String"),
                AttributeDef("spouse", "Person"),
            ],
        )
        alice = db.new("Person", {"name": "alice"})
        bob = db.new("Person", {"name": "bob", "spouse": alice.oid})
        db.update(alice.oid, {"spouse": bob.oid})
        assert alice.fetch("spouse")["name"] == "bob"
        assert bob.fetch("spouse").fetch("spouse")["name"] == "bob"
