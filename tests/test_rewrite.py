"""Soundness of the static rewrite pass and the plan cache.

The rewrite is only allowed to make queries *cheaper*, never *different*:
every test here checks the transformation against an independent oracle —
the same query planned and executed with the rewrite pass bypassed
entirely (``db.planner.plan`` on the raw parsed AST, no analysis facts,
no cache).  The two pillars:

* **idempotence** — rewriting an already-rewritten query changes nothing
  (same normalized structure, same fingerprint), so the normal form is a
  real fixed point and the plan-cache fingerprint is stable;
* **result parity** — across fixture schemas (inheritance hierarchies,
  aggregation-path predicates, None-valued attributes) the rewritten
  query returns exactly the rows the unrewritten one does.

Plus the PR's acceptance claims: a provably-contradictory WHERE executes
with zero storage reads and zero lock acquisitions, and a repeated hot
query deterministically hits the plan cache with identical results.
"""

import pytest

from repro.analysis.rewrite import rewrite_query
from repro.query.ast import structural_key
from repro.query.parser import parse_query
from repro.query.planner import EmptyScan


#: Queries over the Figure 1 vehicle fixture exercising every rule:
#: constant folding, NOT-pushdown/De Morgan, CNF, canonical ordering,
#: tautology and implied-conjunct elimination, sargable-range fusion,
#: IN normalization, and path predicates over the aggregation hierarchy.
VEHICLE_QUERIES = [
    "SELECT v FROM Vehicle v WHERE v.weight > 10 AND v.weight < 5",
    "SELECT v FROM Vehicle v WHERE v.color = 'red' OR NOT (v.color = 'red')",
    "SELECT v FROM Vehicle v WHERE NOT (v.weight > 5000 AND v.color = 'red')",
    "SELECT v FROM Vehicle v WHERE NOT (v.weight > 5000 OR v.color = 'red')",
    "SELECT v FROM Vehicle v WHERE v.weight > 5 AND v.weight > 10",
    "SELECT v FROM Vehicle v WHERE v.weight > 3000 AND v.weight <= 9000",
    "SELECT v FROM Vehicle v WHERE v.color IN ('red', 'blue', 'red')",
    "SELECT v FROM Vehicle v WHERE v.color IN ('red')",
    "SELECT v FROM Vehicle v WHERE v.color LIKE 'r*'",
    "SELECT v FROM Vehicle v WHERE v.weight < 2000 OR v.weight > 9000",
    "SELECT v FROM Vehicle v WHERE NOT NOT (v.weight > 4000)",
    "SELECT v FROM Vehicle v "
    "WHERE v.manufacturer.location = 'Detroit' AND v.weight > 7500",
    "SELECT v FROM Vehicle v WHERE NOT (v.manufacturer.location = 'Detroit')",
    "SELECT v FROM Vehicle v WHERE v.manufacturer.location = 'Detroit' "
    "AND (v.color = 'red' OR v.weight > 6000)",
    "SELECT t FROM Truck t WHERE t.weight > 4000 AND t.weight > 4000",
]

SHAPE_QUERIES = [
    "SELECT s FROM Shape s WHERE s.name != 'r1'",
    "SELECT s FROM Shape s WHERE s.name = 'r1' OR s.name != 'r1'",
    "SELECT r FROM RectangleShape r WHERE r.width > 2 AND r.width > 1",
    "SELECT r FROM RectangleShape r WHERE r.width >= 3 AND r.width <= 2",
    "SELECT s FROM Square s WHERE NOT (s.width < 3)",
]


def _populate_shapes(shape_db):
    shape_db.new("Shape", {"name": "plain"})
    for i in range(6):
        shape_db.new(
            "RectangleShape", {"name": "r%d" % i, "width": i + 1, "height": 2}
        )
    for i in range(4):
        shape_db.new(
            "Square", {"name": "sq%d" % i, "width": i + 2, "height": i + 2}
        )
    return shape_db


def oracle_oids(db, text):
    """Execute ``text`` with the rewrite pass bypassed entirely."""
    query = parse_query(text)
    plan = db.planner.plan(query)
    result = db._executor.execute(plan)
    return sorted(result.oids)


def rewritten_oids(db, text):
    return sorted(db.execute(text).oids)


class TestIdempotence:
    @pytest.mark.parametrize("text", VEHICLE_QUERIES)
    def test_rewrite_twice_is_rewrite_once(self, populated_db, text):
        schema = populated_db.schema
        first = rewrite_query(schema, parse_query(text))
        second = rewrite_query(schema, first.query)
        assert structural_key(second.query.where) == structural_key(
            first.query.where
        )
        assert second.fingerprint == first.fingerprint
        assert not second.changed

    @pytest.mark.parametrize("text", SHAPE_QUERIES)
    def test_rewrite_twice_is_rewrite_once_shapes(self, shape_db, text):
        schema = shape_db.schema
        first = rewrite_query(schema, parse_query(text))
        second = rewrite_query(schema, first.query)
        assert second.fingerprint == first.fingerprint
        assert not second.changed

    def test_commuted_operands_share_a_fingerprint(self, populated_db):
        schema = populated_db.schema
        a = rewrite_query(
            schema,
            parse_query(
                "SELECT v FROM Vehicle v WHERE v.weight > 5000 AND v.color = 'red'"
            ),
        )
        b = rewrite_query(
            schema,
            parse_query(
                "SELECT v FROM Vehicle v WHERE v.color = 'red' AND v.weight > 5000"
            ),
        )
        assert a.fingerprint == b.fingerprint


class TestResultParity:
    @pytest.mark.parametrize("text", VEHICLE_QUERIES)
    def test_vehicle_parity(self, populated_db, text):
        assert rewritten_oids(populated_db, text) == oracle_oids(
            populated_db, text
        )

    @pytest.mark.parametrize("text", VEHICLE_QUERIES)
    def test_vehicle_parity_with_indexes(self, populated_db, text):
        # Same battery with index-range probes on the table: the facts
        # the rewrite hands the planner must not change the answer.
        populated_db.create_hierarchy_index("Vehicle", "weight")
        populated_db.create_hierarchy_index("Vehicle", "color")
        assert rewritten_oids(populated_db, text) == oracle_oids(
            populated_db, text
        )

    @pytest.mark.parametrize("text", SHAPE_QUERIES)
    def test_shape_parity(self, shape_db, text):
        _populate_shapes(shape_db)
        assert rewritten_oids(shape_db, text) == oracle_oids(shape_db, text)

    def test_tautology_folds_to_full_extent(self, populated_db):
        text = "SELECT v FROM Vehicle v WHERE v.color = 'red' OR NOT (v.color = 'red')"
        plan = populated_db.plan(text)
        assert plan.query.where is None  # the whole clause was eliminated
        assert len(rewritten_oids(populated_db, text)) == populated_db.count(
            "Vehicle"
        )


class TestContradictionShortCircuit:
    CONTRADICTION = "SELECT v FROM Vehicle v WHERE v.weight > 10 AND v.weight < 5"

    def test_zero_storage_reads_and_zero_locks(self, populated_db):
        db = populated_db
        plan = db.plan(self.CONTRADICTION)
        assert isinstance(plan.access, EmptyScan)
        db.stats.reset_io()
        with db.transaction():
            locks_before = db.locks.stats.acquisitions
            result = db.execute(self.CONTRADICTION)
            locks_after = db.locks.stats.acquisitions
        assert list(result.oids) == []
        assert result.stats.examined == 0
        assert result.stats.index_probes == 0
        # Zero locks: the EmptyScan path skips the class scan locks an
        # ordinary query takes under an explicit transaction.
        assert locks_after - locks_before == 0
        snap = db.stats.snapshot()
        assert snap["buffer"]["hits"] == 0 and snap["buffer"]["faults"] == 0
        assert snap["pager"]["reads"] == 0

    def test_sysstat_and_wait_events_confirm_no_lock_traffic(self, populated_db):
        db = populated_db

        def stat(name):
            rows = db.select("SysStat where name = '%s'" % name)
            return rows[0]["value"] if rows else 0

        lock_waits = stat("locks.waits")
        acquisitions = stat("locks.acquisitions")
        wait_rows = len(db.select("SysWaitEvent where kind = 'Lock'"))
        with db.transaction():
            db.execute(self.CONTRADICTION)
        assert stat("locks.waits") == lock_waits
        assert stat("locks.acquisitions") == acquisitions
        assert len(db.select("SysWaitEvent where kind = 'Lock'")) == wait_rows

    def test_rew001_diagnostic_reported(self, populated_db):
        report = populated_db.check(self.CONTRADICTION)
        assert report.ok  # informational, not an error
        assert "REW001" in report.codes()


class TestPlanCache:
    HOT = "SELECT v FROM Vehicle v WHERE v.color = 'red' ORDER BY v.weight"

    def test_second_execution_is_deterministic_hit(self, populated_db):
        db = populated_db
        first = [h for h in db.execute(self.HOT).oids]
        hits0 = db.metrics.snapshot()["query.plan_cache.hits"]
        parses0 = db.metrics.snapshot()["query.parses"]
        second = [h for h in db.execute(self.HOT).oids]
        snap = db.metrics.snapshot()
        assert second == first
        assert snap["query.plan_cache.hits"] == hits0 + 1
        assert snap["query.parses"] == parses0  # source fast path: no parse
        assert db.plan(self.HOT).cached

    def test_schema_evolution_purges_cache(self, populated_db):
        from repro.core.attribute import AttributeDef
        from repro.evolution.changes import SchemaEvolution

        db = populated_db
        before = rewritten_oids(db, self.HOT)
        inv0 = db.metrics.snapshot()["query.plan_cache.invalidations"]
        SchemaEvolution(db).add_attribute(
            "Vehicle", AttributeDef("note", "String", default="")
        )
        assert len(db.plan_cache) == 0
        assert db.metrics.snapshot()["query.plan_cache.invalidations"] > inv0
        assert rewritten_oids(db, self.HOT) == before

    def test_index_epoch_invalidates_stale_plan(self, populated_db):
        db = populated_db
        db.execute(self.HOT)  # cached with a full-scan access path
        db.create_hierarchy_index("Vehicle", "color")
        plan = db.plan(self.HOT)
        assert "index" in plan.access.description
        assert rewritten_oids(db, self.HOT) == oracle_oids(db, self.HOT)

    def test_sysplancache_view_lists_entries(self, populated_db):
        db = populated_db
        db.execute(self.HOT)
        db.execute(self.HOT)
        rows = db.select("SysPlanCache where target = 'Vehicle'")
        assert rows
        hot = [r for r in rows if r["source"] == self.HOT]
        assert hot and hot[0]["hits"] >= 1

    def test_explain_shows_rewrite_section_and_cache_hit(self, populated_db):
        db = populated_db
        text = "SELECT v FROM Vehicle v WHERE v.weight > 5 AND v.weight > 10"
        rendered = db.explain(text).render()
        assert "-- rewrite --" in rendered
        assert "implied-conjunct" in rendered
        rendered2 = db.explain(text).render()
        assert "plan cache: hit" in rendered2
