"""B+-tree substrate."""

import random

import pytest

from repro.core.oid import OID
from repro.errors import KimDBError
from repro.index.btree import BTree, normalize_key


class TestNormalizeKey:
    def test_type_ranks_ordered(self):
        keys = [None, False, True, -5, 2.5, 7, "a", b"b", OID(1)]
        normalized = [normalize_key(k) for k in keys]
        assert normalized == sorted(normalized)

    def test_int_float_interleave(self):
        assert normalize_key(1) < normalize_key(1.5) < normalize_key(2)

    def test_int_equals_equal_float(self):
        assert normalize_key(7500) == normalize_key(7500.0)

    def test_unindexable_value(self):
        with pytest.raises(KimDBError):
            normalize_key([1, 2])


class TestInsertSearch:
    def test_search_empty(self):
        assert BTree().search(5) == []

    def test_single_entry(self):
        tree = BTree()
        tree.insert(5, "A", OID(1))
        assert tree.search(5) == [("A", OID(1))]

    def test_duplicates_same_key(self):
        tree = BTree()
        tree.insert(5, "A", OID(1))
        tree.insert(5, "B", OID(2))
        assert sorted(tree.search(5)) == [("A", OID(1)), ("B", OID(2))]

    def test_many_keys_split(self):
        tree = BTree(order=4)
        for value in range(200):
            tree.insert(value, "A", OID(value + 1))
        assert tree.depth() > 1
        for value in (0, 57, 199):
            assert tree.search(value) == [("A", OID(value + 1))]
        tree.check_invariants()

    def test_random_insert_order(self):
        rng = random.Random(0)
        values = list(range(500))
        rng.shuffle(values)
        tree = BTree(order=8)
        for value in values:
            tree.insert(value, "A", OID(value + 1))
        tree.check_invariants()
        assert list(tree.iter_keys()) == list(range(500))

    def test_mixed_type_keys(self):
        tree = BTree()
        tree.insert("detroit", "A", OID(1))
        tree.insert(42, "A", OID(2))
        tree.insert(None, "A", OID(3))
        tree.check_invariants()
        assert tree.search("detroit") == [("A", OID(1))]
        assert tree.search(None) == [("A", OID(3))]

    def test_order_validation(self):
        with pytest.raises(KimDBError):
            BTree(order=2)


class TestRange:
    @pytest.fixture
    def tree(self):
        tree = BTree(order=4)
        for value in range(0, 100, 10):
            tree.insert(value, "A", OID(value + 1))
        return tree

    def keys(self, result):
        return [key for key, _entries in result]

    def test_full_range(self, tree):
        assert self.keys(tree.range()) == list(range(0, 100, 10))

    def test_bounded_inclusive(self, tree):
        assert self.keys(tree.range(20, 50)) == [20, 30, 40, 50]

    def test_bounded_exclusive(self, tree):
        assert self.keys(tree.range(20, 50, include_low=False, include_high=False)) == [30, 40]

    def test_open_low(self, tree):
        assert self.keys(tree.range(high=25)) == [0, 10, 20]

    def test_open_high(self, tree):
        assert self.keys(tree.range(low=75)) == [80, 90]

    def test_bounds_between_keys(self, tree):
        assert self.keys(tree.range(15, 35)) == [20, 30]

    def test_empty_range(self, tree):
        assert self.keys(tree.range(101, 200)) == []


class TestRemove:
    def test_remove_entry(self):
        tree = BTree()
        tree.insert(5, "A", OID(1))
        assert tree.remove(5, "A", OID(1))
        assert tree.search(5) == []
        assert len(tree) == 0

    def test_remove_one_of_duplicates(self):
        tree = BTree()
        tree.insert(5, "A", OID(1))
        tree.insert(5, "A", OID(2))
        assert tree.remove(5, "A", OID(1))
        assert tree.search(5) == [("A", OID(2))]

    def test_remove_missing_returns_false(self):
        tree = BTree()
        tree.insert(5, "A", OID(1))
        assert not tree.remove(5, "A", OID(99))
        assert not tree.remove(6, "A", OID(1))

    def test_heavy_churn_keeps_invariants(self):
        rng = random.Random(1)
        tree = BTree(order=6)
        live = set()
        for step in range(2000):
            value = rng.randrange(100)
            oid = OID(value + 1)
            if (value, oid.value) in live and rng.random() < 0.5:
                tree.remove(value, "A", oid)
                live.discard((value, oid.value))
            elif (value, oid.value) not in live:
                tree.insert(value, "A", oid)
                live.add((value, oid.value))
        tree.check_invariants()
        assert len(tree) == len(live)

    def test_clear(self):
        tree = BTree()
        for value in range(10):
            tree.insert(value, "A", OID(value + 1))
        tree.clear()
        assert len(tree) == 0
        assert list(tree.iter_keys()) == []


class TestIterEntries:
    def test_entries_in_key_order(self):
        tree = BTree()
        tree.insert(2, "B", OID(2))
        tree.insert(1, "A", OID(1))
        entries = list(tree.iter_entries())
        assert entries == [(1, ("A", OID(1))), (2, ("B", OID(2)))]
