"""Domain checking of attribute values (core concept 4)."""

import pytest

from repro.core.attribute import AttributeDef
from repro.core.oid import OID
from repro.core.schema import Schema
from repro.errors import AttributeNotFoundError, SchemaError, TypeCheckError


@pytest.fixture
def schema():
    s = Schema()
    s.define_class("Company", attributes=[AttributeDef("name", "String")])
    s.define_class("AutoCompany", superclasses=("Company",))
    s.define_class(
        "Vehicle",
        attributes=[
            AttributeDef("weight", "Integer"),
            AttributeDef("price", "Float"),
            AttributeDef("name", "String", required=True),
            AttributeDef("electric", "Boolean"),
            AttributeDef("blob", "Bytes"),
            AttributeDef("maker", "Company"),
            AttributeDef("tags", "String", multi=True),
            AttributeDef("anything", "Any"),
            AttributeDef("thing", "Object"),
        ],
    )
    return s


def check(schema, attr_name, value, deref=None):
    attr = schema.attribute("Vehicle", attr_name)
    schema.check_value(attr, value, deref)


class TestPrimitives:
    def test_integer_accepts_int(self, schema):
        check(schema, "weight", 7500)

    def test_integer_rejects_bool(self, schema):
        with pytest.raises(TypeCheckError):
            check(schema, "weight", True)

    def test_integer_rejects_str(self, schema):
        with pytest.raises(TypeCheckError):
            check(schema, "weight", "heavy")

    def test_float_accepts_int_widening(self, schema):
        check(schema, "price", 100)
        check(schema, "price", 99.5)

    def test_boolean_only_accepts_bool(self, schema):
        check(schema, "electric", True)
        with pytest.raises(TypeCheckError):
            check(schema, "electric", 1)

    def test_bytes(self, schema):
        check(schema, "blob", b"\x00\x01")
        with pytest.raises(TypeCheckError):
            check(schema, "blob", "text")

    def test_none_allowed_when_optional(self, schema):
        check(schema, "weight", None)

    def test_required_rejects_none(self, schema):
        with pytest.raises(TypeCheckError):
            check(schema, "name", None)


class TestReferences:
    def test_reference_structural_ok_without_deref(self, schema):
        check(schema, "maker", OID(3))

    def test_reference_to_exact_class(self, schema):
        check(schema, "maker", OID(3), deref=lambda oid: "Company")

    def test_reference_to_subclass_allowed(self, schema):
        check(schema, "maker", OID(3), deref=lambda oid: "AutoCompany")

    def test_reference_to_unrelated_class_rejected(self, schema):
        with pytest.raises(TypeCheckError):
            check(schema, "maker", OID(3), deref=lambda oid: "Vehicle")

    def test_dangling_reference_rejected(self, schema):
        with pytest.raises(TypeCheckError):
            check(schema, "maker", OID(3), deref=lambda oid: None)

    def test_primitive_domain_rejects_reference(self, schema):
        with pytest.raises(TypeCheckError):
            check(schema, "weight", OID(3))

    def test_class_domain_rejects_primitive(self, schema):
        with pytest.raises(TypeCheckError):
            check(schema, "maker", "GM")


class TestMultiValued:
    def test_list_required(self, schema):
        with pytest.raises(TypeCheckError):
            check(schema, "tags", "solo")

    def test_all_elements_checked(self, schema):
        check(schema, "tags", ["a", "b"])
        with pytest.raises(TypeCheckError):
            check(schema, "tags", ["a", 3])

    def test_none_inside_set_rejected(self, schema):
        with pytest.raises(TypeCheckError):
            check(schema, "tags", ["a", None])

    def test_empty_list_ok_when_optional(self, schema):
        check(schema, "tags", [])


class TestAnyAndObject:
    def test_any_accepts_everything(self, schema):
        for value in (1, "x", True, b"b", OID(1), 3.5):
            check(schema, "anything", value)

    def test_object_accepts_primitives_and_refs(self, schema):
        check(schema, "thing", 5)
        check(schema, "thing", OID(2))


class TestValidateState:
    def test_full_state_ok(self, schema):
        schema.validate_state("Vehicle", {"name": "v1", "weight": 100})

    def test_missing_required_rejected(self, schema):
        with pytest.raises(TypeCheckError):
            schema.validate_state("Vehicle", {"weight": 100})

    def test_partial_skips_required_check(self, schema):
        schema.validate_state("Vehicle", {"weight": 100}, partial=True)

    def test_unknown_attribute_rejected(self, schema):
        with pytest.raises(AttributeNotFoundError):
            schema.validate_state("Vehicle", {"name": "v", "ghost": 1})

    def test_abstract_class_not_instantiable(self, schema):
        schema.define_class("AbstractThing", abstract=True)
        with pytest.raises(TypeCheckError):
            schema.validate_state("AbstractThing", {})

    def test_default_state(self, schema):
        defaults = schema.default_state("Vehicle")
        assert defaults["tags"] == []
        assert defaults["weight"] is None

    def test_default_state_lists_not_shared(self, schema):
        one = schema.default_state("Vehicle")
        two = schema.default_state("Vehicle")
        one["tags"].append("x")
        assert two["tags"] == []


class TestAttributeDefValidation:
    def test_underscore_names_reserved(self):
        with pytest.raises(SchemaError):
            AttributeDef("_hidden")

    def test_invalid_identifier(self):
        with pytest.raises(SchemaError):
            AttributeDef("not a name")

    def test_exclusive_requires_composite(self):
        with pytest.raises(SchemaError):
            AttributeDef("part", "Any", exclusive=True)

    def test_multi_default_is_list(self):
        assert AttributeDef("xs", "Integer", multi=True).default_value() == []

    def test_clone_preserves_flags(self):
        attr = AttributeDef(
            "part", "Any", composite=True, exclusive=True, dependent=True
        )
        copy = attr.clone()
        assert copy.composite and copy.exclusive and copy.dependent
