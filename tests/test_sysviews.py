"""System statistics views, the wait-event profiler, and the monitor.

The self-observing database: SysStat/SysWaitEvent/SysLock/
SysTransaction/SysSlowOp/SysOperator are virtual extents queried
through the normal OQL parse -> analyze -> plan -> pipeline path, fed
by the wait-event profiler and the rest of the obs layer.
"""

import threading
import time

import pytest

from repro import AttributeDef, Database
from repro.errors import QueryError, SemanticError
from repro.obs import MetricsRegistry, WaitProfiler, render_prometheus


def _vehicle_db(**kwargs):
    db = Database(**kwargs)
    db.define_class(
        "Vehicle",
        attributes=[
            AttributeDef("weight", "Integer"),
            AttributeDef("color", "String", default="white"),
        ],
    )
    for i in range(20):
        db.new("Vehicle", {"weight": 1000 + i, "color": "red" if i % 4 else "blue"})
    return db


def _lock_conflict(db, oid, hold_seconds=0.05):
    """A writer holds X on ``oid`` while a reader blocks; returns both txn ids."""
    writer = db.txns.begin()
    db.update(oid, {"color": "black"})
    started = threading.Event()
    reader_id = []

    def blocked_reader():
        with db.txns.begin() as txn:
            reader_id.append(txn.txn_id)
            started.set()
            db.get_state(oid)  # blocks until the writer commits

    thread = threading.Thread(target=blocked_reader)
    thread.start()
    started.wait()
    time.sleep(hold_seconds)
    writer_id = writer.txn_id
    writer.commit()
    thread.join(timeout=30)
    return writer_id, reader_id[0]


class TestWaitProfiler:
    def test_record_aggregates_per_kind_and_target(self):
        reg = MetricsRegistry()
        waits = WaitProfiler(registry=reg)
        waits.record("Lock", 0.2, target="class:Vehicle", txn_id=7, blocker=3)
        waits.record("Lock", 0.1, target="class:Vehicle", txn_id=8, blocker=7)
        waits.record("BufferRead", 0.05, target="page:4", txn_id=7)
        rows = waits.rows()
        assert [row["kind"] for row in rows] == ["Lock", "BufferRead"]
        lock = rows[0]
        assert lock["count"] == 2
        assert lock["total_wait"] == pytest.approx(0.3)
        assert lock["max_wait"] == pytest.approx(0.2)
        assert lock["avg_wait"] == pytest.approx(0.15)
        assert lock["last_txn"] == 8 and lock["last_blocker"] == 7
        assert waits.total_wait_seconds() == pytest.approx(0.35)
        assert len(waits) == 2  # distinct (kind, target) aggregates
        # Registry instruments ride along.
        assert reg.value("waits.lock.count") == 2
        assert reg.snapshot()["waits.buffer_read.seconds"]["count"] == 1

    def test_per_txn_accumulation_and_eviction(self):
        waits = WaitProfiler(txn_capacity=2)
        waits.record("Lock", 0.1, txn_id=1)
        waits.record("WALFlush", 0.2, txn_id=2)
        waits.record("Lock", 0.3, txn_id=3)  # evicts txn 1
        assert waits.txn_waits(1) == {"count": 0, "seconds": 0, "by_kind": {}}
        assert waits.txn_waits(3)["seconds"] == pytest.approx(0.3)
        assert waits.txn_waits(2)["by_kind"] == {"WALFlush": {"count": 1, "seconds": 0.2}}

    def test_current_txn_provider_fills_missing_txn(self):
        waits = WaitProfiler()
        waits.current_txn = lambda: 42
        waits.record("PageRead", 0.01, target="page:0")
        assert waits.recent()[-1].txn_id == 42

    def test_disabled_profiler_records_nothing(self):
        waits = WaitProfiler()
        waits.enabled = False
        waits.record("Lock", 1.0, txn_id=1)
        assert len(waits) == 0 and waits.rows() == []

    def test_unknown_kind_rejected(self):
        waits = WaitProfiler()
        with pytest.raises(ValueError):
            waits.record("Nap", 1.0)


class TestSystemViewQueries:
    def test_shorthand_select_returns_rows_through_pipeline(self):
        db = _vehicle_db()
        db.execute("SELECT v FROM Vehicle v WHERE v.weight > 1010")
        rows = db.select("SysStat where kind = 'counter' order by name")
        assert rows and all(row["kind"] == "counter" for row in rows)
        names = [row["name"] for row in rows]
        assert names == sorted(names)
        assert "query.executes" in names

    def test_filter_sort_limit_compose(self):
        db = _vehicle_db()
        rows = db.select("SysStat order by name limit 3")
        assert len(rows) == 3
        all_names = [row["name"] for row in db.select("SysStat order by name")]
        assert [row["name"] for row in rows] == all_names[:3]

    def test_sysstat_covers_every_instrument_kind(self):
        db = _vehicle_db()
        db.execute("SELECT v FROM Vehicle v")
        kinds = {row["kind"] for row in db.select("SysStat")}
        assert {"counter", "gauge", "histogram", "derived"} <= kinds
        # The system query itself is timed, so the count has grown past
        # the one user query — assert shape, not an exact count.
        hist = db.select("SysStat where kind = 'histogram' and name = 'query.seconds'")
        row = hist[0]
        assert row["value"] >= 1  # histogram rows expose count as value
        assert row["mean"] == pytest.approx(row["total"] / row["value"])

    def test_explain_shows_system_scan_node(self):
        db = _vehicle_db()
        result = db.explain("SysWaitEvent where kind = 'Lock' order by total_wait desc limit 10")
        access = result.tree["children"][0]
        assert access["op"] == "system-scan"
        assert access["meta"]["access"] == "system"
        ops = [child["op"] for child in result.tree["children"]]
        assert ops == ["system-scan", "filter", "sort", "limit"]
        assert "system-scan" in result.render()
        assert "system(SysWaitEvent)" in result.plan.access.description

    def test_unordered_system_query_keeps_generation_order(self):
        # No OID tiebreaker exists for generated rows: without ORDER BY
        # the pipeline must not insert an implicit sort.
        db = _vehicle_db()
        result = db.execute("SysStat")
        assert result.pipeline.sort is None
        assert result.system is True
        assert result.oids == []

    def test_projection_over_system_view(self):
        db = _vehicle_db()
        db.execute("SELECT v FROM Vehicle v")
        rows = db.execute("SELECT s.name FROM SysStat s WHERE s.kind = 'counter'").rows
        assert rows and set(rows[0]) == {"name"}

    def test_semantic_gate_rejects_unknown_attribute(self):
        db = _vehicle_db()
        with pytest.raises(SemanticError) as err:
            db.execute("SysStat where wibble = 1")
        assert "ANA601" in str(err.value)
        report = db.check("SysStat where wibble = 1")
        assert not report.ok

    def test_semantic_gate_rejects_aggregates_and_paths(self):
        db = _vehicle_db()
        with pytest.raises(SemanticError) as err:
            db.execute("SELECT count(*) FROM SysStat s")
        assert "ANA602" in str(err.value)
        with pytest.raises(SemanticError) as err:
            db.execute("SysLock where resource.name = 'x'")
        assert "ANA603" in str(err.value)

    def test_select_iter_rejects_system_views(self):
        db = _vehicle_db()
        with pytest.raises(QueryError):
            list(db.select_iter("SysStat"))

    def test_sysoperator_shows_last_user_query_only(self):
        db = _vehicle_db()
        db.execute("SELECT v FROM Vehicle v WHERE v.color = 'red'")
        ops = db.select("SysOperator order by position")
        assert [row["op"] for row in ops][:2] == ["extent-scan", "filter"]
        assert ops[0]["rows_out"] == 20
        # Querying system views must not overwrite the observed pipeline.
        db.select("SysStat")
        again = db.select("SysOperator order by position")
        assert [row["op"] for row in again] == [row["op"] for row in ops]


class TestLockWaitIntegration:
    def test_lock_conflict_surfaces_in_syswaitevent(self):
        db = _vehicle_db()
        oid = db.select("Vehicle limit 1")[0].oid
        writer_id, reader_id = _lock_conflict(db, oid)
        rows = db.select(
            "SysWaitEvent where kind = 'Lock' order by total_wait desc limit 10"
        )
        assert len(rows) == 1
        event = rows[0]
        assert event["total_wait"] > 0
        assert event["count"] == 1
        assert event["last_txn"] == reader_id
        assert event["last_blocker"] == writer_id
        assert event["target"].startswith("object:")
        # The same wait also reached the registry instruments.
        assert db.metrics.value("waits.lock.count") == 1
        assert db.metrics.value("locks.waits") == 1

    def test_blocked_txn_visible_in_syslock_and_systransaction(self):
        db = _vehicle_db()
        oid = db.select("Vehicle limit 1")[0].oid
        writer = db.txns.begin()
        db.update(oid, {"color": "black"})
        started = threading.Event()

        def blocked_reader():
            with db.txns.begin():
                started.set()
                db.get_state(oid)

        thread = threading.Thread(target=blocked_reader)
        thread.start()
        started.wait()
        deadline = time.time() + 5.0  # lint: ignore[wall-clock-duration]
        waiting = []
        while time.time() < deadline:  # lint: ignore[wall-clock-duration]
            waiting = db.select("SysLock where granted = false")
            if waiting:
                break
            time.sleep(0.01)
        assert waiting and waiting[0]["mode"] == "S"
        blocked = db.select("SysTransaction where waiting_for = %d" % writer.txn_id)
        assert len(blocked) == 1
        assert blocked[0]["waiting_for"] == writer.txn_id
        assert blocked[0]["age"] > 0
        writer.commit()
        thread.join(timeout=30)
        assert db.select("SysLock where granted = false") == []

    def test_wait_profiling_can_be_disabled(self):
        db = _vehicle_db()
        db.configure_observability(wait_profiling=False)
        oid = db.select("Vehicle limit 1")[0].oid
        _lock_conflict(db, oid, hold_seconds=0.02)
        assert db.select("SysWaitEvent") == []
        assert db.metrics.value("locks.waits") == 1  # legacy stat still counts


class TestSysSlowOp:
    def test_slow_ops_queryable(self):
        db = _vehicle_db(slow_op_threshold=0.0)
        db.execute("SELECT v FROM Vehicle v")
        rows = db.select("SysSlowOp where name = 'query.execute' order by elapsed desc")
        assert rows and rows[0]["elapsed"] >= rows[-1]["elapsed"]
        assert rows[0]["threshold"] == 0.0

    def test_configure_observability_slow_threshold(self):
        db = _vehicle_db()
        assert db.select("SysSlowOp") == []
        db.configure_observability(slow_threshold=0.0)
        db.execute("SELECT v FROM Vehicle v")
        assert db.select("SysSlowOp where name = 'query.execute'")
        with pytest.raises(ValueError):
            db.configure_observability(slow_threshold=-1)


class TestPrometheusExport:
    @staticmethod
    def _parse(text):
        samples = {}
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            samples[name] = float(value)
        return samples

    def test_round_trips_every_instrument(self):
        db = _vehicle_db()
        db.execute("SELECT v FROM Vehicle v WHERE v.weight > 1010")
        text = render_prometheus(db.metrics)
        samples = self._parse(text)
        checked = 0
        for name in db.metrics.names():
            prom = "kimdb_" + "".join(
                ch if (ch.isalnum() or ch == "_") else "_" for ch in name
            )
            try:
                metric = db.metrics.get(name)
            except Exception:
                metric = None  # derived
            kind = type(metric).__name__ if metric is not None else "derived"
            if kind == "Counter":
                assert samples[prom + "_total"] == metric.value
            elif kind == "Histogram":
                assert samples[prom + "_count"] == metric.count
                assert samples[prom + "_sum"] == pytest.approx(metric.total)
                assert samples['%s_bucket{le="+Inf"}' % prom] == metric.count
            else:  # Gauge or derived both render plainly
                assert samples[prom] == pytest.approx(
                    float(db.metrics.value(name))
                )
            checked += 1
        assert checked == len(db.metrics.names()) > 10

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 0.6, 5.0, 50.0):
            h.observe(v)
        text = render_prometheus(reg, prefix="t")
        samples = self._parse(text)
        assert samples['t_h_bucket{le="1"}'] == 2
        assert samples['t_h_bucket{le="10"}'] == 3
        assert samples['t_h_bucket{le="+Inf"}'] == 4
        assert samples["t_h_count"] == 4
        assert samples["t_h_sum"] == pytest.approx(56.1)


class TestMonitorCli:
    def test_monitor_once_renders_every_panel(self, capsys):
        from repro.tools.monitor import main

        assert main(["--once"]) == 0
        out = capsys.readouterr().out
        assert "kimdb monitor" in out
        for panel in (
            "top waits",
            "active transactions",
            "blocked lock requests",
            "slow operations",
            "last query pipeline",
            "key statistics",
        ):
            assert panel in out
        # The demo workload manufactures a real lock wait.
        assert "Lock" in out

    def test_monitor_prometheus_mode(self, capsys):
        from repro.tools.monitor import main

        assert main(["--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE kimdb_waits_lock_count_total counter" in out
        assert "kimdb_query_executes_total" in out
