"""The observability subsystem: metrics, tracing, slow-op log,
EXPLAIN ANALYZE, and the engine wiring that feeds them."""

import json

import pytest

from repro import AttributeDef, Database
from repro.errors import KimDBError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    Span,
    Tracer,
    observability_payload,
    write_bench_artifact,
)


class TestCounterGaugeHistogram:
    def test_counter_semantics(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_gauge_semantics(self):
        g = Gauge("g")
        g.set(7)
        g.inc(3)
        g.dec()
        assert g.value == 9
        g.reset()
        assert g.value == 0

    def test_histogram_buckets_and_summary(self):
        h = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 5
        assert h.total == pytest.approx(556.0)
        assert h.min == 0.5
        assert h.max == 500.0
        assert h.mean == pytest.approx(111.2)
        # Two <=1.0, one <=10.0, one <=100.0, one overflow.
        assert h.bucket_counts == [2, 1, 1, 1]
        snap = h.snapshot()
        assert snap["buckets"] == {"le_1": 2, "le_10": 1, "le_100": 1}
        assert snap["overflow"] == 1
        # Quantiles report the covering bucket's upper bound.
        assert h.quantile(0.4) == 1.0
        assert h.quantile(1.0) == 500.0
        h.reset()
        assert h.count == 0 and h.min is None

    def test_histogram_timer(self):
        h = Histogram("h")
        with h.time():
            pass
        assert h.count == 1
        assert h.total >= 0.0

    def test_registry_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        with pytest.raises(KimDBError):
            reg.gauge("a.b")  # same name, different kind

    def test_registry_snapshot_value_reset(self):
        reg = MetricsRegistry()
        reg.counter("buffer.hits").inc(3)
        reg.counter("wal.appends").inc()
        reg.histogram("query.seconds").observe(0.002)
        reg.derived("buffer.hit_rate", lambda: 0.75)
        snap = reg.snapshot()
        assert snap["buffer.hits"] == 3
        assert snap["buffer.hit_rate"] == 0.75
        assert snap["query.seconds"]["count"] == 1
        assert reg.value("buffer.hits") == 3
        assert reg.value("query.seconds") == 1  # histograms report count
        assert reg.value("missing", default=None) is None
        # Prefixed snapshot/reset touch only the matching namespace.
        assert set(reg.snapshot(prefix="buffer.")) == {
            "buffer.hits",
            "buffer.hit_rate",
        }
        reg.reset(prefix="buffer.")
        assert reg.value("buffer.hits") == 0
        assert reg.value("wal.appends") == 1

    def test_disabled_registry_hands_out_null_instruments(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x")
        assert c is NULL_INSTRUMENT
        # The whole instrument surface is a no-op, including assignment
        # through the compat shims' ``value`` setter.
        c.inc()
        c.value = 99
        c.observe(1.0)
        with c.time():
            pass
        assert c.value == 0
        assert reg.snapshot() == {}


class TestTracer:
    def test_span_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert outer.finished and inner.finished
        assert inner.parent is outer
        assert outer.children == [inner]
        assert inner.depth == 1
        assert tracer.roots() == [outer]
        # Children finish (and enter the ring buffer) before parents.
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]
        assert "inner" in outer.render()

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(capacity=8)
        for i in range(20):
            with tracer.span("op%d" % i):
                pass
        assert len(tracer) == 8
        assert [s.name for s in tracer.spans()] == ["op%d" % i for i in range(12, 20)]
        assert tracer.last().name == "op19"

    def test_span_caps_stored_children(self):
        tracer = Tracer(capacity=4096)
        with tracer.span("parent") as parent:
            for _ in range(Span.MAX_CHILDREN + 7):
                with tracer.span("child"):
                    pass
        assert len(parent.children) == Span.MAX_CHILDREN
        assert parent.dropped_children == 7
        assert parent.to_dict()["dropped_children"] == 7

    def test_error_is_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        assert tracer.last("boom").error == "ValueError"

    def test_slow_op_threshold(self):
        ticks = iter([0.0, 1.0, 2.0, 2.0001])
        tracer = Tracer(slow_threshold=0.5, clock=lambda: next(ticks))
        with tracer.span("slow", n=1):
            pass  # 1.0s on the fake clock
        with tracer.span("fast"):
            pass  # 0.0001s
        slow = tracer.slow_ops()
        assert [op.name for op in slow] == ["slow"]
        assert slow[0].elapsed == pytest.approx(1.0)
        assert slow[0].tags == {"n": 1}

    def test_tracer_feeds_registry_counters(self):
        reg = MetricsRegistry()
        ticks = iter([0.0, 1.0])
        tracer = Tracer(slow_threshold=0.5, registry=reg, clock=lambda: next(ticks))
        with tracer.span("op"):
            pass
        assert reg.value("trace.spans") == 1
        assert reg.value("trace.slow_ops") == 1

    def test_slow_log_is_bounded_oldest_evicted(self):
        tracer = Tracer(slow_threshold=0.0, slow_capacity=4)
        for i in range(10):
            with tracer.span("op%d" % i):
                pass
        slow = tracer.slow_ops()
        assert [op.name for op in slow] == ["op%d" % i for i in range(6, 10)]

    def test_slow_ops_capture_in_finish_order(self):
        # A slow child finishes (and is captured) before its slow parent,
        # matching the ring buffer's child-before-parent ordering.
        tracer = Tracer(slow_threshold=0.0)
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        assert [op.name for op in tracer.slow_ops()] == ["child", "parent"]
        assert [s.name for s in tracer.spans()] == ["child", "parent"]

    def test_set_slow_threshold_at_runtime(self):
        ticks = iter([0.0, 1.0, 2.0, 3.0, 4.0, 4.5])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("before"):
            pass  # no threshold yet: not captured
        tracer.set_slow_threshold(0.9)
        with tracer.span("after"):
            pass  # 1.0s >= 0.9: captured
        tracer.set_slow_threshold(None)
        with tracer.span("disabled"):
            pass
        assert [op.name for op in tracer.slow_ops()] == ["after"]
        assert tracer.slow_ops()[0].threshold == 0.9
        with pytest.raises(ValueError):
            tracer.set_slow_threshold(-0.1)

    def test_disabled_tracer_yields_none(self):
        tracer = Tracer()
        tracer.enabled = False
        with tracer.span("ghost") as span:
            assert span is None
        assert len(tracer) == 0


def _vehicle_db():
    db = Database()
    db.define_class(
        "Vehicle",
        attributes=[
            AttributeDef("weight", "Integer"),
            AttributeDef("color", "String", default="white"),
        ],
    )
    for i in range(40):
        db.new("Vehicle", {"weight": 1000 + i, "color": "red" if i % 4 else "blue"})
    return db


class TestExplainAnalyze:
    def test_full_scan_plan_tree(self):
        db = _vehicle_db()
        result = db.explain("SELECT v FROM Vehicle v WHERE v.weight > 1030")
        tree = result.tree
        assert tree["op"] == "query"
        assert tree["actual_rows"] == 9
        assert tree["actual_seconds"] > 0.0
        ops = [child["op"] for child in tree["children"]]
        assert ops == ["extent-scan", "filter", "sort"]
        scan = tree["children"][0]
        assert scan["meta"]["access"] == "scan"
        assert scan["actual_rows"] == 40  # every object examined
        rendered = result.render()
        assert "-- plan --" in rendered and "extent-scan" in rendered

    def test_indexed_plan_tree(self):
        db = _vehicle_db()
        db.create_class_index("Vehicle", "weight")
        result = db.explain("SELECT v FROM Vehicle v WHERE v.weight = 1005")
        access = result.tree["children"][0]
        assert access["op"] == "index-eq-probe"
        assert access["meta"]["access"] == "index"
        assert access["actual_rows"] == 1
        assert result.result.stats.index_probes == 1
        assert "index-eq-probe" in str(result)

    def test_project_and_limit_nodes(self):
        db = _vehicle_db()
        result = db.explain(
            "SELECT v.color FROM Vehicle v WHERE v.weight >= 1000 LIMIT 5"
        )
        ops = {child["op"]: child for child in result.tree["children"]}
        assert ops["limit"]["actual_rows"] == 5
        assert ops["project"]["actual_rows"] == 5

    def test_plain_execute_skips_analysis(self):
        db = _vehicle_db()
        result = db.execute("SELECT v FROM Vehicle v WHERE v.weight > 1030")
        assert result.analysis is None


class TestEngineWiring:
    def test_single_snapshot_covers_the_engine(self):
        db = _vehicle_db()
        db.create_class_index("Vehicle", "weight")
        db.execute("SELECT v FROM Vehicle v WHERE v.weight = 1005")
        snap = db.metrics.snapshot()
        assert snap["buffer.hits"] > 0
        assert 0.0 <= snap["buffer.hit_rate"] <= 1.0
        assert snap["wal.appends"] > 0
        assert snap["wal.flushes"] > 0
        assert snap["locks.acquisitions"] > 0
        assert snap["locks.waits"] == 0
        assert snap["index.sc_Vehicle_weight.probes"] == 1
        assert snap["query.executes"] == 1
        assert snap["query.seconds"]["count"] == 1
        assert db.stats.snapshot()["metrics"] == snap

    def test_query_spans_nest_under_execute(self):
        db = _vehicle_db()
        db.execute("SELECT v FROM Vehicle v WHERE v.weight > 1030")
        root = db.tracer.last("query.execute")
        assert root is not None
        assert {child.name for child in root.children} >= {"query.parse", "query.plan", "query.run"}

    def test_metrics_off_database(self):
        db = Database(metrics_enabled=False)
        db.define_class("Thing", attributes=[AttributeDef("n", "Integer")])
        db.new("Thing", {"n": 1})
        result = db.execute("SELECT t FROM Thing t WHERE t.n = 1")
        assert len(result) == 1
        assert db.metrics.snapshot() == {}
        # Legacy stats accessors still answer (as zeros) on the off path.
        assert db.storage.buffer.stats.hits == 0

    def test_slow_op_threshold_plumbed_through(self):
        db = Database(slow_op_threshold=0.0)  # everything is "slow"
        db.define_class("Thing", attributes=[AttributeDef("n", "Integer")])
        db.new("Thing", {"n": 1})
        db.execute("SELECT t FROM Thing t WHERE t.n = 1")
        names = {op.name for op in db.tracer.slow_ops()}
        assert "query.execute" in names


class TestExport:
    def test_observability_payload_and_bench_artifact(self, tmp_path):
        db = _vehicle_db()
        db.execute("SELECT v FROM Vehicle v WHERE v.weight > 1030")
        payload = observability_payload(db.metrics, db.tracer, extra={"k": 1})
        assert payload["k"] == 1
        assert payload["metrics"]["query.executes"] == 1
        assert any(s["name"] == "query.execute" for s in payload["spans"])
        path = write_bench_artifact(
            "fig1 query", {"elapsed": 0.5}, db.metrics, db.tracer, directory=str(tmp_path)
        )
        assert path.endswith("BENCH_fig1_query.json")
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["bench"] == "fig1 query"
        assert loaded["elapsed"] == 0.5
        assert loaded["metrics"]["query.executes"] == 1
