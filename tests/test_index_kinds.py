"""Single-class, class-hierarchy and nested-attribute indexes."""

import pytest

from repro import AttributeDef, Database
from repro.bench.schemas import build_vehicle_schema, populate_vehicles
from repro.errors import SchemaError


@pytest.fixture
def vdb():
    db = Database()
    build_vehicle_schema(db)
    populate_vehicles(db, n_vehicles=120, n_companies=8, seed=7)
    return db


def weights_by_scan(db, classes):
    out = {}
    for cls in classes:
        for state in db.storage.scan_class(cls):
            out.setdefault(state.values["weight"], []).append(state.oid)
    return out


class TestSingleClassIndex:
    def test_only_direct_instances_indexed(self, vdb):
        index = vdb.create_class_index("Vehicle", "weight")
        direct = sum(1 for _ in vdb.storage.scan_class("Vehicle"))
        assert len(index) == direct

    def test_lookup_eq(self, vdb):
        index = vdb.create_class_index("Truck", "weight")
        state = next(iter(vdb.storage.scan_class("Truck")))
        oids = index.lookup_eq(state.values["weight"])
        assert state.oid in oids

    def test_covers_only_exact_scope(self, vdb):
        index = vdb.create_class_index("Vehicle", "weight")
        assert index.covers("Vehicle", ("weight",), {"Vehicle"})
        assert not index.covers("Vehicle", ("weight",), {"Vehicle", "Truck"})
        assert not index.covers("Vehicle", ("color",), {"Vehicle"})

    def test_maintenance_on_update(self, vdb):
        index = vdb.create_class_index("Vehicle", "weight")
        handle = vdb.new("Vehicle", {"weight": 111})
        assert handle.oid in index.lookup_eq(111)
        vdb.update(handle.oid, {"weight": 222})
        assert handle.oid not in index.lookup_eq(111)
        assert handle.oid in index.lookup_eq(222)

    def test_maintenance_on_delete(self, vdb):
        index = vdb.create_class_index("Vehicle", "weight")
        handle = vdb.new("Vehicle", {"weight": 333})
        vdb.delete(handle.oid)
        assert handle.oid not in index.lookup_eq(333)

    def test_unknown_attribute_rejected(self, vdb):
        with pytest.raises(SchemaError):
            vdb.create_class_index("Vehicle", "bogus")

    def test_noop_update_skips_maintenance(self, vdb):
        index = vdb.create_class_index("Vehicle", "weight")
        handle = vdb.new("Vehicle", {"weight": 444, "color": "red"})
        inserts_before = index.stats.inserts
        vdb.update(handle.oid, {"color": "blue"})
        assert index.stats.inserts == inserts_before


class TestClassHierarchyIndex:
    def test_indexes_whole_hierarchy(self, vdb):
        index = vdb.create_hierarchy_index("Vehicle", "weight")
        total = vdb.count("Vehicle", hierarchy=True)
        assert len(index) == total

    def test_scope_filtering(self, vdb):
        index = vdb.create_hierarchy_index("Vehicle", "weight")
        all_weights = weights_by_scan(
            vdb, ["Vehicle", "Automobile", "DomesticAutomobile", "Truck"]
        )
        weight = next(iter(all_weights))
        trucks_only = index.lookup_eq(weight, scope={"Truck"})
        for oid in trucks_only:
            assert vdb.class_of(oid) == "Truck"

    def test_covers_subscope(self, vdb):
        index = vdb.create_hierarchy_index("Vehicle", "weight")
        assert index.covers("Vehicle", ("weight",), {"Vehicle", "Truck"})
        assert index.covers("Automobile", ("weight",), {"Automobile", "DomesticAutomobile"})
        assert not index.covers("Company", ("weight",), {"Company"})

    def test_new_subclass_automatically_maintained(self, vdb):
        index = vdb.create_hierarchy_index("Vehicle", "weight")
        vdb.define_class("Motorcycle", superclasses=("Vehicle",))
        moto = vdb.new("Motorcycle", {"weight": 555})
        assert moto.oid in index.lookup_eq(555)
        assert "Motorcycle" in index.maintained_classes()

    def test_range_lookup_matches_scan(self, vdb):
        index = vdb.create_hierarchy_index("Vehicle", "weight")
        via_index = index.lookup_range(low=7500, include_low=False)
        via_scan = sorted(
            state.oid
            for cls in vdb.schema.hierarchy_of("Vehicle")
            for state in vdb.storage.scan_class(cls)
            if state.values["weight"] > 7500
        )
        assert via_index == via_scan

    def test_per_class_counts(self, vdb):
        index = vdb.create_hierarchy_index("Vehicle", "weight")
        counts = index.per_class_counts()
        assert set(counts) == {"Vehicle", "Automobile", "DomesticAutomobile", "Truck"}
        assert sum(counts.values()) == len(index)


class TestNestedAttributeIndex:
    def test_requires_multi_step_path(self, vdb):
        with pytest.raises(SchemaError):
            vdb.create_nested_index("Vehicle", ["weight"])

    def test_invalid_path_rejected(self, vdb):
        with pytest.raises(SchemaError):
            vdb.create_nested_index("Vehicle", ["manufacturer", "bogus"])

    def test_terminal_key_lookup(self, vdb):
        index = vdb.create_nested_index("Vehicle", ["manufacturer", "location"])
        via_index = index.lookup_eq("Detroit")
        expected = sorted(
            state.oid
            for cls in vdb.schema.hierarchy_of("Vehicle")
            for state in vdb.storage.scan_class(cls)
            if state.values.get("manufacturer")
            and vdb.get_state(state.values["manufacturer"]).values["location"] == "Detroit"
        )
        assert via_index == expected

    def test_intermediate_update_fixes_keys(self, vdb):
        index = vdb.create_nested_index("Vehicle", ["manufacturer", "location"])
        company = vdb.new("Company", {"name": "mover", "location": "Austin"})
        vehicle = vdb.new("Vehicle", {"weight": 1, "manufacturer": company.oid})
        assert vehicle.oid in index.lookup_eq("Austin")
        vdb.update(company.oid, {"location": "Tokyo"})
        assert vehicle.oid not in index.lookup_eq("Austin")
        assert vehicle.oid in index.lookup_eq("Tokyo")

    def test_target_first_step_update(self, vdb):
        index = vdb.create_nested_index("Vehicle", ["manufacturer", "location"])
        c1 = vdb.new("Company", {"name": "a", "location": "Austin"})
        c2 = vdb.new("Company", {"name": "b", "location": "Tokyo"})
        vehicle = vdb.new("Vehicle", {"weight": 1, "manufacturer": c1.oid})
        vdb.update(vehicle.oid, {"manufacturer": c2.oid})
        assert vehicle.oid not in index.lookup_eq("Austin")
        assert vehicle.oid in index.lookup_eq("Tokyo")

    def test_target_delete_removes_keys(self, vdb):
        index = vdb.create_nested_index("Vehicle", ["manufacturer", "location"])
        company = vdb.new("Company", {"name": "c", "location": "Austin"})
        vehicle = vdb.new("Vehicle", {"weight": 1, "manufacturer": company.oid})
        vdb.delete(vehicle.oid)
        assert vehicle.oid not in index.lookup_eq("Austin")

    def test_intermediate_delete_drops_dependents(self, vdb):
        index = vdb.create_nested_index("Vehicle", ["manufacturer", "location"])
        company = vdb.new("Company", {"name": "d", "location": "Austin"})
        vehicle = vdb.new("Vehicle", {"weight": 1, "manufacturer": company.oid})
        vdb.delete(company.oid)
        assert vehicle.oid not in index.lookup_eq("Austin")

    def test_broken_chain_contributes_no_key(self, vdb):
        index = vdb.create_nested_index("Vehicle", ["manufacturer", "location"])
        vehicle = vdb.new("Vehicle", {"weight": 1})  # no manufacturer
        assert vehicle.oid not in index.lookup_eq(None)

    def test_dependency_counting(self, vdb):
        index = vdb.create_nested_index("Vehicle", ["manufacturer", "location"])
        assert index.dependency_count() > 0


class TestIndexManager:
    def test_describe_catalog(self, vdb):
        vdb.create_hierarchy_index("Vehicle", "weight")
        vdb.create_nested_index("Vehicle", ["manufacturer", "location"])
        catalog = vdb.indexes.describe()
        kinds = {entry["kind"] for entry in catalog}
        assert kinds == {"class-hierarchy", "nested-attribute"}

    def test_duplicate_name_rejected(self, vdb):
        vdb.create_hierarchy_index("Vehicle", "weight", name="w")
        with pytest.raises(SchemaError):
            vdb.create_class_index("Vehicle", "weight", name="w")

    def test_drop_index(self, vdb):
        vdb.create_hierarchy_index("Vehicle", "weight", name="w")
        vdb.indexes.drop_index("w")
        assert "w" not in vdb.indexes.names()
        with pytest.raises(SchemaError):
            vdb.indexes.drop_index("w")

    def test_selection_prefers_nested_over_hierarchy(self, vdb):
        vdb.create_hierarchy_index("Vehicle", "weight")
        nested = vdb.create_nested_index("Vehicle", ["manufacturer", "location"])
        scope = set(vdb.schema.hierarchy_of("Vehicle"))
        chosen = vdb.indexes.find_index("Vehicle", ("manufacturer", "location"), scope)
        assert chosen is nested

    def test_selection_prefers_hierarchy_over_single(self, vdb):
        single = vdb.create_class_index("Vehicle", "weight")
        hierarchy = vdb.create_hierarchy_index("Vehicle", "weight")
        assert (
            vdb.indexes.find_index("Vehicle", ("weight",), {"Vehicle"}) is hierarchy
        )
        # But single-class still usable when it is the only cover.
        vdb.indexes.drop_index(hierarchy.name)
        assert vdb.indexes.find_index("Vehicle", ("weight",), {"Vehicle"}) is single

    def test_no_cover_returns_none(self, vdb):
        assert vdb.indexes.find_index("Vehicle", ("color",), {"Vehicle"}) is None

    def test_rebuild_restores_dropped_state(self, vdb):
        index = vdb.create_hierarchy_index("Vehicle", "weight")
        size = len(index)
        index.clear()
        assert len(index) == 0
        vdb.indexes.rebuild(index.name)
        assert len(index) == size
