"""kimdb DL: the DDL/DML/DCL statement language."""

import pytest

from repro import Database
from repro.authz import attach as attach_authz
from repro.errors import AuthorizationError, QuerySyntaxError
from repro.lang import Interpreter
from repro.views import attach as attach_views


@pytest.fixture
def interp():
    db = Database()
    attach_views(db)
    interpreter = Interpreter(db)
    interpreter.run_script(
        """
        CREATE CLASS Company (name String REQUIRED, location String);
        CREATE CLASS AutoCompany UNDER Company;
        CREATE CLASS Vehicle (
            weight Integer,
            color String DEFAULT 'white',
            manufacturer Company
        );
        CREATE CLASS Truck UNDER Vehicle (payload Integer);
        """
    )
    return interpreter


def insert_fixture(interp):
    gm = interp.execute(
        "INSERT INTO Company SET name = 'GM', location = 'Detroit'"
    ).value
    interp.execute(
        "INSERT INTO Vehicle SET weight = 8000, manufacturer = @%d" % gm.oid.value
    )
    interp.execute(
        "INSERT INTO Truck SET weight = 9500, payload = 10, manufacturer = @%d"
        % gm.oid.value
    )
    return gm


class TestDDL:
    def test_create_class_defaults(self, interp):
        vehicle = interp.execute("INSERT INTO Vehicle SET weight = 1").value
        assert vehicle["color"] == "white"

    def test_create_class_under(self, interp):
        assert interp.db.schema.is_subclass("Truck", "Vehicle")
        assert interp.db.schema.is_subclass("AutoCompany", "Company")

    def test_attribute_flags(self, interp):
        interp.execute(
            "CREATE CLASS Assembly (parts Assembly MULTI COMPOSITE EXCLUSIVE DEPENDENT)"
        )
        attr = interp.db.schema.attribute("Assembly", "parts")
        assert attr.multi and attr.composite and attr.exclusive and attr.dependent

    def test_create_index_kinds(self, interp):
        result = interp.execute("CREATE INDEX ON Vehicle(weight)")
        assert result.value.kind == "class-hierarchy"
        result = interp.execute("CREATE INDEX sc_w ON Truck(weight) CLASS")
        assert result.value.kind == "single-class"
        result = interp.execute("CREATE INDEX ON Vehicle(manufacturer.location)")
        assert result.value.kind == "nested-attribute"

    def test_drop_index(self, interp):
        interp.execute("CREATE INDEX w ON Vehicle(weight)")
        interp.execute("DROP INDEX w")
        assert "w" not in interp.db.indexes.names()

    def test_alter_class_attribute_cycle(self, interp):
        interp.execute("ALTER CLASS Vehicle ADD ATTRIBUTE vin String")
        assert "vin" in interp.db.schema.attributes("Truck")
        interp.execute("ALTER CLASS Vehicle RENAME ATTRIBUTE vin TO serial")
        assert "serial" in interp.db.schema.attributes("Vehicle")
        interp.execute("ALTER CLASS Vehicle DROP ATTRIBUTE serial")
        assert "serial" not in interp.db.schema.attributes("Vehicle")

    def test_alter_superclass_edges(self, interp):
        interp.execute("CREATE CLASS Electric (range_km Integer DEFAULT 300)")
        interp.execute("ALTER CLASS Truck ADD SUPERCLASS Electric")
        assert "range_km" in interp.db.schema.attributes("Truck")
        interp.execute("ALTER CLASS Truck DROP SUPERCLASS Electric")
        assert "range_km" not in interp.db.schema.attributes("Truck")

    def test_rename_and_drop_class(self, interp):
        interp.execute("CREATE CLASS Temp")
        interp.execute("RENAME CLASS Temp TO Scratch")
        assert interp.db.schema.has_class("Scratch")
        interp.execute("DROP CLASS Scratch")
        assert not interp.db.schema.has_class("Scratch")

    def test_drop_class_with_migration(self, interp):
        insert_fixture(interp)
        result = interp.execute("DROP CLASS Truck MIGRATE TO Vehicle")
        assert result.value == 1
        assert interp.db.count("Vehicle", hierarchy=False) == 2

    def test_create_view_and_query(self, interp):
        insert_fixture(interp)
        interp.execute(
            "CREATE VIEW Heavy AS SELECT v FROM Vehicle v WHERE v.weight > 8500"
        )
        result = interp.execute("SELECT h FROM Heavy h")
        assert len(result.value) == 1


class TestDML:
    def test_insert_returns_handle(self, interp):
        result = interp.execute("INSERT INTO Company SET name = 'Ford'")
        assert result.kind == "inserted"
        assert result.value["name"] == "Ford"

    def test_insert_with_oid_reference(self, interp):
        gm = insert_fixture(interp)
        vehicles = interp.execute(
            "SELECT v FROM Vehicle v WHERE v.manufacturer.name = 'GM'"
        ).value
        assert len(vehicles) == 2
        assert vehicles[0].fetch("manufacturer").oid == gm.oid

    def test_insert_list_literal(self, interp):
        interp.execute("CREATE CLASS Bag (tags String MULTI)")
        bag = interp.execute("INSERT INTO Bag SET tags = ['a', 'b']").value
        assert bag["tags"] == ["a", "b"]

    def test_update_where(self, interp):
        insert_fixture(interp)
        result = interp.execute("UPDATE Vehicle SET color = 'red' WHERE weight > 9000")
        assert result.value == 1
        reds = interp.execute("SELECT v FROM Vehicle v WHERE v.color = 'red'").value
        assert len(reds) == 1

    def test_update_with_nested_where(self, interp):
        insert_fixture(interp)
        result = interp.execute(
            "UPDATE Vehicle SET color = 'blue' WHERE manufacturer.location = 'Detroit'"
        )
        assert result.value == 2

    def test_update_without_where_touches_all(self, interp):
        insert_fixture(interp)
        result = interp.execute("UPDATE Vehicle SET color = 'grey'")
        assert result.value == 2

    def test_delete_where(self, interp):
        insert_fixture(interp)
        result = interp.execute("DELETE FROM Vehicle WHERE weight < 9000")
        assert result.value == 1
        assert interp.db.count("Vehicle") == 1

    def test_select_projection_rows(self, interp):
        insert_fixture(interp)
        result = interp.execute("SELECT v.weight FROM Vehicle v ORDER BY v.weight")
        assert result.kind == "rows"
        assert [row["weight"] for row in result.value] == [8000, 9500]

    def test_select_aggregate(self, interp):
        insert_fixture(interp)
        result = interp.execute("SELECT COUNT(v), MAX(v.weight) FROM Vehicle v")
        assert result.value[0]["count(*)"] == 2
        assert result.value[0]["max(weight)"] == 9500


class TestDCL:
    def test_transaction_commit(self, interp):
        interp.execute("BEGIN")
        interp.execute("INSERT INTO Company SET name = 'Kept'")
        interp.execute("COMMIT")
        assert interp.execute(
            "SELECT c FROM Company c WHERE c.name = 'Kept'"
        ).value

    def test_transaction_abort(self, interp):
        interp.execute("BEGIN TRANSACTION")
        interp.execute("INSERT INTO Company SET name = 'Lost'")
        interp.execute("ROLLBACK")
        assert not interp.execute(
            "SELECT c FROM Company c WHERE c.name = 'Lost'"
        ).value

    def test_commit_without_begin_rejected(self, interp):
        with pytest.raises(QuerySyntaxError):
            interp.execute("COMMIT")

    def test_grant_and_deny(self, interp):
        authz = attach_authz(interp.db)
        authz.add_role("clerk")
        interp.execute("GRANT read ON Company TO clerk")
        with authz.as_subject("clerk"):
            assert interp.db.authz.allowed("read", "Company")
            assert not interp.db.authz.allowed("read", "Vehicle")
        interp.execute("DENY read ON Company TO clerk")
        with authz.as_subject("clerk"):
            assert not interp.db.authz.allowed("read", "Company")

    def test_grant_without_authz_rejected(self, interp):
        with pytest.raises(QuerySyntaxError):
            interp.execute("GRANT read ON Company TO clerk")


class TestScriptsAndErrors:
    def test_run_script_with_comments_and_strings(self, interp):
        results = interp.run_script(
            """
            -- semicolons inside strings are preserved
            INSERT INTO Company SET name = 'a;b';
            INSERT INTO Company SET name = 'c';
            """
        )
        assert len(results) == 2
        names = {r.value["name"] for r in results}
        assert names == {"a;b", "c"}

    def test_unknown_statement(self, interp):
        with pytest.raises(QuerySyntaxError):
            interp.execute("EXPLODE Vehicle")

    def test_trailing_garbage_rejected(self, interp):
        interp.execute("CREATE INDEX foo ON Vehicle(weight)")
        with pytest.raises(QuerySyntaxError):
            interp.execute("DROP INDEX foo bar baz")

    def test_describe(self, interp):
        result = interp.execute("DESCRIBE Truck")
        assert "payload" in result.value
        assert "[from Vehicle]" in result.value
