"""The perf-regression gate: comparisons, tolerance, and CLI behaviour."""

import json
import os

from repro.tools import benchgate


def _write_artifact(directory, name, metrics, series=None):
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "BENCH_%s.json" % name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {"bench": name, "metrics": metrics, "series": series or []}, handle
        )
    return path


BASE_METRICS = {
    "pager.reads": 1000,
    "wal.appends": 5000,
    "locks.acquisitions": 12000,
    "buffer.hits": 99999,  # not a gated cost counter
    "query.seconds": {"count": 3, "sum": 0.1},  # histogram: skipped
    "buffer.hit_rate": 1.0,
}


class TestCompare:
    def test_identical_metrics_pass(self, tmp_path):
        _write_artifact(str(tmp_path / "base"), "e1", BASE_METRICS)
        _write_artifact(str(tmp_path / "fresh"), "e1", BASE_METRICS)
        findings = benchgate.compare_dirs(str(tmp_path / "base"), str(tmp_path / "fresh"))
        assert findings == []

    def test_artificial_regression_fails(self, tmp_path):
        _write_artifact(str(tmp_path / "base"), "e1", BASE_METRICS)
        fresh = dict(BASE_METRICS, **{"pager.reads": 2000})  # +100% > 25%
        _write_artifact(str(tmp_path / "fresh"), "e1", fresh)
        findings = benchgate.compare_dirs(str(tmp_path / "base"), str(tmp_path / "fresh"))
        assert [f.kind for f in findings] == ["regression"]
        assert findings[0].metric == "pager.reads"
        assert findings[0].delta_pct == 100.0

    def test_within_tolerance_passes(self, tmp_path):
        _write_artifact(str(tmp_path / "base"), "e1", BASE_METRICS)
        fresh = dict(BASE_METRICS, **{"pager.reads": 1200})  # +20% < 25%
        _write_artifact(str(tmp_path / "fresh"), "e1", fresh)
        assert benchgate.compare_dirs(str(tmp_path / "base"), str(tmp_path / "fresh")) == []

    def test_improvement_reported_but_not_a_regression(self, tmp_path):
        _write_artifact(str(tmp_path / "base"), "e1", BASE_METRICS)
        fresh = dict(BASE_METRICS, **{"wal.appends": 2000})  # -60%
        _write_artifact(str(tmp_path / "fresh"), "e1", fresh)
        findings = benchgate.compare_dirs(str(tmp_path / "base"), str(tmp_path / "fresh"))
        assert [f.kind for f in findings] == ["improvement"]

    def test_min_base_floor_suppresses_small_count_noise(self, tmp_path):
        base = dict(BASE_METRICS, **{"pager.writes": 2})
        fresh = dict(BASE_METRICS, **{"pager.writes": 8})  # 4x, but tiny
        _write_artifact(str(tmp_path / "base"), "e1", base)
        _write_artifact(str(tmp_path / "fresh"), "e1", fresh)
        assert benchgate.compare_dirs(str(tmp_path / "base"), str(tmp_path / "fresh")) == []

    def test_non_cost_counters_are_ignored(self, tmp_path):
        _write_artifact(str(tmp_path / "base"), "e1", BASE_METRICS)
        fresh = dict(BASE_METRICS, **{"buffer.hits": 1})  # massive change, not gated
        _write_artifact(str(tmp_path / "fresh"), "e1", fresh)
        assert benchgate.compare_dirs(str(tmp_path / "base"), str(tmp_path / "fresh")) == []

    def test_missing_fresh_artifact_is_a_regression(self, tmp_path):
        _write_artifact(str(tmp_path / "base"), "e1", BASE_METRICS)
        os.makedirs(str(tmp_path / "fresh"))
        findings = benchgate.compare_dirs(str(tmp_path / "base"), str(tmp_path / "fresh"))
        assert [f.kind for f in findings] == ["missing"]

    def test_new_benchmark_without_baseline_passes(self, tmp_path):
        os.makedirs(str(tmp_path / "base"))
        _write_artifact(str(tmp_path / "fresh"), "new_bench", BASE_METRICS)
        assert benchgate.compare_dirs(str(tmp_path / "base"), str(tmp_path / "fresh")) == []

    def test_timings_gated_only_when_asked(self, tmp_path):
        series_base = [{"plan": "scan", "ms": 10.0}]
        series_slow = [{"plan": "scan", "ms": 100.0}]
        _write_artifact(str(tmp_path / "base"), "e1", BASE_METRICS, series_base)
        _write_artifact(str(tmp_path / "fresh"), "e1", BASE_METRICS, series_slow)
        quiet = benchgate.compare_dirs(str(tmp_path / "base"), str(tmp_path / "fresh"))
        assert quiet == []
        loud = benchgate.compare_dirs(
            str(tmp_path / "base"),
            str(tmp_path / "fresh"),
            include_timings=True,
            min_base=1.0,
        )
        assert [f.kind for f in loud] == ["regression"]
        assert loud[0].metric == "ms:scan"


class TestListDeltas:
    def test_list_rows_include_steady_counters(self, tmp_path):
        _write_artifact(str(tmp_path / "base"), "e1", BASE_METRICS)
        fresh = dict(BASE_METRICS, **{"pager.reads": 1100})
        _write_artifact(str(tmp_path / "fresh"), "e1", fresh)
        rows = benchgate.list_rows(str(tmp_path / "base"), str(tmp_path / "fresh"))
        # Steady counters appear too — drift under tolerance stays visible.
        assert ("e1", "wal.appends", 5000.0, 5000.0) in rows
        assert ("e1", "pager.reads", 1000.0, 1100.0) in rows
        # Non-gated counters (buffer.hits) stay out of the table.
        assert not any(metric == "buffer.hits" for _, metric, _, _ in rows)

    def test_list_rows_mark_one_sided_counters(self, tmp_path):
        _write_artifact(str(tmp_path / "base"), "e1", {"pager.reads": 10})
        _write_artifact(
            str(tmp_path / "fresh"), "e1", {"query.cost.candidates": 4}
        )
        rows = benchgate.list_rows(str(tmp_path / "base"), str(tmp_path / "fresh"))
        assert ("e1", "pager.reads", 10.0, None) in rows
        assert ("e1", "query.cost.candidates", None, 4.0) in rows

    def test_markdown_render_deltas(self):
        rows = [
            ("e1", "pager.reads", 1000.0, 1100.0),
            ("e1", "query.cost.candidates", None, 4.0),
            ("e1", "wal.appends", 0.0, 7.0),
        ]
        table = benchgate.render_markdown_deltas(rows)
        assert table.startswith("### benchgate counter deltas")
        assert "| e1 | pager.reads | 1000 | 1100 | +10.0% |" in table
        assert "| e1 | query.cost.candidates | — | 4 | n/a |" in table
        assert "| e1 | wal.appends | 0 | 7 | +inf |" in table

    def test_cli_list_prints_and_appends_step_summary(
        self, tmp_path, capsys, monkeypatch
    ):
        base_dir = str(tmp_path / "base")
        fresh_dir = str(tmp_path / "fresh")
        _write_artifact(base_dir, "e1", BASE_METRICS)
        # A large regression must NOT fail --list: it reports, not gates.
        _write_artifact(fresh_dir, "e1", dict(BASE_METRICS, **{"pager.reads": 9000}))
        summary = tmp_path / "step-summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert (
            benchgate.main(["--baseline", base_dir, "--fresh", fresh_dir, "--list"])
            == 0
        )
        out = capsys.readouterr().out
        assert "benchgate counter deltas" in out
        assert "+800.0%" in out
        assert "benchgate counter deltas" in summary.read_text()

    def test_cli_list_without_step_summary_env(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        base_dir = str(tmp_path / "base")
        _write_artifact(base_dir, "e1", BASE_METRICS)
        _write_artifact(str(tmp_path / "fresh"), "e1", BASE_METRICS)
        assert (
            benchgate.main(
                ["--baseline", base_dir, "--fresh", str(tmp_path / "fresh"), "--list"]
            )
            == 0
        )
        assert "+0.0%" in capsys.readouterr().out


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        base_dir = str(tmp_path / "base")
        fresh_dir = str(tmp_path / "fresh")
        _write_artifact(base_dir, "e1", BASE_METRICS)
        _write_artifact(fresh_dir, "e1", dict(BASE_METRICS, **{"pager.reads": 9000}))
        assert benchgate.main(["--baseline", base_dir, "--fresh", fresh_dir]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "pager.reads" in out
        _write_artifact(fresh_dir, "e1", BASE_METRICS)
        assert benchgate.main(["--baseline", base_dir, "--fresh", fresh_dir]) == 0

    def test_missing_baseline_dir_is_not_fatal(self, tmp_path):
        assert (
            benchgate.main(
                ["--baseline", str(tmp_path / "nope"), "--fresh", str(tmp_path)]
            )
            == 0
        )

    def test_update_writes_baselines(self, tmp_path):
        base_dir = str(tmp_path / "base")
        fresh_dir = str(tmp_path / "fresh")
        _write_artifact(fresh_dir, "e1", BASE_METRICS)
        assert (
            benchgate.main(
                ["--baseline", base_dir, "--fresh", fresh_dir, "--update"]
            )
            == 0
        )
        assert os.path.exists(os.path.join(base_dir, "BENCH_e1.json"))
