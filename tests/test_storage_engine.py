"""Pagers, buffer pool, heap files, serializer, storage manager."""

import pytest

from repro.core.obj import ObjectState
from repro.core.oid import OID
from repro.errors import ObjectNotFoundError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.heap import RID, HeapFile
from repro.storage.manager import StorageManager
from repro.storage.pager import FilePager, MemoryPager, open_pager
from repro.storage.serializer import decode_object, encode_object


class TestPagers:
    def test_memory_alloc_and_rw(self):
        pager = MemoryPager(page_size=256)
        pid = pager.allocate()
        pager.write_page(pid, b"a" * 256)
        assert pager.read_page(pid) == b"a" * 256

    def test_memory_wrong_size_write(self):
        pager = MemoryPager(256)
        pid = pager.allocate()
        with pytest.raises(StorageError):
            pager.write_page(pid, b"short")

    def test_memory_unknown_page(self):
        with pytest.raises(StorageError):
            MemoryPager(256).read_page(0)

    def test_stats_counted(self):
        pager = MemoryPager(256)
        pid = pager.allocate()
        pager.write_page(pid, bytes(256))
        pager.read_page(pid)
        assert pager.stats.snapshot() == {"reads": 1, "writes": 1, "allocations": 1}

    def test_file_pager_persists(self, tmp_path):
        path = str(tmp_path / "pages.db")
        pager = FilePager(path, page_size=256)
        pid = pager.allocate()
        pager.write_page(pid, b"z" * 256)
        pager.sync()
        pager.close()
        reopened = FilePager(path, page_size=256)
        assert reopened.page_count == 1
        assert reopened.read_page(pid) == b"z" * 256
        reopened.close()

    def test_file_pager_geometry_mismatch(self, tmp_path):
        path = str(tmp_path / "pages.db")
        FilePager(path, page_size=256).close()
        with pytest.raises(StorageError):
            FilePager(path, page_size=512)

    def test_file_pager_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "not_a_db"
        path.write_bytes(b"x" * 64)
        with pytest.raises(StorageError):
            FilePager(str(path), page_size=256)

    def test_open_pager_factory(self, tmp_path):
        assert isinstance(open_pager(None), MemoryPager)
        pager = open_pager(str(tmp_path / "f.db"))
        assert isinstance(pager, FilePager)
        pager.close()

    def test_tiny_page_size_rejected(self):
        with pytest.raises(StorageError):
            MemoryPager(16)


class TestBufferPool:
    def test_hit_after_fault(self):
        pool = BufferPool(MemoryPager(256), capacity=4)
        pid = pool.new_page()
        pool.flush_all()
        pool.drop_all()
        pool.get_page(pid)
        pool.get_page(pid)
        assert pool.stats.faults == 1
        assert pool.stats.hits == 1

    def test_eviction_writes_dirty_pages(self):
        pool = BufferPool(MemoryPager(256), capacity=2)
        pids = []
        for position in range(3):
            pid = pool.new_page()
            page = pool.get_page(pid)
            page.insert(b"rec%d" % position)
            pool.mark_dirty(pid)
            pids.append(pid)
        # Capacity 2 < 3 pages: at least one eviction flushed its data.
        assert pool.stats.evictions >= 1
        pool.flush_all()
        pool.drop_all()
        for position, pid in enumerate(pids):
            assert pool.get_page(pid).read(0) == b"rec%d" % position

    def test_lru_order(self):
        pool = BufferPool(MemoryPager(256), capacity=2)
        a = pool.new_page()
        b = pool.new_page()
        pool.get_page(a)  # a becomes most-recent
        pool.new_page()  # evicts b
        assert a in list(pool.resident_pages())
        assert b not in list(pool.resident_pages())

    def test_mark_dirty_nonresident_fails(self):
        pool = BufferPool(MemoryPager(256), capacity=2)
        with pytest.raises(StorageError):
            pool.mark_dirty(99)

    def test_capacity_validation(self):
        with pytest.raises(StorageError):
            BufferPool(MemoryPager(256), capacity=0)

    def test_drop_all_forces_cold_cache(self):
        pool = BufferPool(MemoryPager(256), capacity=8)
        pid = pool.new_page()
        pool.drop_all()
        pool.stats.reset()
        pool.get_page(pid)
        assert pool.stats.faults == 1


class TestHeapFile:
    @pytest.fixture
    def heap(self):
        return HeapFile(BufferPool(MemoryPager(256), capacity=16), "test")

    def test_insert_read(self, heap):
        rid = heap.insert(b"record")
        assert heap.read(rid) == b"record"

    def test_spills_to_new_pages(self, heap):
        rids = [heap.insert(b"x" * 100) for _ in range(10)]
        assert heap.page_count > 1
        assert len({rid.page_id for rid in rids}) == heap.page_count

    def test_update_in_place_keeps_rid(self, heap):
        rid = heap.insert(b"abc")
        assert heap.update(rid, b"abd") == rid

    def test_update_relocates_when_full(self, heap):
        rid = heap.insert(b"a" * 100)
        heap.insert(b"b" * 100)
        new_rid = heap.update(rid, b"c" * 200)
        assert heap.read(new_rid) == b"c" * 200

    def test_delete(self, heap):
        rid = heap.insert(b"gone")
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.read(rid)

    def test_scan_in_page_order(self, heap):
        payloads = [b"r%03d" % position for position in range(20)]
        for payload in payloads:
            heap.insert(payload)
        assert [body for _rid, body in heap.scan()] == payloads

    def test_insert_near_collocates(self, heap):
        anchor = heap.insert(b"anchor")
        for _ in range(3):
            heap.insert(b"x" * 120)  # push tail to later pages
        near = heap.insert(b"friend", near=anchor)
        assert near.page_id == anchor.page_id

    def test_foreign_rid_rejected(self, heap):
        with pytest.raises(StorageError):
            heap.read(RID(999, 0))


class TestSerializer:
    def test_roundtrip_all_types(self):
        state = ObjectState(
            OID(42, "Vehicle"),
            "Vehicle",
            {
                "i": 12345,
                "neg": -99,
                "big": 2 ** 60,
                "f": 3.25,
                "s": "détroit",
                "b": b"\x00\xff",
                "t": True,
                "fa": False,
                "n": None,
                "ref": OID(7),
                "xs": [1, "two", OID(3), [4, 5]],
            },
        )
        decoded = decode_object(encode_object(state))
        assert decoded.oid == state.oid
        assert decoded.class_name == "Vehicle"
        assert decoded.values == state.values

    def test_empty_values(self):
        state = ObjectState(OID(1), "A", {})
        assert decode_object(encode_object(state)).values == {}

    def test_corrupt_record_raises(self):
        with pytest.raises(StorageError):
            decode_object(b"\x00\x01garbage")

    def test_bool_not_confused_with_int(self):
        state = ObjectState(OID(1), "A", {"x": True, "y": 1})
        decoded = decode_object(encode_object(state))
        assert decoded.values["x"] is True
        assert decoded.values["y"] == 1 and decoded.values["y"] is not True

    def test_unstorable_value_rejected(self):
        state = ObjectState(OID(1), "A", {"x": object()})
        with pytest.raises(StorageError):
            encode_object(state)


class TestStorageManager:
    def test_store_load(self):
        storage = StorageManager()
        state = ObjectState(OID(1), "A", {"x": 1})
        storage.store_new(state)
        assert storage.load(OID(1)).values == {"x": 1}

    def test_duplicate_store_rejected(self):
        storage = StorageManager()
        storage.store_new(ObjectState(OID(1), "A", {}))
        with pytest.raises(StorageError):
            storage.store_new(ObjectState(OID(1), "A", {}))

    def test_overwrite(self):
        storage = StorageManager()
        storage.store_new(ObjectState(OID(1), "A", {"x": 1}))
        storage.overwrite(ObjectState(OID(1), "A", {"x": 2}))
        assert storage.load(OID(1)).values["x"] == 2

    def test_remove_returns_final_state(self):
        storage = StorageManager()
        storage.store_new(ObjectState(OID(1), "A", {"x": 1}))
        removed = storage.remove(OID(1))
        assert removed.values == {"x": 1}
        assert not storage.contains(OID(1))
        with pytest.raises(ObjectNotFoundError):
            storage.load(OID(1))

    def test_scan_class_only_direct_instances(self):
        storage = StorageManager()
        storage.store_new(ObjectState(OID(1), "A", {}))
        storage.store_new(ObjectState(OID(2), "B", {}))
        assert [s.oid for s in storage.scan_class("A")] == [OID(1)]

    def test_class_migration_on_overwrite(self):
        storage = StorageManager()
        storage.store_new(ObjectState(OID(1), "A", {"x": 1}))
        storage.overwrite(ObjectState(OID(1), "B", {"x": 1}))
        assert storage.class_of(OID(1)) == "B"
        assert storage.oids_of_class("A") == []
        assert storage.oids_of_class("B") == [OID(1)]

    def test_durable_roundtrip(self, tmp_path):
        path = str(tmp_path / "store.db")
        storage = StorageManager(path)
        for value in range(50):
            storage.store_new(ObjectState(OID(value + 1), "A", {"x": value}))
        storage.close()
        reopened = StorageManager(path)
        assert len(reopened.directory) == 50
        assert reopened.load(OID(50)).values["x"] == 49
        assert reopened.directory.max_oid_value() == 50
        reopened.close()

    def test_grown_record_relocation_tracked(self):
        storage = StorageManager(page_size=256)
        storage.store_new(ObjectState(OID(1), "A", {"s": "x"}))
        storage.store_new(ObjectState(OID(2), "A", {"s": "y" * 60}))
        storage.overwrite(ObjectState(OID(1), "A", {"s": "z" * 150}))
        assert storage.load(OID(1)).values["s"] == "z" * 150
