"""Version mechanism — the *lower* layer of the paper's Section 5.5.

Maintains, per versionable object, a *generic object* (the version set)
and a derivation DAG of version instances.  All installation-specific
questions (who may update, what a generic reference binds to, what
deriving does to the parent) are delegated to a pluggable
:class:`~repro.versions.policies.VersionPolicy`.

The manager enforces version semantics through database hooks: updating
or deleting a frozen version raises :class:`~repro.errors.VersionError`
no matter which API path performed the mutation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..core.oid import OID
from ..errors import VersionError
from .policies import ChouKimPolicy, VersionPolicy, validate_status

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database


class VersionRecord:
    """Metadata for one version instance."""

    __slots__ = ("oid", "generic_id", "number", "parent", "status", "children")

    def __init__(
        self,
        oid: OID,
        generic_id: int,
        number: int,
        parent: Optional[OID],
        status: str,
    ) -> None:
        self.oid = oid
        self.generic_id = generic_id
        self.number = number
        self.parent = parent
        self.status = status
        self.children: List[OID] = []

    def __repr__(self) -> str:
        return "<VersionRecord %r v%d of generic %d (%s)>" % (
            self.oid,
            self.number,
            self.generic_id,
            self.status,
        )


class VersionManager:
    """Derivation-graph bookkeeping and policy enforcement."""

    def __init__(self, db: "Database", policy: Optional[VersionPolicy] = None) -> None:
        self.db = db
        self.policy = policy or ChouKimPolicy()
        self._records: Dict[OID, VersionRecord] = {}
        self._generics: Dict[int, List[OID]] = {}
        self._next_generic = 1
        db.add_pre_hook(self._pre_hook)

    # -- database hook: enforce version semantics everywhere --------------

    def _pre_hook(self, kind: str, old, new) -> None:
        if kind == "insert":
            return
        state = old
        record = self._records.get(state.oid)
        if record is None:
            return
        if kind == "update" and not self.policy.can_update(record.status):
            raise VersionError(
                "version %r is %s and not updatable under policy %s"
                % (state.oid, record.status, self.policy.name)
            )
        if kind == "delete":
            if not self.policy.can_delete(record.status):
                raise VersionError(
                    "version %r is %s and not deletable under policy %s"
                    % (state.oid, record.status, self.policy.name)
                )
            if record.children:
                raise VersionError(
                    "version %r has derived versions and cannot be deleted"
                    % (state.oid,)
                )
            self._forget(record)

    def _forget(self, record: VersionRecord) -> None:
        self._records.pop(record.oid, None)
        members = self._generics.get(record.generic_id)
        if members is not None:
            members.remove(record.oid)
            if not members:
                del self._generics[record.generic_id]
        if record.parent is not None:
            parent = self._records.get(record.parent)
            if parent is not None and record.oid in parent.children:
                parent.children.remove(record.oid)

    # -- creation / derivation ------------------------------------------------

    def create_versioned(
        self, class_name: str, values: Optional[Dict[str, Any]] = None
    ) -> OID:
        """Create the first version of a new generic object."""
        handle = self.db.new(class_name, values)
        generic_id = self._next_generic
        self._next_generic += 1
        record = VersionRecord(handle.oid, generic_id, 1, None, "transient")
        self._records[handle.oid] = record
        self._generics[generic_id] = [handle.oid]
        return handle.oid

    def derive(self, parent_oid: OID, changes: Optional[Dict[str, Any]] = None) -> OID:
        """Derive a new version from an existing one (copy + changes)."""
        parent = self.record_of(parent_oid)
        if not self.policy.can_derive(parent.status):
            raise VersionError(
                "cannot derive from %s version %r under policy %s"
                % (parent.status, parent_oid, self.policy.name)
            )
        state = self.db.get_state(parent_oid)
        values = dict(state.values)
        if changes:
            values.update(changes)
        handle = self.db.new(state.class_name, values)
        members = self._generics[parent.generic_id]
        number = max(self._records[m].number for m in members) + 1
        record = VersionRecord(
            handle.oid,
            parent.generic_id,
            number,
            parent_oid,
            self.policy.derived_status(parent.status),
        )
        self._records[handle.oid] = record
        members.append(handle.oid)
        parent.children.append(handle.oid)
        if self.db.notifications is not None:
            self.db.notifications.emit_derivation(parent_oid, handle.oid)
        return handle.oid

    def promote(self, oid: OID) -> str:
        """Advance a version to the next status in the policy's ladder."""
        record = self.record_of(oid)
        next_status = self.policy.promotion_of(record.status)
        if next_status is None:
            raise VersionError(
                "version %r is already %s (final)" % (oid, record.status)
            )
        validate_status(next_status)
        record.status = next_status
        return next_status

    # -- lookups --------------------------------------------------------------

    def record_of(self, oid: OID) -> VersionRecord:
        record = self._records.get(oid)
        if record is None:
            raise VersionError("object %r is not a registered version" % (oid,))
        return record

    def is_versioned(self, oid: OID) -> bool:
        return oid in self._records

    def generic_of(self, oid: OID) -> int:
        return self.record_of(oid).generic_id

    def versions_of_generic(self, generic_id: int) -> List[VersionRecord]:
        members = self._generics.get(generic_id)
        if not members:
            raise VersionError("no generic object %d" % (generic_id,))
        return sorted(
            (self._records[m] for m in members), key=lambda r: r.number
        )

    def resolve_generic(self, generic_id: int) -> OID:
        """Dynamic binding: the default version of a generic object."""
        candidates = [
            (record.status, record.number, record)
            for record in self.versions_of_generic(generic_id)
        ]
        _status, _number, chosen = self.policy.pick_default(candidates)
        return chosen.oid

    def history(self, oid: OID) -> List[OID]:
        """Derivation chain root -> ... -> oid."""
        chain: List[OID] = []
        current: Optional[OID] = oid
        while current is not None:
            chain.append(current)
            current = self.record_of(current).parent
        chain.reverse()
        return chain

    def __repr__(self) -> str:
        return "<VersionManager %d generics, %d versions, policy=%s>" % (
            len(self._generics),
            len(self._records),
            self.policy.name,
        )


def attach(db: "Database", policy: Optional[VersionPolicy] = None) -> VersionManager:
    """Enable versioning on a database (idempotent-ish: last wins)."""
    manager = VersionManager(db, policy)
    db.versions = manager
    return manager
