"""Version-semantics policies — the *upper* layer of Section 5.5.

"Since the semantics of versions tend to differ in varying degrees from
installation to installation, a worthwhile approach may be to provide a
layered architecture for versions.  The lower level may support a basic
mechanism for low-level version semantics that are common to various
proposals; the higher level may be made extensible to allow easy
tailoring of installation-specific version semantics."

The lower layer (:mod:`repro.versions.model`) maintains the derivation
graph; a policy object answers the installation-specific questions.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import VersionError

#: Version statuses in the [CHOU86] unifying framework.
TRANSIENT = "transient"
WORKING = "working"
RELEASED = "released"

_STATUS_ORDER = (TRANSIENT, WORKING, RELEASED)


class VersionPolicy:
    """Installation-specific version semantics (override to taste)."""

    name = "abstract"

    def can_update(self, status: str) -> bool:
        raise NotImplementedError

    def can_delete(self, status: str) -> bool:
        raise NotImplementedError

    def can_derive(self, status: str) -> bool:
        raise NotImplementedError

    def promotion_of(self, status: str) -> Optional[str]:
        """Next status when promoted, or None when already final."""
        raise NotImplementedError

    def derived_status(self, parent_status: str) -> str:
        """Status assigned to a freshly derived version."""
        raise NotImplementedError

    def pick_default(self, candidates: List[tuple]) -> tuple:
        """Choose the default version from (status, number, record) tuples.

        Called with at least one candidate; returns one of them.  This is
        the dynamic-binding rule for references to generic objects.
        """
        raise NotImplementedError


class ChouKimPolicy(VersionPolicy):
    """The [CHOU86] framework: transient -> working -> released.

    * transient versions may be updated and deleted, and derived from;
    * working versions are frozen (derive-only) but deletable;
    * released versions are frozen and not deletable;
    * a generic reference binds to the most recent version of the most
      stable status present.
    """

    name = "chou-kim"

    def can_update(self, status: str) -> bool:
        return status == TRANSIENT

    def can_delete(self, status: str) -> bool:
        return status in (TRANSIENT, WORKING)

    def can_derive(self, status: str) -> bool:
        return True

    def promotion_of(self, status: str) -> Optional[str]:
        index = _STATUS_ORDER.index(status)
        if index + 1 < len(_STATUS_ORDER):
            return _STATUS_ORDER[index + 1]
        return None

    def derived_status(self, parent_status: str) -> str:
        return TRANSIENT

    def pick_default(self, candidates: List[tuple]) -> tuple:
        def rank(entry: tuple) -> tuple:
            status, number, _record = entry
            return (_STATUS_ORDER.index(status), number)

        return max(candidates, key=rank)


class FreezeOnDerivePolicy(VersionPolicy):
    """A stricter shop rule: deriving from a version freezes the parent.

    Models installations where a version with descendants is immutable
    history.  Updates are allowed only on leaf transients; nothing is
    deletable once it has children (enforced by the mechanism layer);
    the default version is simply the newest.
    """

    name = "freeze-on-derive"

    def can_update(self, status: str) -> bool:
        return status == TRANSIENT

    def can_delete(self, status: str) -> bool:
        return status == TRANSIENT

    def can_derive(self, status: str) -> bool:
        return True

    def promotion_of(self, status: str) -> Optional[str]:
        if status == TRANSIENT:
            return RELEASED
        return None

    def derived_status(self, parent_status: str) -> str:
        return TRANSIENT

    def pick_default(self, candidates: List[tuple]) -> tuple:
        return max(candidates, key=lambda entry: entry[1])


def validate_status(status: str) -> None:
    if status not in _STATUS_ORDER:
        raise VersionError(
            "unknown version status %r (expected one of %s)"
            % (status, ", ".join(_STATUS_ORDER))
        )
