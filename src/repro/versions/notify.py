"""Change notification [CHOU88].

Two delivery modes, both from the ORION design:

* **message-based** — a callback fires immediately when a subscribed
  object (or any instance of a subscribed class) changes;
* **flag-based** — changes set a per-object flag; interested parties
  poll with :meth:`NotificationManager.changed_since_checked`.

Derivation events from the version manager are also routed here, so a
designer can learn that a vehicle they reference has a newer version.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.oid import OID

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database

#: callback(event, oid, extra) where event is "update", "delete" or
#: "derive"; extra is the new version's OID for derivations, else None.
Callback = Callable[[str, OID, Optional[OID]], None]


class NotificationManager:
    """Flag- and message-based change notification."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        self._object_subs: Dict[OID, List[Callback]] = {}
        self._class_subs: Dict[str, List[Callback]] = {}
        self._flags: Set[OID] = set()
        self._deliveries = 0
        db.add_post_hook(self._post_hook)

    # -- subscription ---------------------------------------------------------

    def subscribe(self, oid: OID, callback: Callback) -> None:
        """Message-based subscription to one object."""
        self._object_subs.setdefault(oid, []).append(callback)

    def subscribe_class(self, class_name: str, callback: Callback) -> None:
        """Message-based subscription to all instances of a class
        (subclass instances included, per hierarchy semantics)."""
        self._class_subs.setdefault(class_name, []).append(callback)

    def unsubscribe(self, oid: OID) -> None:
        self._object_subs.pop(oid, None)

    # -- delivery ---------------------------------------------------------------

    def _post_hook(self, kind: str, old, new) -> None:
        if kind == "insert":
            return
        state = new if kind == "update" else old
        self._flags.add(state.oid)
        self._deliver(kind, state.oid, state.class_name, None)

    def emit_derivation(self, parent: OID, child: OID) -> None:
        self._flags.add(parent)
        class_name = self.db.class_of(child)
        self._deliver("derive", parent, class_name, child)

    def _deliver(
        self, event: str, oid: OID, class_name: str, extra: Optional[OID]
    ) -> None:
        for callback in self._object_subs.get(oid, ()):
            callback(event, oid, extra)
            self._deliveries += 1
        mro = self.db.schema.mro(class_name)
        for cls in mro:
            for callback in self._class_subs.get(cls, ()):
                callback(event, oid, extra)
                self._deliveries += 1

    # -- flag-based polling ---------------------------------------------------------

    def is_flagged(self, oid: OID) -> bool:
        return oid in self._flags

    def changed_since_checked(self, oids: Optional[List[OID]] = None) -> List[OID]:
        """Flagged objects (optionally among ``oids``); clears the flags."""
        if oids is None:
            flagged = sorted(self._flags)
            self._flags.clear()
            return flagged
        flagged = sorted(oid for oid in oids if oid in self._flags)
        for oid in flagged:
            self._flags.discard(oid)
        return flagged

    @property
    def delivery_count(self) -> int:
        return self._deliveries


def attach(db: "Database") -> NotificationManager:
    manager = NotificationManager(db)
    db.notifications = manager
    return manager
