"""MVCC version store: before-images keyed by OID + commit timestamp.

The paper names concurrency control for concurrent transactions a core
open problem for OODBs; this module is the engine's answer for *read*
concurrency.  Writers keep strict two-phase locking (their X locks are
what make in-place updates safe), but before the first in-place write a
transaction makes to an object it installs the object's **before-image**
here.  A read-only query then runs against a :class:`Snapshot` — the
state of the world as of a monotonic commit timestamp — without taking
any scan locks at all: visibility is resolved per object by walking the
version chain back past every write the snapshot must not see.

Visibility rule (``resolve``): given reader snapshot ``S`` over object
``o`` with current stored state ``cur``,

* the reader's own transaction's writes are always visible
  (read-your-own-writes): an own-chain entry short-circuits to ``cur``;
* otherwise walk the chain newest-first; every entry that is
  *invisible* — written by an uncommitted transaction, or committed
  with ``commit_ts > S.ts`` — steps the result back to that entry's
  before-image; the first *visible* committed entry ends the walk.

Because writers hold X locks, at most one uncommitted writer exists per
object and chain entries are naturally ordered newest-first, so the
invisible entries form a prefix of the chain and the walk is exact.
A ``None`` before-image means "did not exist": inserts made after the
snapshot disappear from its scans, deletes made after it are
resurrected from their before-images.

Garbage collection contract: a committed entry with timestamp ``c`` is
needed only by snapshots with ``ts < c``; :meth:`VersionStore.gc`
reclaims every committed entry at or below the oldest live snapshot's
timestamp (all of them when no snapshot is live — future snapshots
begin at the current commit horizon).  Uncommitted entries always
survive; their writer is still running.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Set

from ..core.obj import ObjectState
from ..core.oid import OID
from ..obs.metrics import MetricsRegistry


class _Entry:
    """One before-image: ``txn_id`` overwrote ``oid``; the state before
    its first write was ``before`` (None = the object did not exist)."""

    __slots__ = ("txn_id", "oid", "class_name", "before", "commit_ts")

    def __init__(
        self,
        txn_id: int,
        oid: OID,
        class_name: str,
        before: Optional[ObjectState],
    ) -> None:
        self.txn_id = txn_id
        self.oid = oid
        self.class_name = class_name
        self.before = before
        #: Stamped at commit (monotonic); None while the writer runs.
        self.commit_ts: Optional[int] = None


class Snapshot:
    """A read timestamp: everything committed at or before ``ts``."""

    __slots__ = ("snapshot_id", "ts", "txn_id", "reads", "_opened_clock")

    def __init__(self, snapshot_id: int, ts: int, txn_id: Optional[int]) -> None:
        self.snapshot_id = snapshot_id
        self.ts = ts
        #: Owning transaction (read-your-own-writes); None for the
        #: ephemeral snapshot of an autocommit read.
        self.txn_id = txn_id
        #: Objects resolved through this snapshot (SysSnapshot).
        self.reads = 0
        self._opened_clock = time.perf_counter()

    @property
    def age_seconds(self) -> float:
        return time.perf_counter() - self._opened_clock

    def __repr__(self) -> str:
        return "<Snapshot %d ts=%d txn=%s>" % (
            self.snapshot_id,
            self.ts,
            self.txn_id,
        )


class VersionStore:
    """In-memory version chains + the commit-timestamp authority.

    All structural state is guarded by ``_store_mutex`` (a leaf in the
    engine lock lattice: nothing else is ever acquired while holding
    it).  Commit-timestamp allocation and entry stamping are one atomic
    step, and snapshot opening reads the commit horizon under the same
    mutex, so a snapshot either sees all of a commit or none of it.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._store_mutex = threading.Lock()
        #: Newest-first before-image chains.
        self._chains: Dict[OID, List[_Entry]] = {}
        #: Class name -> OIDs with live chain entries (scan resurrection
        #: and the index-downgrade test both key on class).
        self._by_class: Dict[str, Set[OID]] = {}
        #: Uncommitted entries per writer, install order.
        self._txn_entries: Dict[int, List[_Entry]] = {}
        self._snapshots: Dict[int, Snapshot] = {}
        self._next_snapshot_id = 1
        #: The commit horizon: timestamp of the newest committed write.
        self._last_commit_ts = 0
        self._entry_count = 0
        registry = registry if registry is not None else MetricsRegistry(enabled=False)
        self._m_opened = registry.counter("txn.snapshot.opened")
        self._m_closed = registry.counter("txn.snapshot.closed")
        self._m_reads = registry.counter("txn.snapshot.reads")
        self._m_reclaimed = registry.counter("txn.snapshot.gc_reclaimed")
        self._m_live = registry.gauge("txn.snapshot.live")
        self._m_entries = registry.gauge("txn.snapshot.version_entries")

    # -- writer side --------------------------------------------------------

    def record_before(
        self,
        txn_id: int,
        oid: OID,
        class_name: str,
        before: Optional[ObjectState],
    ) -> None:
        """Install ``oid``'s before-image for writer ``txn_id``.

        Called immediately *before* the in-place storage mutation while
        the writer holds its X lock — a snapshot reader that sees the
        new stored state is guaranteed to also see the chain entry that
        steps it back.  Only the first write per (txn, oid) installs an
        entry: the transaction's effects become visible atomically at
        its commit timestamp, so intermediate states are never needed.
        """
        with self._store_mutex:
            mine = self._txn_entries.setdefault(txn_id, [])
            for entry in mine:
                if entry.oid == oid:
                    return
            entry = _Entry(txn_id, oid, class_name, before)
            self._chains.setdefault(oid, []).insert(0, entry)
            self._by_class.setdefault(class_name, set()).add(oid)
            mine.append(entry)
            self._entry_count += 1
            self._m_entries.set(self._entry_count)

    def commit(self, txn_id: int) -> Optional[int]:
        """Stamp the writer's entries with a fresh commit timestamp.

        Called after the WAL commit record is durable and before locks
        are released.  Allocation and stamping are atomic with respect
        to snapshot opening, so no snapshot can observe half a commit.
        Returns the timestamp (None if the transaction wrote nothing).
        """
        with self._store_mutex:
            entries = self._txn_entries.pop(txn_id, None)
            if not entries:
                return None
            self._last_commit_ts += 1
            ts = self._last_commit_ts
            for entry in entries:
                entry.commit_ts = ts
            if not self._snapshots:
                self._reclaim_locked(self._last_commit_ts)
            return ts

    def abort(self, txn_id: int) -> None:
        """Discard the writer's entries (its undo restored storage)."""
        with self._store_mutex:
            entries = self._txn_entries.pop(txn_id, None)
            if not entries:
                return
            for entry in entries:
                self._unlink_locked(entry)
            self._m_entries.set(self._entry_count)

    # -- snapshot lifecycle --------------------------------------------------

    def open_snapshot(self, txn_id: Optional[int] = None) -> Snapshot:
        with self._store_mutex:
            snapshot = Snapshot(self._next_snapshot_id, self._last_commit_ts, txn_id)
            self._next_snapshot_id += 1
            self._snapshots[snapshot.snapshot_id] = snapshot
            self._m_opened.inc()
            self._m_live.set(len(self._snapshots))
        return snapshot

    def close_snapshot(self, snapshot: Snapshot) -> None:
        """Release a snapshot and reclaim versions nothing can read."""
        with self._store_mutex:
            if self._snapshots.pop(snapshot.snapshot_id, None) is None:
                return
            self._m_closed.inc()
            self._m_live.set(len(self._snapshots))
            self.gc_locked()

    def live_snapshots(self) -> List[Snapshot]:
        with self._store_mutex:
            return [self._snapshots[sid] for sid in sorted(self._snapshots)]

    # -- reader side ---------------------------------------------------------

    def resolve(
        self,
        oid: OID,
        snapshot: Snapshot,
        current: Optional[ObjectState],
    ) -> Optional[ObjectState]:
        """The state of ``oid`` visible to ``snapshot`` (None = absent).

        ``current`` is the present stored state (or None when the object
        is gone from storage); the chain walk steps it back past every
        write the snapshot must not see.
        """
        snapshot.reads += 1
        self._m_reads.inc()
        chain = self._chains.get(oid)
        if chain is None:
            return current
        with self._store_mutex:
            result = current
            for entry in chain:
                if entry.txn_id == snapshot.txn_id:
                    # Own write: a transaction always reads its writes.
                    return current
                if entry.commit_ts is not None and entry.commit_ts <= snapshot.ts:
                    break
                result = entry.before
            return result

    def resurrected(
        self,
        class_name: str,
        snapshot: Snapshot,
        seen: Set[OID],
    ) -> List[ObjectState]:
        """Objects of ``class_name`` visible to ``snapshot`` but missing
        from the storage scan (deleted after the snapshot began)."""
        with self._store_mutex:
            candidates = [
                oid
                for oid in sorted(self._by_class.get(class_name, ()))
                if oid not in seen
            ]
        out: List[ObjectState] = []
        for oid in candidates:
            state = self.resolve(oid, snapshot, None)
            if state is not None:
                out.append(state)
        return out

    def has_entries(self, classes) -> bool:
        """True when any class in ``classes`` has live version entries.

        The executor's index-path guard: an index reflects *current*
        attribute values, so whenever in-scope before-images exist a
        probe could miss objects the snapshot must see — the plan is
        downgraded to an extent scan, whose resurrection pass is exact.
        """
        with self._store_mutex:
            return any(self._by_class.get(cls) for cls in classes)

    # -- garbage collection ----------------------------------------------------

    def gc(self) -> int:
        """Reclaim entries no live (or future) snapshot can need."""
        with self._store_mutex:
            return self.gc_locked()

    def gc_locked(self) -> int:
        horizon = min(
            (snap.ts for snap in self._snapshots.values()),
            default=self._last_commit_ts,
        )
        return self._reclaim_locked(horizon)

    def _reclaim_locked(self, horizon: int) -> int:
        reclaimed = []
        for chain in self._chains.values():
            for entry in chain:
                if entry.commit_ts is not None and entry.commit_ts <= horizon:
                    reclaimed.append(entry)
        for entry in reclaimed:
            self._unlink_locked(entry)
        if reclaimed:
            self._m_reclaimed.inc(len(reclaimed))
            self._m_entries.set(self._entry_count)
        return len(reclaimed)

    def _unlink_locked(self, entry: _Entry) -> None:
        chain = self._chains.get(entry.oid)
        if chain is None or entry not in chain:
            return
        chain.remove(entry)
        self._entry_count -= 1
        if not chain:
            del self._chains[entry.oid]
            by_class = self._by_class.get(entry.class_name)
            if by_class is not None:
                by_class.discard(entry.oid)
                if not by_class:
                    del self._by_class[entry.class_name]

    # -- introspection ---------------------------------------------------------

    @property
    def entry_count(self) -> int:
        return self._entry_count

    @property
    def last_commit_ts(self) -> int:
        return self._last_commit_ts

    def snapshot_rows(self) -> Iterator[Dict[str, Any]]:
        """SysSnapshot rows: one per live snapshot, fresh per scan."""
        for snap in self.live_snapshots():
            yield {
                "snapshot": snap.snapshot_id,
                "ts": snap.ts,
                "txn": snap.txn_id,
                "age": snap.age_seconds,
                "reads": snap.reads,
                "entries": self._entry_count,
            }

    def __repr__(self) -> str:
        return "<VersionStore ts=%d entries=%d snapshots=%d>" % (
            self._last_commit_ts,
            self._entry_count,
            len(self._snapshots),
        )


class SnapshotView:
    """Snapshot-aware read hooks for one query.

    Wraps a :class:`Snapshot` together with the database's storage
    callables (passed in by the owner — this module never reaches into
    the database) and exposes exactly the two hooks the physical
    operators need: :meth:`deref` for probe/path dereferencing and
    :meth:`scan` for extent scans, both resolving visibility through
    the store.  ``ephemeral`` marks per-query snapshots the query path
    must close itself (transaction-bound snapshots are closed when the
    transaction finishes).
    """

    def __init__(
        self,
        store: VersionStore,
        snapshot: Snapshot,
        deref: Callable[[OID], Optional[ObjectState]],
        scan: Callable[[str], Iterator[ObjectState]],
        coerce: Callable[[ObjectState], ObjectState],
        ephemeral: bool = False,
    ) -> None:
        self.store = store
        self.snapshot = snapshot
        self._base_deref = deref
        self._base_scan = scan
        self._coerce = coerce
        self.ephemeral = ephemeral

    @property
    def ts(self) -> int:
        return self.snapshot.ts

    def deref(self, oid: OID) -> Optional[ObjectState]:
        state = self.store.resolve(oid, self.snapshot, self._base_deref(oid))
        if state is None:
            return None
        return self._coerce(state)

    def scan(self, class_name: str) -> Iterator[ObjectState]:
        seen: Set[OID] = set()
        for state in self._base_scan(class_name):
            seen.add(state.oid)
            visible = self.store.resolve(state.oid, self.snapshot, state)
            if visible is not None:
                yield self._coerce(visible)
        for state in self.store.resurrected(class_name, self.snapshot, seen):
            yield self._coerce(state)

    def has_version_entries(self, classes) -> bool:
        return self.store.has_entries(classes)

    def __repr__(self) -> str:
        return "<SnapshotView %r%s>" % (
            self.snapshot,
            " ephemeral" if self.ephemeral else "",
        )
