"""Versions (layered mechanism + policies) and change notification."""

from .model import VersionManager, VersionRecord, attach
from .notify import NotificationManager
from .notify import attach as attach_notifications
from .policies import (
    RELEASED,
    TRANSIENT,
    WORKING,
    ChouKimPolicy,
    FreezeOnDerivePolicy,
    VersionPolicy,
)

__all__ = [
    "VersionManager",
    "VersionRecord",
    "attach",
    "NotificationManager",
    "attach_notifications",
    "RELEASED",
    "TRANSIENT",
    "WORKING",
    "ChouKimPolicy",
    "FreezeOnDerivePolicy",
    "VersionPolicy",
]
