"""Versions (layered mechanism + policies), MVCC store, notification."""

from .model import VersionManager, VersionRecord, attach
from .notify import NotificationManager
from .notify import attach as attach_notifications
from .policies import (
    RELEASED,
    TRANSIENT,
    WORKING,
    ChouKimPolicy,
    FreezeOnDerivePolicy,
    VersionPolicy,
)
from .store import Snapshot, SnapshotView, VersionStore

__all__ = [
    "VersionManager",
    "VersionRecord",
    "attach",
    "Snapshot",
    "SnapshotView",
    "VersionStore",
    "NotificationManager",
    "attach_notifications",
    "RELEASED",
    "TRANSIENT",
    "WORKING",
    "ChouKimPolicy",
    "FreezeOnDerivePolicy",
    "VersionPolicy",
]
