"""Abstract data types (Section 5.5).

"The creation of user-defined types ... has some difficult and
interesting consequences on database system architecture" [BLOO87,
STON86a].  kimdb ADTs are *value domains*: a registered type contributes

* a validator — making the type usable as an attribute domain;
* named operations — usable as predicates in OQL
  (``overlaps(r.shape, [0, 0, 4, 4])``);
* optional access-method providers — index structures the planner can
  probe instead of scanning, integrating user-defined predicates into
  the optimization framework (the open issue the paper highlights;
  experiment E14).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.obj import ObjectState
from ..core.oid import OID
from ..errors import SchemaError
from ..query.ast import AdtPredicate
from ..query.paths import Deref, evaluate_path

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database

Validator = Callable[[Any], bool]
Operation = Callable[..., Any]


class AccessMethodProbe:
    """One ready-to-run index probe for an ADT predicate."""

    def __init__(self, estimate: int, run: Callable[[], List[OID]]) -> None:
        self._estimate = estimate
        self._run = run

    def estimated_matches(self) -> int:
        return self._estimate

    def run(self) -> List[OID]:
        return self._run()


#: provider(db, target_class, path, args) -> probe or None when the
#: provider has no structure covering this class/path.
AccessMethodProvider = Callable[
    ["Database", str, Tuple[str, ...], Sequence[Any]], Optional[AccessMethodProbe]
]


class AdtType:
    __slots__ = ("name", "validator", "operations")

    def __init__(self, name: str, validator: Validator) -> None:
        self.name = name
        self.validator = validator
        self.operations: Dict[str, Operation] = {}


class AdtRegistry:
    """User-defined types, operations and access methods for one database."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        self._types: Dict[str, AdtType] = {}
        #: operation name -> (type name, fn)
        self._operations: Dict[str, Tuple[str, Operation]] = {}
        self._providers: Dict[str, List[AccessMethodProvider]] = {}

    # -- registration -----------------------------------------------------------

    def register_type(self, name: str, validator: Validator) -> AdtType:
        if name in self._types:
            raise SchemaError("ADT %r is already registered" % (name,))
        adt = AdtType(name, validator)
        self._types[name] = adt
        self.db.schema.register_value_domain(name, validator)
        return adt

    def register_operation(self, type_name: str, op_name: str, fn: Operation) -> None:
        adt = self._types.get(type_name)
        if adt is None:
            raise SchemaError("unknown ADT %r" % (type_name,))
        if op_name in self._operations:
            raise SchemaError("ADT operation %r is already registered" % (op_name,))
        adt.operations[op_name] = fn
        self._operations[op_name] = (type_name, fn)

    def register_access_method(self, op_name: str, provider: AccessMethodProvider) -> None:
        if op_name not in self._operations:
            raise SchemaError(
                "access method for unknown ADT operation %r" % (op_name,)
            )
        self._providers.setdefault(op_name, []).append(provider)

    def has_operation(self, op_name: str) -> bool:
        """True when ``op_name`` names a registered ADT operation.

        The semantic analyzer uses this to reject unknown ADT predicates
        at compile time instead of at residual-evaluation time.
        """
        return op_name in self._operations

    # -- evaluation (residual predicates) ------------------------------------------

    def evaluate(self, predicate: AdtPredicate, state: ObjectState, deref: Deref) -> bool:
        entry = self._operations.get(predicate.name)
        if entry is None:
            raise SchemaError("unknown ADT operation %r" % (predicate.name,))
        type_name, fn = entry
        validator = self._types[type_name].validator
        values = self._terminal_values(predicate, state, deref, validator)
        for value in values:
            if value is None or not validator(value):
                continue
            if fn(value, *predicate.args):
                return True
        return False

    def _terminal_values(
        self, predicate: AdtPredicate, state: ObjectState, deref: Deref, validator: Validator
    ) -> List[Any]:
        """Terminal values of the predicate path, ADT-list aware.

        ADT values are often encoded as lists (e.g. a rectangle's four
        corners), which the generic path walker would fan out element by
        element.  The final step is therefore read *raw*: when the whole
        attribute value validates as the ADT it is the single candidate;
        otherwise list values fan out as usual (set of ADT values).
        """
        steps = predicate.path.steps
        if len(steps) == 1:
            holders = [state]
        else:
            holder_values = evaluate_path(state, steps[:-1], deref)
            holders = []
            for value in holder_values:
                if isinstance(value, OID):
                    holder = deref(value)
                    if holder is not None:
                        holders.append(holder)
        out: List[Any] = []
        for holder in holders:
            raw = holder.values.get(steps[-1])
            if raw is None:
                continue
            if validator(raw):
                out.append(raw)
            elif isinstance(raw, list):
                out.extend(element for element in raw if validator(element))
        return out

    def call(self, op_name: str, value: Any, *args: Any) -> Any:
        """Direct (non-query) invocation of an ADT operation."""
        entry = self._operations.get(op_name)
        if entry is None:
            raise SchemaError("unknown ADT operation %r" % (op_name,))
        return entry[1](value, *args)

    # -- planner integration --------------------------------------------------------

    def access_method(
        self,
        op_name: str,
        target_class: str,
        path: Tuple[str, ...],
        args: Sequence[Any],
    ) -> Optional[AccessMethodProbe]:
        for provider in self._providers.get(op_name, ()):
            probe = provider(self.db, target_class, tuple(path), args)
            if probe is not None:
                return probe
        return None

    def type_names(self) -> List[str]:
        return sorted(self._types)


def attach(db: "Database") -> AdtRegistry:
    registry = AdtRegistry(db)
    db.adt = registry
    db.planner.adt_registry = registry
    return registry
