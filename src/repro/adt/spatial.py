"""Rectangle ADT and spatial grid index for VLSI workloads.

"Much of the past research into efficient implementation of abstract
data types has been concerned with rectangular shapes in the context of
VLSI layouts" [STON83, BANE86].  Rectangles are stored as
``[x1, y1, x2, y2]`` lists (a storable value encoding); the grid index
buckets rectangles into uniform cells and serves as the access method
behind the ``overlaps`` predicate (experiment E14).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from ..core.oid import OID
from ..errors import SchemaError
from .registry import AccessMethodProbe, AdtRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database

RECTANGLE_TYPE = "Rectangle"


def make_rect(x1: float, y1: float, x2: float, y2: float) -> List[float]:
    """Normalized rectangle value (corners sorted)."""
    return [
        float(min(x1, x2)),
        float(min(y1, y2)),
        float(max(x1, x2)),
        float(max(y1, y2)),
    ]


def is_rect(value) -> bool:
    return (
        isinstance(value, list)
        and len(value) == 4
        and all(isinstance(c, (int, float)) and not isinstance(c, bool) for c in value)
        and value[0] <= value[2]
        and value[1] <= value[3]
    )


def rect_overlaps(rect: Sequence[float], x1: float, y1: float, x2: float, y2: float) -> bool:
    qx1, qy1, qx2, qy2 = min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)
    return not (rect[2] < qx1 or rect[0] > qx2 or rect[3] < qy1 or rect[1] > qy2)


def rect_contains_point(rect: Sequence[float], x: float, y: float) -> bool:
    return rect[0] <= x <= rect[2] and rect[1] <= y <= rect[3]


def rect_within(rect: Sequence[float], x1: float, y1: float, x2: float, y2: float) -> bool:
    qx1, qy1, qx2, qy2 = min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)
    return rect[0] >= qx1 and rect[1] >= qy1 and rect[2] <= qx2 and rect[3] <= qy2


def rect_area(rect: Sequence[float]) -> float:
    return max(0.0, rect[2] - rect[0]) * max(0.0, rect[3] - rect[1])


def register_rectangle_type(registry: AdtRegistry) -> None:
    """Install the Rectangle ADT with its operations (idempotent-free)."""
    registry.register_type(RECTANGLE_TYPE, is_rect)
    registry.register_operation(RECTANGLE_TYPE, "overlaps", rect_overlaps)
    registry.register_operation(RECTANGLE_TYPE, "contains_point", rect_contains_point)
    registry.register_operation(RECTANGLE_TYPE, "within", rect_within)


class SpatialGridIndex:
    """Uniform grid over one rectangle-valued attribute of a class.

    Maintained through database post-hooks; each rectangle is registered
    in every grid cell it touches.  Queries collect the cells the search
    window touches and return the union of their buckets (candidates —
    the executor re-verifies exactly, as with every kimdb index).
    """

    def __init__(self, db: "Database", class_name: str, attribute: str, cell_size: float = 16.0) -> None:
        if cell_size <= 0:
            raise SchemaError("cell size must be positive")
        attr = db.schema.attribute(class_name, attribute)
        if attr.domain != RECTANGLE_TYPE:
            raise SchemaError(
                "attribute %s.%s has domain %s, expected %s"
                % (class_name, attribute, attr.domain, RECTANGLE_TYPE)
            )
        self.db = db
        self.class_name = class_name
        self.attribute = attribute
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], Set[OID]] = {}
        self._rect_of: Dict[OID, List[float]] = {}
        db.add_post_hook(self._post_hook)
        self._build()

    # -- cell math ------------------------------------------------------------

    def _cells_for(self, rect: Sequence[float]):
        cx1 = int(rect[0] // self.cell_size)
        cy1 = int(rect[1] // self.cell_size)
        cx2 = int(rect[2] // self.cell_size)
        cy2 = int(rect[3] // self.cell_size)
        for cx in range(cx1, cx2 + 1):
            for cy in range(cy1, cy2 + 1):
                yield (cx, cy)

    # -- maintenance ---------------------------------------------------------------

    def _covers(self, class_name: str) -> bool:
        return self.db.schema.is_subclass(class_name, self.class_name)

    def _build(self) -> None:
        for cls in self.db.schema.hierarchy_of(self.class_name):
            for state in self.db.storage.scan_class(cls):
                self._add(state.oid, state.values.get(self.attribute))

    def _add(self, oid: OID, rect) -> None:
        if not is_rect(rect):
            return
        self._rect_of[oid] = list(rect)
        for cell in self._cells_for(rect):
            self._cells.setdefault(cell, set()).add(oid)

    def _remove(self, oid: OID) -> None:
        rect = self._rect_of.pop(oid, None)
        if rect is None:
            return
        for cell in self._cells_for(rect):
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.discard(oid)
                if not bucket:
                    del self._cells[cell]

    def _post_hook(self, kind: str, old, new) -> None:
        if kind == "insert" and self._covers(new.class_name):
            self._add(new.oid, new.values.get(self.attribute))
        elif kind == "update" and self._covers(new.class_name):
            self._remove(old.oid)
            self._add(new.oid, new.values.get(self.attribute))
        elif kind == "delete" and self._covers(old.class_name):
            self._remove(old.oid)

    # -- probing ----------------------------------------------------------------------

    def candidates(self, x1: float, y1: float, x2: float, y2: float) -> List[OID]:
        window = make_rect(x1, y1, x2, y2)
        out: Set[OID] = set()
        for cell in self._cells_for(window):
            out |= self._cells.get(cell, set())
        return sorted(out)

    def estimate(self, x1: float, y1: float, x2: float, y2: float) -> int:
        window = make_rect(x1, y1, x2, y2)
        return sum(len(self._cells.get(cell, ())) for cell in self._cells_for(window))

    def __len__(self) -> int:
        return len(self._rect_of)


def register_spatial_index(
    registry: AdtRegistry,
    class_name: str,
    attribute: str,
    cell_size: float = 16.0,
) -> SpatialGridIndex:
    """Create a grid index and plug it into the planner for ``overlaps``."""
    grid = SpatialGridIndex(registry.db, class_name, attribute, cell_size)

    def provider(db, target_class, path, args):
        if path != (attribute,) or len(args) != 4:
            return None
        if not db.schema.is_subclass(target_class, class_name):
            return None
        x1, y1, x2, y2 = args
        return AccessMethodProbe(
            grid.estimate(x1, y1, x2, y2),
            lambda: grid.candidates(x1, y1, x2, y2),
        )

    registry.register_access_method("overlaps", provider)
    return grid
