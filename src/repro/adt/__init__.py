"""Abstract data types: registry, operations, spatial access methods."""

from .registry import AccessMethodProbe, AdtRegistry, AdtType, attach
from .spatial import (
    RECTANGLE_TYPE,
    SpatialGridIndex,
    is_rect,
    make_rect,
    rect_area,
    rect_contains_point,
    rect_overlaps,
    rect_within,
    register_rectangle_type,
    register_spatial_index,
)

__all__ = [
    "AccessMethodProbe",
    "AdtRegistry",
    "AdtType",
    "attach",
    "RECTANGLE_TYPE",
    "SpatialGridIndex",
    "is_rect",
    "make_rect",
    "rect_area",
    "rect_contains_point",
    "rect_overlaps",
    "rect_within",
    "register_rectangle_type",
    "register_spatial_index",
]
