"""Object algebra.

Section 5.3 notes the core query model needs a formal basis and that its
lower bound is nested-relational expressive power.  This module gives the
executor (and users who want to compose queries programmatically) a small
algebra over *extents* — ordered lists of object states — with the usual
operators lifted to the object setting: selection over path predicates,
projection along paths, set operations by object identity, and unnest.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from ..core.obj import ObjectState
from ..core.oid import OID
from .ast import (
    AdtPredicate,
    And,
    Comparison,
    Expr,
    MethodCall,
    Not,
    Or,
)
from .paths import Deref, compare, evaluate_path

#: Sends a message to an object and returns the result (late binding);
#: wired to ``Database.send`` by the executor.
Sender = Callable[[OID, str], Any]


def evaluate_predicate(
    expr: Expr,
    state: ObjectState,
    deref: Deref,
    send: Optional[Callable[..., Any]] = None,
    adt_eval: Optional[Callable[[AdtPredicate, ObjectState], bool]] = None,
) -> bool:
    """Evaluate a boolean expression against one object.

    Path comparisons use existential semantics over fan-out values.
    Method predicates need ``send``; ADT predicates need ``adt_eval`` —
    both raise if required but not provided.
    """
    if isinstance(expr, Comparison):
        values = evaluate_path(state, expr.path.steps, deref)
        return any(compare(expr.op, value, expr.const.value) for value in values)
    if isinstance(expr, And):
        return all(
            evaluate_predicate(op, state, deref, send, adt_eval) for op in expr.operands
        )
    if isinstance(expr, Or):
        return any(
            evaluate_predicate(op, state, deref, send, adt_eval) for op in expr.operands
        )
    if isinstance(expr, Not):
        return not evaluate_predicate(expr.operand, state, deref, send, adt_eval)
    if isinstance(expr, MethodCall):
        if send is None:
            raise ValueError("method predicates require a message sender")
        receivers: List[OID]
        if expr.path is None:
            receivers = [state.oid]
        else:
            receivers = [
                value
                for value in evaluate_path(state, expr.path.steps, deref)
                if isinstance(value, OID)
            ]
        for receiver in receivers:
            result = send(receiver, expr.selector, *expr.args)
            if compare(expr.op, result, expr.const.value):
                return True
        return False
    if isinstance(expr, AdtPredicate):
        if adt_eval is None:
            raise ValueError("ADT predicates require an ADT evaluator")
        return adt_eval(expr, state)
    raise ValueError("unknown expression node %r" % (expr,))


def select(
    extent: Iterable[ObjectState],
    predicate: Expr,
    deref: Deref,
    send: Optional[Callable[..., Any]] = None,
    adt_eval: Optional[Callable[[AdtPredicate, ObjectState], bool]] = None,
) -> Iterator[ObjectState]:
    """sigma: keep the objects satisfying the predicate."""
    for state in extent:
        if evaluate_predicate(predicate, state, deref, send, adt_eval):
            yield state


def project(
    extent: Iterable[ObjectState],
    paths: Sequence[Sequence[str]],
    deref: Deref,
) -> Iterator[Dict[str, Any]]:
    """pi: rows of {dotted path -> value(s)}.

    A path with a single terminal value is unwrapped; fan-out keeps the
    list.  Missing/broken paths yield None.
    """
    for state in extent:
        yield project_row(state, paths, deref)


def project_row(
    state: ObjectState,
    paths: Sequence[Sequence[str]],
    deref: Deref,
) -> Dict[str, Any]:
    """One projected row — the per-object kernel behind :func:`project`."""
    row: Dict[str, Any] = {}
    for steps in paths:
        values = evaluate_path(state, steps, deref)
        key = ".".join(steps)
        if not values:
            row[key] = None
        elif len(values) == 1:
            row[key] = values[0]
        else:
            row[key] = values
    return row


def union(left: Iterable[ObjectState], right: Iterable[ObjectState]) -> List[ObjectState]:
    """Set union by object identity, order-stable (left first)."""
    seen: Dict[OID, ObjectState] = {}
    for state in list(left) + list(right):
        if state.oid not in seen:
            seen[state.oid] = state
    return list(seen.values())


def intersect(left: Iterable[ObjectState], right: Iterable[ObjectState]) -> List[ObjectState]:
    right_oids = {state.oid for state in right}
    out, seen = [], set()
    for state in left:
        if state.oid in right_oids and state.oid not in seen:
            seen.add(state.oid)
            out.append(state)
    return out


def difference(left: Iterable[ObjectState], right: Iterable[ObjectState]) -> List[ObjectState]:
    right_oids = {state.oid for state in right}
    out, seen = [], set()
    for state in left:
        if state.oid not in right_oids and state.oid not in seen:
            seen.add(state.oid)
            out.append(state)
    return out


def unnest(
    extent: Iterable[ObjectState],
    attribute: str,
    deref: Deref,
) -> Iterator[ObjectState]:
    """mu: flatten a reference attribute into the referenced objects."""
    seen = set()
    for state in extent:
        value = state.values.get(attribute)
        elements = value if isinstance(value, list) else [value]
        for element in elements:
            if isinstance(element, OID) and element not in seen:
                referenced = deref(element)
                if referenced is not None:
                    seen.add(element)
                    yield referenced


def order_by(
    extent: Iterable[ObjectState],
    steps: Sequence[str],
    deref: Deref,
    descending: bool = False,
) -> List[ObjectState]:
    """Order an extent by the first terminal value of a path.

    Objects with no value sort last (regardless of direction) and ties
    break on OID so results are deterministic.
    """
    from ..index.btree import normalize_key

    def sort_key(state: ObjectState):
        values = evaluate_path(state, steps, deref)
        if not values or values[0] is None:
            return (1, (0, False), state.oid.value)
        return (0, normalize_key(values[0]), state.oid.value)

    ordered = sorted(extent, key=sort_key, reverse=descending)
    if descending:
        # Keep missing values last even in descending order.
        present = [s for s in ordered if sort_key(s)[0] == 0]
        missing = [s for s in ordered if sort_key(s)[0] == 1]
        return present + missing
    return ordered


def top_k(
    extent: Iterable[ObjectState],
    steps: Optional[Sequence[str]],
    deref: Deref,
    descending: bool,
    k: int,
) -> List[ObjectState]:
    """The first ``k`` rows of :func:`order_by`, via bounded heaps.

    O(n log k) time and O(k) extra ordering state instead of a full
    sort; returns exactly ``order_by(extent, ...)[:k]`` (and, for
    ``steps`` None, exactly the default OID order's first ``k``).  The
    whole input is still consumed — real early termination needs an
    ordered access path underneath a LIMIT instead.
    """
    if k <= 0:
        return []
    if steps is None:
        return heapq.nsmallest(k, extent, key=lambda s: s.oid.value)

    from ..index.btree import normalize_key

    def sort_key(state: ObjectState):
        values = evaluate_path(state, steps, deref)
        if not values or values[0] is None:
            return (1, (0, False), state.oid.value)
        return (0, normalize_key(values[0]), state.oid.value)

    if not descending:
        return heapq.nsmallest(k, extent, key=sort_key)
    # Descending keeps missing-value rows last (by descending OID, the
    # order a reversed full sort leaves them in).
    present: List[Any] = []
    missing: List[ObjectState] = []
    for state in extent:
        values = evaluate_path(state, steps, deref)
        if not values or values[0] is None:
            missing.append(state)
        else:
            present.append((normalize_key(values[0]), state.oid.value, state))
    top = [
        entry[2]
        for entry in heapq.nlargest(k, present, key=lambda e: (e[0], e[1]))
    ]
    if len(top) < k:
        top.extend(
            heapq.nlargest(k - len(top), missing, key=lambda s: s.oid.value)
        )
    return top


def aggregate_rows(
    query,
    extent: Iterable[ObjectState],
    deref: Deref,
) -> List[Dict[str, Any]]:
    """Fold an extent into per-group summary rows (COUNT/SUM/AVG/MIN/MAX).

    Groups order by key with the None group last; a query without GROUP
    BY folds everything into one row.
    """
    groups: Dict[Any, List[ObjectState]] = {}
    if query.group_by is None:
        groups[None] = [state for state in extent]
    else:
        for state in extent:
            values = evaluate_path(state, query.group_by.steps, deref)
            key = values[0] if values else None
            groups.setdefault(key, []).append(state)

    from ..index.btree import normalize_key

    rows: List[Dict[str, Any]] = []
    for key in sorted(
        groups, key=lambda k: (k is None, normalize_key(k) if k is not None else 0)
    ):
        members = groups[key]
        row: Dict[str, Any] = {}
        if query.group_by is not None:
            row[query.group_by.dotted()] = key
        for aggregate in query.aggregates or []:
            row[aggregate.label()] = _fold(aggregate, members, deref)
        rows.append(row)
    return rows


def _fold(aggregate, members: List[ObjectState], deref: Deref) -> Any:
    if aggregate.path is None:  # count(*)
        return len(members)
    values = []
    for state in members:
        terminal = evaluate_path(state, aggregate.path.steps, deref)
        values.extend(v for v in terminal if v is not None)
    if aggregate.fn == "count":
        return len(values)
    if not values:
        return None
    if aggregate.fn == "sum":
        return sum(values)
    if aggregate.fn == "avg":
        return sum(values) / len(values)
    if aggregate.fn == "min":
        return min(values)
    return max(values)
