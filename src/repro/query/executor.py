"""Query executor: a thin driver over the physical operator pipeline.

A :class:`~repro.query.planner.Plan` is compiled (see
:mod:`repro.query.operators`) into a pull pipeline — leaf access path,
full-predicate re-check, sort/aggregate, limit, projection — and this
module merely drains it, collecting OIDs and projected rows in one
streaming pass.  Execution statistics are no longer counted here: they
*are* the operators' live ``rows_out`` counters, surfaced through the
legacy :class:`ExecutionStats` property view and rolled up into the
database :class:`~repro.obs.metrics.MetricsRegistry` after each run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from ..core.obj import ObjectState
from ..core.oid import OID
from ..obs.metrics import MetricsRegistry
from .ast import AdtPredicate, Query
from .operators import ObjectKernel, Pipeline, compile_plan
from .paths import Deref
from .planner import EmptyScan, ExtentScan, Plan, SystemScan

ScanClass = Callable[[str], Iterable[ObjectState]]
Sender = Callable[..., Any]


class ExecutionStats:
    """Legacy examined/matched/index_probes counters as a property view.

    The numbers live on the pipeline's operators (``examined`` is the
    candidate source's ``rows_out``, ``matched`` the filter's,
    ``index_probes`` the probe leaf's run count) — the same
    single-source-of-truth pattern the buffer and lock stats use over
    the metrics registry.
    """

    __slots__ = ("_pipeline",)

    def __init__(self, pipeline: Optional[Pipeline] = None) -> None:
        self._pipeline = pipeline

    @property
    def examined(self) -> int:
        return self._pipeline.examined if self._pipeline is not None else 0

    @property
    def matched(self) -> int:
        return self._pipeline.matched if self._pipeline is not None else 0

    @property
    def index_probes(self) -> int:
        return self._pipeline.index_probes if self._pipeline is not None else 0


class ResultSet:
    """Query results.

    ``oids`` is always populated (in result order).  For projection
    queries ``rows`` holds dicts keyed by dotted path; otherwise callers
    materialize handles through the database.  ``pipeline`` keeps the
    executed operator chain so stats (and EXPLAIN ANALYZE) read live
    counters.
    """

    def __init__(
        self,
        query: Query,
        plan: Plan,
        oids: List[OID],
        rows: Optional[List[Dict[str, Any]]],
        stats: ExecutionStats,
        pipeline: Optional[Pipeline] = None,
    ) -> None:
        self.query = query
        self.plan = plan
        self.oids = oids
        self.rows = rows
        self.stats = stats
        self.pipeline = pipeline
        #: Annotated PlanNode root when executed under EXPLAIN ANALYZE.
        self.analysis = None
        #: True for system statistics views (rows are generated dicts;
        #: ``oids`` is empty and there is nothing to materialize).
        self.system = False

    def operator_stats(self) -> List[Dict[str, Any]]:
        """Per-operator counters, leaf first (bench artifacts)."""
        return self.pipeline.operator_stats() if self.pipeline is not None else []

    def __len__(self) -> int:
        return len(self.rows) if self.rows is not None else len(self.oids)

    def __repr__(self) -> str:
        return "<ResultSet %d results via %s>" % (len(self), self.plan.access.description)


class Executor:
    """Compiles plans to operator pipelines and drains them."""

    def __init__(
        self,
        deref: Deref,
        scan_class: ScanClass,
        send: Optional[Sender] = None,
        adt_eval: Optional[Callable[[AdtPredicate, ObjectState], bool]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._scan_class = scan_class
        self._send = send
        self._adt_eval = adt_eval
        self.kernel = ObjectKernel(deref, send, adt_eval)
        registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self._m_examined = registry.counter("query.rows_examined")
        self._m_matched = registry.counter("query.rows_matched")
        self._m_probes = registry.counter("query.index_probes")
        self._m_downgrades = registry.counter("txn.snapshot.plan_downgrades")

    def pipeline(self, plan: Plan, snapshot=None) -> Pipeline:
        """Compile (but do not open) the physical pipeline for a plan.

        With a :class:`~repro.versions.store.SnapshotView`, the leaf
        scan and every dereference resolve through the snapshot instead
        of current storage, and the plan may first be downgraded (see
        :meth:`_snapshot_plan`).  Callers that need the actually-compiled
        plan read it back off ``Pipeline.plan``.
        """
        if snapshot is None:
            return compile_plan(plan, self.kernel, self._scan_class)
        plan = self._snapshot_plan(plan, snapshot)
        kernel = ObjectKernel(snapshot.deref, self._send, self._adt_eval)
        return compile_plan(plan, kernel, snapshot.scan)

    def _snapshot_plan(self, plan: Plan, snapshot) -> Plan:
        """Make a plan safe to run against a snapshot.

        Indexes reflect *current* values, so an index probe can miss
        objects whose indexed attribute changed after the snapshot's
        begin timestamp (false negatives — unfixable downstream; the
        filter's full-predicate re-check only removes false positives).
        Whenever the version store holds any entry for a class in scope,
        index and ADT access paths are downgraded to a plain extent scan
        resolved through the snapshot.  With no version entries the
        indexes are exact for this snapshot and the plan runs as-is.
        """
        if isinstance(plan.access, (ExtentScan, EmptyScan, SystemScan)):
            return plan
        if not snapshot.has_version_entries(plan.scope):
            return plan
        downgraded = Plan(
            plan.query,
            plan.scope,
            ExtentScan(sorted(plan.scope)),
            plan.query.where,
            plan.estimated_cost,
            notes=list(plan.notes)
            + ["snapshot: index access downgraded to extent scan"],
        )
        downgraded.rewrite = plan.rewrite
        downgraded.cached = plan.cached
        self._m_downgrades.inc()
        return downgraded

    def execute(
        self, plan: Plan, timed: bool = False, snapshot=None
    ) -> ResultSet:
        """Run a plan.  With ``timed``, operators also accumulate
        per-stage wall-clock (EXPLAIN ANALYZE reads it off the chain).
        """
        pipeline = self.pipeline(plan, snapshot=snapshot)
        plan = pipeline.plan
        query = plan.query
        if timed:
            pipeline.set_timed()
        oids: List[OID] = []
        rows: Optional[List[Dict[str, Any]]] = None
        pipeline.open()
        try:
            if query.aggregates:
                rows = [row for row in pipeline.rows()]
            elif query.projections is not None:
                rows = []
                for state, projected in pipeline.rows():
                    oids.append(state.oid)
                    rows.append(projected)
            else:
                for state in pipeline.rows():
                    oids.append(state.oid)
        finally:
            pipeline.close()
        self._m_examined.inc(pipeline.examined)
        self._m_matched.inc(pipeline.matched)
        self._m_probes.inc(pipeline.index_probes)
        return ResultSet(query, plan, oids, rows, ExecutionStats(pipeline), pipeline)

    def execute_rows(
        self, plan: Plan, kernel, scan: ScanClass, timed: bool = False
    ) -> ResultSet:
        """Run a plan whose rows are plain dicts (system views).

        Same compile-and-drain path as :meth:`execute`, but over a
        caller-supplied row kernel and scan callable instead of the
        object kernel — this is how SysWaitEvent & co. flow through the
        standard Volcano pipeline.  ``oids`` is always empty; ``rows``
        holds the (possibly projected) dicts in result order.
        """
        pipeline = compile_plan(plan, kernel, scan)
        if timed:
            pipeline.set_timed()
        query = plan.query
        rows: List[Dict[str, Any]] = []
        pipeline.open()
        try:
            if query.projections is not None:
                rows = [projected for _row, projected in pipeline.rows()]
            else:
                rows = [row for row in pipeline.rows()]
        finally:
            pipeline.close()
        self._m_examined.inc(pipeline.examined)
        self._m_matched.inc(pipeline.matched)
        result = ResultSet(query, plan, [], rows, ExecutionStats(pipeline), pipeline)
        result.system = True
        return result
