"""Query executor.

Runs a :class:`~repro.query.planner.Plan`: produces candidate objects via
the plan's access path, re-verifies the full predicate (index probes give
candidates, not answers — the residual and even the probed conjunct are
re-checked against current state), then applies ordering, projection and
limit.  Execution statistics (objects examined / matched) feed the
optimizer experiments.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from ..core.obj import ObjectState
from ..core.oid import OID
from ..errors import QueryError
from . import algebra
from .ast import AdtPredicate, Query
from .paths import Deref, evaluate_path
from .planner import (
    AccessPath,
    AdtIndexProbe,
    ExtentScan,
    IndexEqProbe,
    IndexInProbe,
    IndexRangeProbe,
    Plan,
)

ScanClass = Callable[[str], Iterable[ObjectState]]
Sender = Callable[..., Any]


class ExecutionStats:
    __slots__ = ("examined", "matched", "index_probes")

    def __init__(self) -> None:
        self.examined = 0
        self.matched = 0
        self.index_probes = 0


class ResultSet:
    """Query results.

    ``oids`` is always populated (in result order).  For projection
    queries ``rows`` holds dicts keyed by dotted path; otherwise callers
    materialize handles through the database.
    """

    def __init__(
        self,
        query: Query,
        plan: Plan,
        oids: List[OID],
        rows: Optional[List[Dict[str, Any]]],
        stats: ExecutionStats,
    ) -> None:
        self.query = query
        self.plan = plan
        self.oids = oids
        self.rows = rows
        self.stats = stats
        #: Annotated PlanNode root when executed under EXPLAIN ANALYZE.
        self.analysis = None

    def __len__(self) -> int:
        return len(self.rows) if self.rows is not None else len(self.oids)

    def __repr__(self) -> str:
        return "<ResultSet %d results via %s>" % (len(self), self.plan.access.description)


class Executor:
    """Plan interpreter over the database's storage-facing callables."""

    def __init__(
        self,
        deref: Deref,
        scan_class: ScanClass,
        send: Optional[Sender] = None,
        adt_eval: Optional[Callable[[AdtPredicate, ObjectState], bool]] = None,
    ) -> None:
        self._deref = deref
        self._scan_class = scan_class
        self._send = send
        self._adt_eval = adt_eval

    def execute(self, plan: Plan, analyze=None) -> ResultSet:
        """Run a plan.  ``analyze`` is an optional
        :class:`~repro.obs.explain.ExplainContext`; when given, each
        pipeline stage records produced rows and elapsed time into the
        context's PlanNode tree (EXPLAIN ANALYZE).
        """
        stats = ExecutionStats()
        started = time.perf_counter() if analyze is not None else 0.0
        candidates = self._candidates(plan, stats)
        if analyze is not None:
            candidates = analyze.instrument("access", candidates)
            filter_started = time.perf_counter()

        matched: List[ObjectState] = []
        where = plan.query.where
        for state in candidates:
            stats.examined += 1
            if state.class_name not in plan.scope:
                continue
            if where is not None and not algebra.evaluate_predicate(
                where, state, self._deref, self._send, self._adt_eval
            ):
                continue
            stats.matched += 1
            matched.append(state)

        if analyze is not None:
            # The loop interleaves candidate production and predicate
            # checks; the filter's own cost is the loop minus the access
            # time the instrumented iterator measured.
            loop_seconds = time.perf_counter() - filter_started
            access_node = analyze.node("access")
            access_seconds = (
                access_node.actual_seconds if access_node is not None else 0.0
            ) or 0.0
            analyze.annotate(
                "filter",
                rows=stats.matched,
                seconds=max(0.0, loop_seconds - access_seconds),
            )

        query = plan.query
        if query.aggregates:
            if analyze is not None:
                with analyze.timed("aggregate"):
                    rows = self._aggregate(query, matched)
                analyze.annotate("aggregate", rows=len(rows))
            else:
                rows = self._aggregate(query, matched)
            result = ResultSet(query, plan, [], rows, stats)
            self._finish_analysis(analyze, result, started, len(rows))
            return result

        sort_started = time.perf_counter() if analyze is not None else 0.0
        if query.order_by is not None:
            matched = algebra.order_by(
                matched, query.order_by.steps, self._deref, query.descending
            )
        else:
            matched.sort(key=lambda s: s.oid.value)
        if analyze is not None:
            analyze.annotate(
                "sort", rows=len(matched), seconds=time.perf_counter() - sort_started
            )
        if query.limit is not None:
            matched = matched[: query.limit]
            if analyze is not None:
                analyze.annotate("limit", rows=len(matched))

        oids = [state.oid for state in matched]
        rows: Optional[List[Dict[str, Any]]] = None
        if query.projections is not None:
            if analyze is not None:
                with analyze.timed("project"):
                    rows = list(
                        algebra.project(
                            matched, [p.steps for p in query.projections], self._deref
                        )
                    )
                analyze.annotate("project", rows=len(rows))
            else:
                rows = list(
                    algebra.project(
                        matched, [p.steps for p in query.projections], self._deref
                    )
                )
        result = ResultSet(query, plan, oids, rows, stats)
        self._finish_analysis(analyze, result, started, len(result))
        return result

    @staticmethod
    def _finish_analysis(analyze, result: ResultSet, started: float, rows: int) -> None:
        if analyze is None:
            return
        analyze.annotate("query", rows=rows, seconds=time.perf_counter() - started)
        result.analysis = analyze.root

    # -- aggregation ----------------------------------------------------------

    def _aggregate(self, query: Query, matched: List[ObjectState]) -> List[Dict[str, Any]]:
        """Fold matched objects into per-group summary rows."""
        groups: Dict[Any, List[ObjectState]] = {}
        if query.group_by is None:
            groups[None] = matched
        else:
            for state in matched:
                values = evaluate_path(state, query.group_by.steps, self._deref)
                key = values[0] if values else None
                groups.setdefault(key, []).append(state)

        from ..index.btree import normalize_key

        rows: List[Dict[str, Any]] = []
        for key in sorted(groups, key=lambda k: (k is None, normalize_key(k) if k is not None else 0)):
            members = groups[key]
            row: Dict[str, Any] = {}
            if query.group_by is not None:
                row[query.group_by.dotted()] = key
            for aggregate in query.aggregates or []:
                row[aggregate.label()] = self._fold(aggregate, members)
            rows.append(row)
        return rows

    def _fold(self, aggregate, members: List[ObjectState]) -> Any:
        if aggregate.path is None:  # count(*)
            return len(members)
        values = []
        for state in members:
            terminal = evaluate_path(state, aggregate.path.steps, self._deref)
            values.extend(v for v in terminal if v is not None)
        if aggregate.fn == "count":
            return len(values)
        if not values:
            return None
        if aggregate.fn == "sum":
            return sum(values)
        if aggregate.fn == "avg":
            return sum(values) / len(values)
        if aggregate.fn == "min":
            return min(values)
        return max(values)

    # -- candidate production -------------------------------------------------

    def _candidates(self, plan: Plan, stats: ExecutionStats) -> Iterator[ObjectState]:
        access = plan.access
        if isinstance(access, ExtentScan):
            return self._scan(access.classes)
        if isinstance(access, IndexEqProbe):
            stats.index_probes += 1
            oids = access.index.lookup_eq(access.value, plan.scope)
            return self._fetch(oids)
        if isinstance(access, IndexInProbe):
            stats.index_probes += 1
            oids = access.index.lookup_in(access.values, plan.scope)
            return self._fetch(oids)
        if isinstance(access, IndexRangeProbe):
            stats.index_probes += 1
            oids = access.index.lookup_range(
                access.low,
                access.high,
                access.include_low,
                access.include_high,
                plan.scope,
            )
            return self._fetch(oids)
        if isinstance(access, AdtIndexProbe):
            stats.index_probes += 1
            oids = [oid for oid in access.probe() if isinstance(oid, OID)]
            return self._fetch(sorted(set(oids)))
        raise QueryError("unknown access path %r" % (access,))

    def _scan(self, classes: List[str]) -> Iterator[ObjectState]:
        for class_name in classes:
            for state in self._scan_class(class_name):
                yield state

    def _fetch(self, oids: Iterable[OID]) -> Iterator[ObjectState]:
        for oid in oids:
            state = self._deref(oid)
            if state is not None:
                yield state
