"""Query executor: a thin driver over the physical operator pipeline.

A :class:`~repro.query.planner.Plan` is compiled (see
:mod:`repro.query.operators`) into a pull pipeline — leaf access path,
full-predicate re-check, sort/aggregate, limit, projection — and this
module merely drains it, collecting OIDs and projected rows in one
streaming pass.  Execution statistics are no longer counted here: they
*are* the operators' live ``rows_out`` counters, surfaced through the
legacy :class:`ExecutionStats` property view and rolled up into the
database :class:`~repro.obs.metrics.MetricsRegistry` after each run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from ..core.obj import ObjectState
from ..core.oid import OID
from ..obs.metrics import MetricsRegistry
from .ast import AdtPredicate, Query
from .operators import ObjectKernel, Pipeline, compile_plan
from .paths import Deref
from .planner import Plan

ScanClass = Callable[[str], Iterable[ObjectState]]
Sender = Callable[..., Any]


class ExecutionStats:
    """Legacy examined/matched/index_probes counters as a property view.

    The numbers live on the pipeline's operators (``examined`` is the
    candidate source's ``rows_out``, ``matched`` the filter's,
    ``index_probes`` the probe leaf's run count) — the same
    single-source-of-truth pattern the buffer and lock stats use over
    the metrics registry.
    """

    __slots__ = ("_pipeline",)

    def __init__(self, pipeline: Optional[Pipeline] = None) -> None:
        self._pipeline = pipeline

    @property
    def examined(self) -> int:
        return self._pipeline.examined if self._pipeline is not None else 0

    @property
    def matched(self) -> int:
        return self._pipeline.matched if self._pipeline is not None else 0

    @property
    def index_probes(self) -> int:
        return self._pipeline.index_probes if self._pipeline is not None else 0


class ResultSet:
    """Query results.

    ``oids`` is always populated (in result order).  For projection
    queries ``rows`` holds dicts keyed by dotted path; otherwise callers
    materialize handles through the database.  ``pipeline`` keeps the
    executed operator chain so stats (and EXPLAIN ANALYZE) read live
    counters.
    """

    def __init__(
        self,
        query: Query,
        plan: Plan,
        oids: List[OID],
        rows: Optional[List[Dict[str, Any]]],
        stats: ExecutionStats,
        pipeline: Optional[Pipeline] = None,
    ) -> None:
        self.query = query
        self.plan = plan
        self.oids = oids
        self.rows = rows
        self.stats = stats
        self.pipeline = pipeline
        #: Annotated PlanNode root when executed under EXPLAIN ANALYZE.
        self.analysis = None
        #: True for system statistics views (rows are generated dicts;
        #: ``oids`` is empty and there is nothing to materialize).
        self.system = False

    def operator_stats(self) -> List[Dict[str, Any]]:
        """Per-operator counters, leaf first (bench artifacts)."""
        return self.pipeline.operator_stats() if self.pipeline is not None else []

    def __len__(self) -> int:
        return len(self.rows) if self.rows is not None else len(self.oids)

    def __repr__(self) -> str:
        return "<ResultSet %d results via %s>" % (len(self), self.plan.access.description)


class Executor:
    """Compiles plans to operator pipelines and drains them."""

    def __init__(
        self,
        deref: Deref,
        scan_class: ScanClass,
        send: Optional[Sender] = None,
        adt_eval: Optional[Callable[[AdtPredicate, ObjectState], bool]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._scan_class = scan_class
        self.kernel = ObjectKernel(deref, send, adt_eval)
        registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self._m_examined = registry.counter("query.rows_examined")
        self._m_matched = registry.counter("query.rows_matched")
        self._m_probes = registry.counter("query.index_probes")

    def pipeline(self, plan: Plan) -> Pipeline:
        """Compile (but do not open) the physical pipeline for a plan."""
        return compile_plan(plan, self.kernel, self._scan_class)

    def execute(self, plan: Plan, timed: bool = False) -> ResultSet:
        """Run a plan.  With ``timed``, operators also accumulate
        per-stage wall-clock (EXPLAIN ANALYZE reads it off the chain).
        """
        pipeline = self.pipeline(plan)
        if timed:
            pipeline.set_timed()
        query = plan.query
        oids: List[OID] = []
        rows: Optional[List[Dict[str, Any]]] = None
        pipeline.open()
        try:
            if query.aggregates:
                rows = [row for row in pipeline.rows()]
            elif query.projections is not None:
                rows = []
                for state, projected in pipeline.rows():
                    oids.append(state.oid)
                    rows.append(projected)
            else:
                for state in pipeline.rows():
                    oids.append(state.oid)
        finally:
            pipeline.close()
        self._m_examined.inc(pipeline.examined)
        self._m_matched.inc(pipeline.matched)
        self._m_probes.inc(pipeline.index_probes)
        return ResultSet(query, plan, oids, rows, ExecutionStats(pipeline), pipeline)

    def execute_rows(
        self, plan: Plan, kernel, scan: ScanClass, timed: bool = False
    ) -> ResultSet:
        """Run a plan whose rows are plain dicts (system views).

        Same compile-and-drain path as :meth:`execute`, but over a
        caller-supplied row kernel and scan callable instead of the
        object kernel — this is how SysWaitEvent & co. flow through the
        standard Volcano pipeline.  ``oids`` is always empty; ``rows``
        holds the (possibly projected) dicts in result order.
        """
        pipeline = compile_plan(plan, kernel, scan)
        if timed:
            pipeline.set_timed()
        query = plan.query
        rows: List[Dict[str, Any]] = []
        pipeline.open()
        try:
            if query.projections is not None:
                rows = [projected for _row, projected in pipeline.rows()]
            else:
                rows = [row for row in pipeline.rows()]
        finally:
            pipeline.close()
        self._m_examined.inc(pipeline.examined)
        self._m_matched.inc(pipeline.matched)
        result = ResultSet(query, plan, [], rows, ExecutionStats(pipeline), pipeline)
        result.system = True
        return result
