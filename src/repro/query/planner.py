"""Query planner.

Section 2.2 of the paper recalls that declarative queries made "a major
new component, namely the query optimizer" necessary.  The kimdb planner
performs the OODB version of System-R-style access-path selection
[SELI79]: it determines the evaluation scope (class vs. class hierarchy),
extracts sargable conjuncts, matches them against available single-class,
class-hierarchy and nested-attribute indexes, estimates costs, and falls
back to an extent scan when no index wins (experiment E7's crossover).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

from ..core.schema import Schema
from ..errors import PlanningError
from ..index.base import Index
from ..index.manager import IndexManager
from .ast import AdtPredicate, Comparison, Expr, Query, conjuncts
from .paths import validate_path

#: Returns the number of direct instances of a class.
ExtentCount = Callable[[str], int]


class AccessPath:
    """How candidate objects are produced."""

    description = "abstract"


class ExtentScan(AccessPath):
    """Scan the direct extents of every class in scope."""

    def __init__(self, classes: Sequence[str]) -> None:
        self.classes = list(classes)
        self.description = "scan(%s)" % ", ".join(self.classes)


class EmptyScan(AccessPath):
    """Produce no candidates: the predicate is provably unsatisfiable.

    Emitted when the rewrite pass (:mod:`repro.analysis.rewrite`) proves
    the WHERE clause contradictory.  The executor compiles it to an
    operator that touches no storage, and ``Database`` skips scan locks
    for it — a provably-empty query costs nothing beyond its analysis.
    """

    def __init__(self, classes: Sequence[str], reason: str = "") -> None:
        self.classes = list(classes)
        self.reason = reason
        self.description = "empty-scan(%s)" % ", ".join(self.classes)


class IndexEqProbe(AccessPath):
    def __init__(self, index: Index, value: Any) -> None:
        self.index = index
        self.value = value
        self.description = "index-eq(%s = %r)" % (index.name, value)


class IndexInProbe(AccessPath):
    def __init__(self, index: Index, values: Sequence[Any]) -> None:
        self.index = index
        self.values = list(values)
        self.description = "index-in(%s in %r)" % (index.name, self.values)


class IndexRangeProbe(AccessPath):
    def __init__(
        self,
        index: Index,
        low: Any,
        high: Any,
        include_low: bool,
        include_high: bool,
    ) -> None:
        self.index = index
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.description = "index-range(%s in %s%r, %r%s)" % (
            index.name,
            "[" if include_low else "(",
            low,
            high,
            "]" if include_high else ")",
        )


class AdtIndexProbe(AccessPath):
    """Probe a registered ADT access method (e.g. a spatial grid)."""

    def __init__(self, predicate: AdtPredicate, probe: Callable[[], List[Any]]) -> None:
        self.predicate = predicate
        self.probe = probe
        self.description = "adt-index(%s on %s)" % (
            predicate.name,
            predicate.path.dotted(),
        )


class IndexOrderScan(AccessPath):
    """Walk an index in key order: ORDER BY without a sort.

    Chosen only under a LIMIT — the point is that the pipeline above can
    stop after k matches, so the walk (and the dereferences it feeds)
    never touches most of the extent.
    """

    def __init__(self, index: Index, descending: bool = False) -> None:
        self.index = index
        self.descending = descending
        self.description = "index-order-scan(%s%s)" % (
            index.name,
            " desc" if descending else "",
        )


class SystemScan(AccessPath):
    """Scan one system statistics view (SysStat, SysWaitEvent, ...).

    System views are virtual extents produced by the observability layer
    (:mod:`repro.obs.sysviews`); there is nothing to index, so the only
    access path is a full scan of the generated rows.
    """

    def __init__(self, view: str) -> None:
        self.view = view
        self.description = "system(%s)" % view


class Plan:
    """An executable plan: access path + residual filter + finishing."""

    def __init__(
        self,
        query: Query,
        scope: Set[str],
        access: AccessPath,
        residual: Optional[Expr],
        estimated_cost: float,
        notes: Optional[List[str]] = None,
    ) -> None:
        self.query = query
        self.scope = scope
        self.access = access
        self.residual = residual
        self.estimated_cost = estimated_cost
        self.notes = notes or []
        #: The :class:`~repro.analysis.rewrite.RewriteResult` this plan
        #: was built from (set by ``Database``; None for direct planner
        #: calls).  EXPLAIN renders its applied rules.
        self.rewrite = None
        #: True once this plan has been served from the plan cache.
        self.cached = False
        #: The :class:`~repro.query.cost.CostDecision` that produced (or
        #: declined to produce) this plan; None when no ANALYZE catalog
        #: was offered.  EXPLAIN renders it as the ``-- cost --`` section.
        self.cost = None

    def explain(self) -> str:
        lines = [
            "target: %s%s"
            % (self.query.target_class, "" if self.query.hierarchy else " (ONLY)"),
            "scope: %s" % ", ".join(sorted(self.scope)),
            "access: %s" % self.access.description,
            "residual: %r" % (self.residual,),
            "estimated cost: %.1f" % self.estimated_cost,
        ]
        lines.extend("note: %s" % note for note in self.notes)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "<Plan %s cost=%.1f>" % (self.access.description, self.estimated_cost)


class Planner:
    """Chooses an access path for a query."""

    #: Assumed fraction of index entries matched by a one-sided range —
    #: a deliberately crude System-R style magic constant, used only when
    #: the B+-tree cannot interpolate (non-numeric keys).
    RANGE_SELECTIVITY = 1.0 / 3.0

    #: Cost multiplier for index-driven access: each candidate is a
    #: random fetch (directory lookup + page access) whereas a scan reads
    #: extents sequentially.  Makes near-whole-extent ranges lose to the
    #: scan, as they should.
    INDEX_PROBE_PENALTY = 1.2

    def __init__(
        self,
        schema: Schema,
        indexes: IndexManager,
        extent_count: ExtentCount,
        adt_registry=None,
        system_catalog=None,
        page_size: int = 4096,
    ) -> None:
        self.schema = schema
        self.indexes = indexes
        self.extent_count = extent_count
        self.adt_registry = adt_registry
        #: Storage page size, used by the cost model to convert ANALYZE
        #: byte counts into estimated pages read.
        self.page_size = page_size
        #: Optional :class:`~repro.obs.sysviews.SystemCatalog`; when a
        #: query targets one of its views the planner short-circuits to a
        #: SystemScan (duck-typed — no import, the obs layer already
        #: imports the query layer).
        self.system_catalog = system_catalog

    # -- public API --------------------------------------------------------

    def plan(
        self,
        query: Query,
        exclude_classes: Sequence[str] = (),
        facts=None,
        stats=None,
        downgrade_hint=None,
    ) -> Plan:
        """Choose an access path.

        ``stats`` is an optional ANALYZE
        :class:`~repro.obs.stats.StatisticsCatalog` (duck-typed, like
        the system catalog).  When present and fresh, access-path
        selection runs through :class:`~repro.query.cost.CostModel` —
        every candidate costed in estimated pages + rows from the
        catalog's cardinalities and histograms, cheapest wins.  When the
        catalog is missing, stale (``stale_reason``) or incomplete, the
        planner falls back to its live-count heuristics; either way the
        resulting :class:`~repro.query.cost.CostDecision` rides on
        ``plan.cost`` for EXPLAIN and the plan cache.

        ``downgrade_hint`` (bool or ``callable(scope) -> bool``) tells
        the cost model that the executor would downgrade index probes to
        extent scans (live snapshot version entries in scope).
        """
        # System statistics views bypass schema validation entirely: they
        # are not classes, have no hierarchy, no extents and no indexes.
        if self.system_catalog is not None and self.system_catalog.is_system(
            query.target_class
        ):
            return Plan(
                query,
                {query.target_class},
                SystemScan(query.target_class),
                query.where,
                float(self.system_catalog.estimate_rows(query.target_class)),
                ["system view: observability rows, generated at open()"],
            )
        scope = self._scope_of(query)
        # Class-hierarchy pruning facts from semantic analysis: subclasses
        # whose instances can never satisfy the predicate.  The target
        # class itself is never pruned (the fact would mean an empty
        # query, which still must plan and return no rows).
        pruned = sorted(
            scope.intersection(exclude_classes) - {query.target_class}
        )
        scope = scope - set(pruned)
        self._validate(query, scope)
        # Abstract interpretation proved no object can match: an empty
        # scan touches no extents, probes no indexes, takes no locks.
        if facts is not None and facts.contradiction:
            return Plan(
                query,
                scope,
                EmptyScan(sorted(scope), facts.reason or ""),
                query.where,
                0.0,
                ["rewrite proved the predicate unsatisfiable: %s" % facts.reason],
            )
        scan_cost = float(sum(self.extent_count(cls) for cls in scope))

        base_notes: List[str] = []
        if pruned:
            base_notes.append(
                "analysis pruned %s from scope (predicate statically "
                "unsatisfiable there)" % ", ".join(pruned)
            )
        if stats is not None:
            analyzed = [
                rows
                for rows in (stats.class_rows(cls) for cls in scope)
                if rows is not None
            ]
            if analyzed:
                base_notes.append(
                    "stats: ANALYZE measured %d row(s) in scope "
                    "(schema v%d) vs live extent count %d"
                    % (sum(analyzed), stats.schema_version, int(scan_cost))
                )

        decision = None
        if stats is not None:
            decision = self._cost_decision(query, scope, facts, stats, downgrade_hint)
        if decision is not None and decision.mode == "statistics":
            return self._plan_from_decision(query, scope, decision, base_notes)
        if decision is not None:
            base_notes.append(
                "cost model declined: %s — using live-count heuristics"
                % decision.reason
            )

        plan = self._heuristic_plan(query, scope, facts, scan_cost, base_notes)
        plan.cost = decision
        return plan

    def _heuristic_plan(
        self,
        query: Query,
        scope: Set[str],
        facts,
        scan_cost: float,
        notes: List[str],
    ) -> Plan:
        """Live-count access-path selection (the pre-ANALYZE rules)."""
        best: Optional[Tuple[float, AccessPath, List[Expr]]] = None
        predicates = conjuncts(query.where)
        for position, predicate in enumerate(predicates):
            candidate = self._index_candidate(query, predicate, scope)
            if candidate is None:
                continue
            cost, access = candidate
            cost *= self.INDEX_PROBE_PENALTY
            if best is None or cost < best[0]:
                residual = predicates[:position] + predicates[position + 1 :]
                best = (cost, access, residual)
        for steps, bounds in (facts.ranges if facts is not None else {}).items():
            candidate = self._facts_range_candidate(query, steps, bounds, scope)
            if candidate is None:
                continue
            cost, access = candidate
            cost *= self.INDEX_PROBE_PENALTY
            if best is None or cost < best[0]:
                # The probe already enforces both bounds, but the filter
                # above the scan rechecks the full predicate anyway, so
                # the residual keeps every conjunct.
                best = (cost, access, list(predicates))

        if best is not None and best[0] < scan_cost:
            cost, access, residual_list = best
            residual = _and_together(residual_list)
            notes.append(
                "index access chosen: est %.1f vs scan %.1f" % (cost, scan_cost)
            )
            return Plan(query, scope, access, residual, cost, notes)
        if best is not None:
            notes.append(
                "index available but scan cheaper: est %.1f vs scan %.1f"
                % (best[0], scan_cost)
            )
        ordered = self._ordered_scan_candidate(query, scope)
        if ordered is not None:
            notes.append(
                "ordered index scan: ORDER BY %s served by index %s, "
                "LIMIT %d stops the walk early"
                % (query.order_by.dotted(), ordered.index.name, query.limit)
            )
            return Plan(query, scope, ordered, query.where, scan_cost, notes)
        return Plan(query, scope, ExtentScan(sorted(scope)), query.where, scan_cost, notes)

    # -- cost-model path ---------------------------------------------------

    def _cost_decision(
        self, query: Query, scope: Set[str], facts, stats, downgrade_hint
    ):
        """Run the cost model, or explain why it must stand down."""
        from .cost import CostDecision, CostModel

        schema_version = getattr(self.schema, "version", 0)
        index_epoch = getattr(self.indexes, "epoch", 0)
        stale = stats.stale_reason(schema_version, index_epoch)
        if stale is not None:
            return CostDecision.heuristic(
                "statistics are stale (%s)" % stale,
                stats.schema_version,
                stats.index_epoch,
                stale_reason=stale,
            )
        model = CostModel(
            self.schema,
            self.indexes,
            stats,
            page_size=self.page_size,
            adt_registry=self.adt_registry,
        )
        if callable(downgrade_hint):
            downgrade = bool(downgrade_hint(scope))
        else:
            downgrade = bool(downgrade_hint)
        return model.decide(
            query,
            scope,
            facts=facts,
            ordered=self._ordered_scan_candidate(query, scope),
            downgrade=downgrade,
        )

    def _plan_from_decision(
        self, query: Query, scope: Set[str], decision, notes: List[str]
    ) -> Plan:
        """Materialize the cost model's winning candidate as a Plan."""
        chosen = decision.chosen
        notes = list(notes)
        notes.append(
            "cost: statistics model chose %s (total %.1f) among %d "
            "candidate(s)"
            % (chosen.access.description, chosen.total, len(decision.candidates))
        )
        if chosen.note:
            notes.append("cost: %s" % chosen.note)
        if chosen.residual is None:
            residual = query.where
        else:
            residual = _and_together(chosen.residual)
        plan = Plan(query, scope, chosen.access, residual, chosen.rows, notes)
        plan.cost = decision
        return plan

    # -- internals -------------------------------------------------------------

    def _scope_of(self, query: Query) -> Set[str]:
        if query.hierarchy:
            return set(self.schema.hierarchy_of(query.target_class))
        return {query.target_class}

    def _validate(self, query: Query, scope: Set[str]) -> None:
        self.schema.get_class(query.target_class)
        for predicate in conjuncts(query.where):
            if isinstance(predicate, Comparison):
                validate_path(self.schema, query.target_class, predicate.path.steps)
        for path in query.projections or []:
            validate_path(self.schema, query.target_class, path.steps)
        for aggregate in query.aggregates or []:
            if aggregate.path is not None:
                validate_path(self.schema, query.target_class, aggregate.path.steps)
        if query.group_by is not None:
            validate_path(self.schema, query.target_class, query.group_by.steps)
        if query.order_by is not None:
            validate_path(self.schema, query.target_class, query.order_by.steps)
        if not scope:
            raise PlanningError("empty evaluation scope for %r" % (query,))

    def _ordered_scan_candidate(
        self, query: Query, scope: Set[str]
    ) -> Optional[IndexOrderScan]:
        """An ordered index walk serving ORDER BY ... LIMIT, if sound.

        Requires a covering B+-tree index on the (single-step,
        single-valued) ordering attribute and a LIMIT to cash in the
        early termination; without a LIMIT a scan + sort reads the same
        rows with better locality.  Nested-attribute indexes are
        excluded: their keys are path terminals, whose None/missing
        partition does not coincide with the executor's per-object
        ordering semantics.
        """
        if query.order_by is None or query.limit is None or query.aggregates:
            return None
        steps = query.order_by.steps
        if len(steps) != 1:
            return None
        index = self.indexes.find_index(query.target_class, steps, scope)
        if index is None or index.kind not in ("single-class", "class-hierarchy"):
            return None
        attribute = steps[0]
        for cls in scope:
            declared = self.schema.attributes(cls)
            if attribute not in declared or declared[attribute].multi:
                return None
        return IndexOrderScan(index, query.descending)

    def _facts_range_candidate(
        self,
        query: Query,
        steps: Tuple[str, ...],
        bounds: Tuple[Any, bool, Any, bool],
        scope: Set[str],
    ) -> Optional[Tuple[float, AccessPath]]:
        """A two-sided index range probe from rewrite-derived bounds.

        Per-conjunct matching only ever sees one side of a range
        (``x > 5`` or ``x <= 9``); the rewrite pass proves the conjuncts
        jointly confine the path to an interval, which probes a much
        narrower key range.  Sound because the facts are only emitted
        for paths yielding at most one value per object in every scope
        class — any matching object's key lies inside the interval.
        """
        index = self.indexes.find_index(query.target_class, steps, scope)
        if index is None:
            return None
        low, include_low, high, include_high = bounds
        cost = float(index.tree.estimate_range(low=low, high=high))
        return cost, IndexRangeProbe(index, low, high, include_low, include_high)

    def _index_candidate(
        self, query: Query, predicate: Expr, scope: Set[str]
    ) -> Optional[Tuple[float, AccessPath]]:
        if isinstance(predicate, AdtPredicate) and self.adt_registry is not None:
            probe = self.adt_registry.access_method(
                predicate.name, query.target_class, predicate.path.steps, predicate.args
            )
            if probe is not None:
                estimated = probe.estimated_matches()
                return float(estimated), AdtIndexProbe(predicate, probe.run)
            return None
        if not isinstance(predicate, Comparison):
            return None
        index = self.indexes.find_index(query.target_class, predicate.path.steps, scope)
        if index is None:
            return None
        value = predicate.const.value
        if predicate.op in ("=", "contains"):
            cost = float(len(index.tree.search(value)))
            return cost, IndexEqProbe(index, value)
        if predicate.op == "in":
            cost = float(sum(len(index.tree.search(v)) for v in value))
            return cost, IndexInProbe(index, value)
        if predicate.op in ("<", "<=", ">", ">="):
            if predicate.op in ("<", "<="):
                cost = float(index.tree.estimate_range(high=value))
            else:
                cost = float(index.tree.estimate_range(low=value))
            if predicate.op == "<":
                return cost, IndexRangeProbe(index, None, value, True, False)
            if predicate.op == "<=":
                return cost, IndexRangeProbe(index, None, value, True, True)
            if predicate.op == ">":
                return cost, IndexRangeProbe(index, value, None, False, True)
            return cost, IndexRangeProbe(index, value, None, True, True)
        # != and LIKE are not sargable.
        return None


def _and_together(predicates: List[Expr]) -> Optional[Expr]:
    from .ast import And

    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return And(predicates)
