"""Path evaluation along the aggregation hierarchy.

Evaluating ``v.manufacturer.location`` on a vehicle requires fetching the
referenced company — this module is where queries "join" through object
references.  Set-valued steps fan out; path predicates use existential
semantics (the predicate holds if *any* terminal value satisfies it),
the standard reading for OODB path queries.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..core.obj import ObjectState
from ..core.oid import OID
from ..core.schema import Schema
from ..errors import QueryError

Deref = Callable[[OID], Optional[ObjectState]]


def evaluate_path(
    state: ObjectState,
    steps: Sequence[str],
    deref: Deref,
) -> List[Any]:
    """All terminal values of a path from one object.

    Broken chains (None or dangling intermediate references) contribute
    nothing.  Terminal OID values are returned as OIDs (so reference
    equality predicates work).
    """
    frontier: List[ObjectState] = [state]
    values: List[Any] = []
    for step_no, attr_name in enumerate(steps):
        is_last = step_no == len(steps) - 1
        next_frontier: List[ObjectState] = []
        for obj in frontier:
            value = obj.values.get(attr_name)
            elements = value if isinstance(value, list) else [value]
            for element in elements:
                if is_last:
                    values.append(element)
                    continue
                if not isinstance(element, OID):
                    continue
                referenced = deref(element)
                if referenced is not None:
                    next_frontier.append(referenced)
        frontier = next_frontier
        if is_last:
            break
    return values


def validate_path(schema: Schema, target_class: str, steps: Sequence[str]) -> str:
    """Semantic check of a path against the schema.

    Returns the domain class of the terminal attribute.  Delegates to the
    shared resolver in :mod:`repro.analysis.resolve` (the same walk the
    semantic analyzer uses), raising :class:`~repro.errors.QueryError`
    where the analyzer would emit a diagnostic.
    """
    # Local import: repro.analysis.semantic imports repro.query.ast, so a
    # module-level import here would tie the two packages into a knot.
    from ..analysis.resolve import resolve_path

    resolution = resolve_path(schema, target_class, steps)
    if not resolution.ok:
        raise QueryError("path %r: %s" % (".".join(steps), resolution.failure))
    assert resolution.domain is not None
    return resolution.domain


def compare(op: str, candidate: Any, literal: Any) -> bool:
    """Apply one comparison operator to a terminal value and a literal."""
    if op == "=":
        return _eq(candidate, literal)
    if op == "!=":
        return not _eq(candidate, literal)
    if op == "like":
        return _like(candidate, literal)
    if op == "in":
        return any(_eq(candidate, item) for item in literal)
    if op == "contains":
        # contains compares a set-valued terminal against a member literal;
        # by the time we're called fan-out already happened, so it is =.
        return _eq(candidate, literal)
    if candidate is None or literal is None:
        return False
    try:
        if op == "<":
            return candidate < literal
        if op == "<=":
            return candidate <= literal
        if op == ">":
            return candidate > literal
        if op == ">=":
            return candidate >= literal
    except TypeError:
        return False
    raise QueryError("unknown comparison operator %r" % (op,))


def _eq(candidate: Any, literal: Any) -> bool:
    if isinstance(candidate, OID) or isinstance(literal, OID):
        return isinstance(candidate, OID) and isinstance(literal, OID) and candidate == literal
    if isinstance(candidate, bool) != isinstance(literal, bool):
        return False
    return candidate == literal


def _like(candidate: Any, pattern: Any) -> bool:
    """SQL LIKE with ``%`` (any run) and ``_`` (any one character)."""
    if not isinstance(candidate, str) or not isinstance(pattern, str):
        return False
    import fnmatch

    translated = (
        pattern.replace("\\", "\\\\")
        .replace("*", "[*]")
        .replace("?", "[?]")
        .replace("%", "*")
        .replace("_", "?")
    )
    return fnmatch.fnmatchcase(candidate, translated)
