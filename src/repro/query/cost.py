"""Statistics-driven cost model for access-path selection.

The paper names query optimization as a core open research direction
for OODBs; this module is kimdb's System-R answer [SELI79] built on the
engine's own measurements.  ``Database.analyze()`` distills extents and
indexes into a :class:`~repro.obs.stats.StatisticsCatalog` (per-class
row counts and byte sizes, per-index distinct-key counts and equi-depth
histograms); :class:`CostModel` turns those facts into a
:class:`CostDecision` — every candidate access path costed in
*estimated pages read* plus *rows examined*, cheapest wins.

Selectivity estimation:

- equality / ``contains``: ``1 / distinct_keys`` (average duplication),
  clamped to zero when the probe value falls outside the indexed
  ``[low, high]`` domain;
- ``in``: the sum of the member equality estimates, capped at 1;
- ranges: equi-depth histogram bucket classification.  Buckets provably
  inside the interval contribute their full depth to both the floor and
  the ceiling of the estimate; buckets that merely overlap contribute
  only to the ceiling; the estimate is the midpoint, so the true row
  count always lies in ``[floor, ceiling]`` (the property the hypothesis
  suite checks);
- conjunctions: the product of conjunct selectivities (the classical
  independence assumption);
- disjunctions: inclusion-exclusion under the same assumption;
- class-hierarchy fan-in: scope cardinality is the *sum* of per-class
  ANALYZE row counts, so a hierarchy query is costed over every extent
  it will actually touch.

Cost units: one sequential page read costs :data:`PAGE_COST` row
examinations; an index match is a random object fetch (one page touch
per row) after :data:`BTREE_DESCEND_PAGES` to walk the tree.  A
snapshot-downgrade hint (live version entries in scope) re-costs every
index candidate at extent-scan cost, because that is what the executor
would actually run.

The model never runs on facts it cannot trust: the planner falls back
to its live-count heuristics when the catalog is missing, when
``stale_reason`` fires (schema version or index epoch moved since
ANALYZE), or when a scope class is absent from the catalog.  The
resulting :class:`CostDecision` — statistics-driven or heuristic, with
every candidate's numbers — rides on the plan for EXPLAIN's ``-- cost
--`` section and the plan cache's re-cost protocol.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence, Set, Tuple

from .ast import AdtPredicate, And, Comparison, Expr, Not, Or, Query, conjuncts

#: One sequential page read costs this many row examinations.
PAGE_COST = 4.0

#: Pages touched descending the B+-tree root-to-leaf per probe.
BTREE_DESCEND_PAGES = 2.0

#: Fallback selectivities for predicates with no covering index stat.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.25
DEFAULT_OPAQUE_SELECTIVITY = 0.5


def _clamp(fraction: float) -> float:
    return min(1.0, max(0.0, fraction))


class RangeEstimate:
    """Histogram range estimate with provable bounds.

    ``floor`` counts entries in buckets wholly inside the interval,
    ``ceiling`` adds every bucket the interval merely overlaps, so the
    true match count always satisfies ``floor <= true <= ceiling``;
    ``rows`` is the midpoint.
    """

    __slots__ = ("rows", "floor", "ceiling")

    def __init__(self, rows: float, floor: float, ceiling: float) -> None:
        self.rows = rows
        self.floor = floor
        self.ceiling = ceiling

    def __repr__(self) -> str:
        return "<RangeEstimate %.1f in [%.1f, %.1f]>" % (
            self.rows,
            self.floor,
            self.ceiling,
        )


def equality_rows(stat: Any, value: Any) -> float:
    """Estimated entries matched by an equality probe on one index."""
    if stat.entries <= 0 or stat.distinct_keys <= 0:
        return 0.0
    try:
        if stat.low is not None and value < stat.low:
            return 0.0
        if stat.high is not None and value > stat.high:
            return 0.0
    except TypeError:
        # Probe value incomparable with the indexed domain (mixed
        # types): keep the average-duplication estimate.
        pass
    return stat.entries / float(stat.distinct_keys)


def _bucket_versus_interval(
    lo_edge: Any,
    lo_inclusive: bool,
    hi_edge: Any,
    low: Any,
    include_low: bool,
    high: Any,
    include_high: bool,
) -> str:
    """Classify one histogram bucket against a query interval.

    The bucket holds keys ``k`` with ``lo_edge < k <= hi_edge``
    (``lo_edge <= k`` for the first bucket, whose edge is the index
    minimum).  Returns ``"inside"``, ``"outside"`` or ``"partial"`` —
    conservative: only provable containment/exclusion, everything else
    is partial.
    """
    # Provably below the interval: every key <= hi_edge fails k >= low.
    if low is not None and (
        hi_edge < low or (hi_edge == low and not include_low)
    ):
        return "outside"
    # Provably above the interval: every key > / >= lo_edge fails k <= high.
    if high is not None and lo_edge is not None:
        if lo_inclusive:
            if lo_edge > high or (lo_edge == high and not include_high):
                return "outside"
        elif lo_edge >= high:
            return "outside"
    lower_ok = low is None or (
        lo_edge is not None
        and (
            (lo_edge > low or (lo_edge == low and include_low))
            if lo_inclusive
            else lo_edge >= low
        )
    )
    upper_ok = high is None or hi_edge < high or (
        hi_edge == high and include_high
    )
    if lower_ok and upper_ok:
        return "inside"
    return "partial"


def range_estimate(
    stat: Any,
    low: Any,
    include_low: bool,
    high: Any,
    include_high: bool,
) -> RangeEstimate:
    """Estimated entries in ``[low, high]`` from the equi-depth histogram."""
    entries = float(stat.entries)
    if entries <= 0:
        return RangeEstimate(0.0, 0.0, 0.0)
    boundaries = list(stat.boundaries)
    if not boundaries:
        return RangeEstimate(entries * DEFAULT_RANGE_SELECTIVITY, 0.0, entries)
    depths: List[float] = [float(d) for d in stat.depths]
    if len(depths) != len(boundaries):
        # Catalog predates per-bucket depths: assume uniform depth.
        depths = [entries / float(len(boundaries))] * len(boundaries)
    floor = 0.0
    ceiling = 0.0
    try:
        for i, (bound, depth) in enumerate(zip(boundaries, depths)):
            if i == 0:
                lo_edge, lo_inclusive = stat.low, True
            else:
                lo_edge, lo_inclusive = boundaries[i - 1], False
            kind = _bucket_versus_interval(
                lo_edge, lo_inclusive, bound, low, include_low, high, include_high
            )
            if kind == "inside":
                floor += depth
                ceiling += depth
            elif kind == "partial":
                ceiling += depth
    except TypeError:
        # Query bound incomparable with histogram keys: magic constant.
        return RangeEstimate(entries * DEFAULT_RANGE_SELECTIVITY, 0.0, entries)
    return RangeEstimate((floor + ceiling) / 2.0, floor, ceiling)


class CandidateCost:
    """One costed access-path alternative."""

    __slots__ = (
        "kind",
        "access",
        "pages",
        "rows",
        "selectivity",
        "residual",
        "rank",
        "chosen",
        "note",
    )

    def __init__(
        self,
        kind: str,
        access: Any,
        pages: float,
        rows: float,
        selectivity: float,
        residual: Optional[List[Expr]],
        rank: int,
        note: str = "",
    ) -> None:
        self.kind = kind
        self.access = access
        self.pages = pages
        self.rows = rows
        self.selectivity = selectivity
        #: Residual conjuncts to re-check above the access path; ``None``
        #: means "the full WHERE clause".
        self.residual = residual
        #: Tie-break preference (lower wins at equal total); the extent
        #: scan ranks first so equal-cost decisions stay boring.
        self.rank = rank
        self.chosen = False
        self.note = note

    @property
    def total(self) -> float:
        return self.pages * PAGE_COST + self.rows

    def describe(self) -> str:
        text = "%s: pages=%.1f rows=%.1f total=%.1f" % (
            self.access.description,
            self.pages,
            self.rows,
            self.total,
        )
        if self.note:
            text += " (%s)" % self.note
        return text


class CostDecision:
    """The outcome of one costing attempt, statistics-driven or not."""

    __slots__ = (
        "mode",
        "reason",
        "stale_reason",
        "candidates",
        "chosen",
        "estimated_rows",
        "schema_version",
        "index_epoch",
    )

    def __init__(
        self,
        mode: str,
        reason: str,
        candidates: List[CandidateCost],
        chosen: Optional[CandidateCost],
        estimated_rows: float,
        schema_version: int,
        index_epoch: int,
        stale_reason: Optional[str] = None,
    ) -> None:
        #: ``"statistics"`` when the model chose the plan, ``"heuristic"``
        #: when the planner's live-count rules did (with ``reason`` why).
        self.mode = mode
        self.reason = reason
        self.stale_reason = stale_reason
        self.candidates = candidates
        self.chosen = chosen
        self.estimated_rows = estimated_rows
        self.schema_version = schema_version
        self.index_epoch = index_epoch

    @classmethod
    def heuristic(
        cls,
        reason: str,
        schema_version: int = 0,
        index_epoch: int = 0,
        stale_reason: Optional[str] = None,
    ) -> "CostDecision":
        return cls(
            "heuristic",
            reason,
            [],
            None,
            0.0,
            schema_version,
            index_epoch,
            stale_reason=stale_reason,
        )

    def __repr__(self) -> str:
        if self.mode == "statistics" and self.chosen is not None:
            return "<CostDecision statistics %s total=%.1f>" % (
                self.chosen.access.description,
                self.chosen.total,
            )
        return "<CostDecision heuristic: %s>" % self.reason


class CostModel:
    """Costs every candidate access path for one query against ANALYZE facts."""

    def __init__(
        self,
        schema: Any,
        indexes: Any,
        stats: Any,
        page_size: int = 4096,
        adt_registry: Any = None,
    ) -> None:
        self.schema = schema
        self.indexes = indexes
        self.stats = stats
        self.page_size = max(1, int(page_size))
        self.adt_registry = adt_registry

    # -- public API --------------------------------------------------------

    def decide(
        self,
        query: Query,
        scope: Set[str],
        facts: Any = None,
        ordered: Any = None,
        downgrade: bool = False,
    ) -> CostDecision:
        """Cost every candidate and pick the cheapest.

        ``ordered`` is the planner's (already soundness-checked)
        :class:`~repro.query.planner.IndexOrderScan` candidate or None;
        ``downgrade`` reports that the executor would downgrade index
        probes to extent scans (live snapshot version entries in scope).
        """
        schema_version = self.stats.schema_version
        index_epoch = self.stats.index_epoch
        total_rows = 0.0
        scan_pages = 0.0
        for cls in sorted(scope):
            stat = self.stats.class_stats.get(cls)
            if stat is None:
                return CostDecision.heuristic(
                    "class %s missing from the ANALYZE catalog" % cls,
                    schema_version,
                    index_epoch,
                )
            total_rows += stat.rows
            if stat.rows:
                scan_pages += max(
                    1.0, math.ceil(stat.total_bytes / float(self.page_size))
                )

        predicates = conjuncts(query.where)
        selectivities = [
            self._selectivity(query, predicate, scope) for predicate in predicates
        ]
        output_sel = 1.0
        for sel in selectivities:
            output_sel *= _clamp(sel)
        estimated_out = total_rows * output_sel

        candidates: List[CandidateCost] = [
            CandidateCost(
                "extent-scan",
                _extent_scan(sorted(scope)),
                scan_pages,
                total_rows,
                output_sel,
                None,
                rank=0,
            )
        ]
        for position, predicate in enumerate(predicates):
            candidate = self._probe_candidate(
                query, position, predicate, predicates, scope
            )
            if candidate is not None:
                candidates.append(candidate)
        for steps, bounds in (facts.ranges if facts is not None else {}).items():
            candidate = self._facts_candidate(query, steps, bounds, predicates, scope)
            if candidate is not None:
                candidates.append(candidate)
        if ordered is not None and query.limit is not None:
            need = float(query.limit)
            expected = min(
                total_rows,
                need / max(output_sel, 1e-9) if predicates else need,
            )
            candidates.append(
                CandidateCost(
                    "index-order",
                    ordered,
                    BTREE_DESCEND_PAGES + expected,
                    expected,
                    output_sel,
                    None,
                    rank=2,
                    note="walk stops after ~%.0f row(s) for LIMIT %d"
                    % (expected, query.limit),
                )
            )

        if downgrade:
            # The executor would run every index candidate as an extent
            # scan (live version entries in scope) — cost them as what
            # they would actually execute as, so the scan wins outright.
            for candidate in candidates:
                if candidate.kind != "extent-scan":
                    candidate.pages = scan_pages
                    candidate.rows = total_rows
                    candidate.note = (
                        "snapshot version entries in scope: would execute "
                        "as an extent scan"
                    )

        chosen = min(
            candidates,
            key=lambda c: (c.total, c.rank, c.access.description),
        )
        chosen.chosen = True
        return CostDecision(
            "statistics",
            "",
            candidates,
            chosen,
            estimated_out,
            schema_version,
            index_epoch,
        )

    # -- selectivity -------------------------------------------------------

    def _selectivity(self, query: Query, expr: Expr, scope: Set[str]) -> float:
        if isinstance(expr, Comparison):
            return self._comparison_selectivity(query, expr, scope)
        if isinstance(expr, And):
            sel = 1.0
            for child in expr.operands:
                sel *= _clamp(self._selectivity(query, child, scope))
            return sel
        if isinstance(expr, Or):
            miss = 1.0
            for child in expr.operands:
                miss *= 1.0 - _clamp(self._selectivity(query, child, scope))
            return 1.0 - miss
        if isinstance(expr, Not):
            return 1.0 - _clamp(self._selectivity(query, expr.operand, scope))
        if isinstance(expr, AdtPredicate) and self.adt_registry is not None:
            probe = self.adt_registry.access_method(
                expr.name, query.target_class, expr.path.steps, expr.args
            )
            if probe is not None:
                total = sum(
                    (self.stats.class_rows(cls) or 0) for cls in scope
                )
                if total > 0:
                    return _clamp(probe.estimated_matches() / float(total))
        return DEFAULT_OPAQUE_SELECTIVITY

    def _comparison_selectivity(
        self, query: Query, predicate: Comparison, scope: Set[str]
    ) -> float:
        stat = self._index_stat_for(query, predicate.path.steps, scope)
        op = predicate.op
        value = predicate.const.value
        if op in ("=", "contains"):
            if stat is not None and stat.entries > 0:
                return _clamp(equality_rows(stat, value) / float(stat.entries))
            return DEFAULT_EQ_SELECTIVITY
        if op == "in":
            try:
                members = list(value)
            except TypeError:
                members = [value]
            if stat is not None and stat.entries > 0:
                matched = sum(equality_rows(stat, v) for v in members)
                return _clamp(matched / float(stat.entries))
            return _clamp(len(members) * DEFAULT_EQ_SELECTIVITY)
        if op == "!=":
            if stat is not None and stat.entries > 0:
                return _clamp(
                    1.0 - equality_rows(stat, value) / float(stat.entries)
                )
            return 1.0 - DEFAULT_EQ_SELECTIVITY
        if op in ("<", "<=", ">", ">="):
            if stat is not None and stat.entries > 0:
                low, include_low, high, include_high = _one_sided_bounds(op, value)
                estimate = range_estimate(stat, low, include_low, high, include_high)
                return _clamp(estimate.rows / float(stat.entries))
            return DEFAULT_RANGE_SELECTIVITY
        if op == "like":
            return DEFAULT_LIKE_SELECTIVITY
        return DEFAULT_OPAQUE_SELECTIVITY

    def _index_stat_for(
        self, query: Query, steps: Sequence[str], scope: Set[str]
    ) -> Optional[Any]:
        index = self.indexes.find_index(query.target_class, steps, scope)
        if index is None:
            return None
        return self.stats.index_stats.get(index.name)

    # -- candidates --------------------------------------------------------

    def _probe_candidate(
        self,
        query: Query,
        position: int,
        predicate: Expr,
        predicates: List[Expr],
        scope: Set[str],
    ) -> Optional[CandidateCost]:
        from .planner import (
            AdtIndexProbe,
            IndexEqProbe,
            IndexInProbe,
            IndexRangeProbe,
        )

        residual = predicates[:position] + predicates[position + 1 :]
        if isinstance(predicate, AdtPredicate) and self.adt_registry is not None:
            probe = self.adt_registry.access_method(
                predicate.name, query.target_class, predicate.path.steps,
                predicate.args,
            )
            if probe is None:
                return None
            matched = float(probe.estimated_matches())
            return CandidateCost(
                "adt-index",
                AdtIndexProbe(predicate, probe.run),
                BTREE_DESCEND_PAGES + matched,
                matched,
                _clamp(self._selectivity(query, predicate, scope)),
                residual,
                rank=3,
            )
        if not isinstance(predicate, Comparison):
            return None
        index = self.indexes.find_index(
            query.target_class, predicate.path.steps, scope
        )
        if index is None:
            return None
        stat = self.stats.index_stats.get(index.name)
        if stat is None:
            # An index the catalog has never seen would mean the epoch
            # moved, which the staleness gate catches first; be safe.
            return None
        value = predicate.const.value
        entries = float(max(stat.entries, 1))
        if predicate.op in ("=", "contains"):
            matched = equality_rows(stat, value)
            return CandidateCost(
                "index-eq",
                IndexEqProbe(index, value),
                BTREE_DESCEND_PAGES + matched,
                matched,
                _clamp(matched / entries),
                residual,
                rank=1,
            )
        if predicate.op == "in":
            try:
                members = list(value)
            except TypeError:
                members = [value]
            matched = min(
                float(stat.entries),
                sum(equality_rows(stat, v) for v in members),
            )
            return CandidateCost(
                "index-in",
                IndexInProbe(index, members),
                len(members) * BTREE_DESCEND_PAGES + matched,
                matched,
                _clamp(matched / entries),
                residual,
                rank=1,
            )
        if predicate.op in ("<", "<=", ">", ">="):
            low, include_low, high, include_high = _one_sided_bounds(
                predicate.op, value
            )
            estimate = range_estimate(stat, low, include_low, high, include_high)
            return CandidateCost(
                "index-range",
                IndexRangeProbe(index, low, high, include_low, include_high),
                BTREE_DESCEND_PAGES + estimate.rows,
                estimate.rows,
                _clamp(estimate.rows / entries),
                residual,
                rank=2,
                note="histogram bounds [%.0f, %.0f]"
                % (estimate.floor, estimate.ceiling),
            )
        return None

    def _facts_candidate(
        self,
        query: Query,
        steps: Tuple[str, ...],
        bounds: Tuple[Any, bool, Any, bool],
        predicates: List[Expr],
        scope: Set[str],
    ) -> Optional[CandidateCost]:
        from .planner import IndexRangeProbe

        index = self.indexes.find_index(query.target_class, steps, scope)
        if index is None:
            return None
        stat = self.stats.index_stats.get(index.name)
        if stat is None:
            return None
        low, include_low, high, include_high = bounds
        estimate = range_estimate(stat, low, include_low, high, include_high)
        entries = float(max(stat.entries, 1))
        # The probe enforces both bounds but the filter above rechecks
        # the full predicate, so the residual keeps every conjunct.
        return CandidateCost(
            "index-range",
            IndexRangeProbe(index, low, high, include_low, include_high),
            BTREE_DESCEND_PAGES + estimate.rows,
            estimate.rows,
            _clamp(estimate.rows / entries),
            list(predicates),
            rank=2,
            note="rewrite-derived interval; histogram bounds [%.0f, %.0f]"
            % (estimate.floor, estimate.ceiling),
        )


def _one_sided_bounds(op: str, value: Any) -> Tuple[Any, bool, Any, bool]:
    if op == "<":
        return None, True, value, False
    if op == "<=":
        return None, True, value, True
    if op == ">":
        return value, False, None, True
    return value, True, None, True


def _extent_scan(classes: Sequence[str]) -> Any:
    from .planner import ExtentScan

    return ExtentScan(classes)
