"""Query model: OQL parsing, object algebra, planning, execution."""

from .ast import (
    AdtPredicate,
    And,
    Comparison,
    Const,
    Expr,
    MethodCall,
    Not,
    Or,
    Path,
    Query,
    conjuncts,
)
from .executor import ExecutionStats, Executor, ResultSet
from .parser import parse_query
from .paths import compare, evaluate_path, validate_path
from .planner import (
    AccessPath,
    AdtIndexProbe,
    ExtentScan,
    IndexEqProbe,
    IndexInProbe,
    IndexRangeProbe,
    Plan,
    Planner,
)

__all__ = [
    "AdtPredicate",
    "And",
    "Comparison",
    "Const",
    "Expr",
    "MethodCall",
    "Not",
    "Or",
    "Path",
    "Query",
    "conjuncts",
    "ExecutionStats",
    "Executor",
    "ResultSet",
    "parse_query",
    "compare",
    "evaluate_path",
    "validate_path",
    "AccessPath",
    "AdtIndexProbe",
    "ExtentScan",
    "IndexEqProbe",
    "IndexInProbe",
    "IndexRangeProbe",
    "Plan",
    "Planner",
]
