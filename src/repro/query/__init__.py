"""Query model: OQL parsing, object algebra, planning, execution."""

from .ast import (
    AdtPredicate,
    And,
    Comparison,
    Const,
    Expr,
    MethodCall,
    Not,
    Or,
    Path,
    Query,
    conjuncts,
)
from .executor import ExecutionStats, Executor, ResultSet
from .operators import (
    ObjectKernel,
    PhysicalOperator,
    Pipeline,
    compile_plan,
)
from .parser import parse_query
from .paths import compare, evaluate_path, validate_path
from .planner import (
    AccessPath,
    AdtIndexProbe,
    ExtentScan,
    IndexEqProbe,
    IndexInProbe,
    IndexOrderScan,
    IndexRangeProbe,
    Plan,
    Planner,
)

__all__ = [
    "AdtPredicate",
    "And",
    "Comparison",
    "Const",
    "Expr",
    "MethodCall",
    "Not",
    "Or",
    "Path",
    "Query",
    "conjuncts",
    "ExecutionStats",
    "Executor",
    "ResultSet",
    "ObjectKernel",
    "PhysicalOperator",
    "Pipeline",
    "compile_plan",
    "parse_query",
    "compare",
    "evaluate_path",
    "validate_path",
    "AccessPath",
    "AdtIndexProbe",
    "ExtentScan",
    "IndexEqProbe",
    "IndexInProbe",
    "IndexOrderScan",
    "IndexRangeProbe",
    "Plan",
    "Planner",
]
