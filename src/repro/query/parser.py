"""OQL: the declarative query language surface.

A small SQL-flavoured language over the object model, in the spirit of
the declarative languages the paper cites for ORION, EXTRA/EXCESS and O2::

    SELECT v FROM Vehicle v
    WHERE v.weight > 7500 AND v.manufacturer.location = "Detroit"

Scope control:  ``FROM Vehicle v`` evaluates over the class hierarchy
rooted at Vehicle (the paper's generalization reading); ``FROM ONLY
Vehicle v`` restricts to direct instances.  Projections (``SELECT v.name,
v.weight``), method predicates (``v.age() > 10``), ADT predicates
(``overlaps(r.shape, [0, 0, 4, 4])``), ``ORDER BY`` and ``LIMIT`` are
supported.

A *shorthand* form drops the SELECT/FROM preamble for interactive use
(system views especially)::

    SysWaitEvent where kind = 'Lock' order by total_wait desc limit 10

is parsed as ``SELECT it FROM SysWaitEvent it WHERE it.kind = ... ``:
an implicit variable is bound and bare attribute paths resolve against
it.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from ..analysis.diagnostics import SourceSpan
from ..errors import QuerySyntaxError
from .ast import (
    AGGREGATE_FNS,
    AdtPredicate,
    Aggregate,
    And,
    Comparison,
    Const,
    Expr,
    MethodCall,
    Not,
    Or,
    Path,
    Query,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>-?\d+\.\d+([eE][+-]?\d+)?)
  | (?P<int>-?\d+)
  | (?P<string>'([^'\\]|\\.)*'|"([^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),.\[\]*])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "from",
    "only",
    "where",
    "and",
    "or",
    "not",
    "in",
    "like",
    "contains",
    "order",
    "group",
    "by",
    "asc",
    "desc",
    "limit",
    "true",
    "false",
    "null",
}


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int) -> None:
        self.kind = kind
        self.text = text
        self.pos = pos

    @property
    def end(self) -> int:
        return self.pos + len(self.text)

    def __repr__(self) -> str:
        return "%s(%r)" % (self.kind, self.text)


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QuerySyntaxError(
                "unexpected character %r at position %d" % (text[pos], pos),
                source=text,
                pos=pos,
            )
        kind = match.lastgroup or ""
        value = match.group()
        pos = match.end()
        if kind == "ws":
            continue
        if kind == "name" and value.lower() in _KEYWORDS:
            tokens.append(_Token("kw", value.lower(), match.start()))
        else:
            tokens.append(_Token(kind, value, match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    #: Variable bound by the shorthand form (``Class where ...``).
    IMPLICIT_VARIABLE = "it"

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0
        self.variable: Optional[str] = None
        #: Shorthand mode: bare paths resolve against the implicit variable.
        self._implicit = False
        self._group_select_paths: List[Path] = []
        #: Span of the most recently parsed dotted name.
        self._dotted_span: Optional[SourceSpan] = None

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> _Token:
        return self.tokens[self.index]

    def _advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            raise QuerySyntaxError(
                "expected %s%s at position %d, found %r"
                % (kind, " %r" % text if text else "", token.pos, token.text),
                source=self.text,
                pos=token.pos,
                width=max(1, len(token.text)),
            )
        return self._advance()

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    def _prev_end(self) -> int:
        """End offset of the token just consumed (for span closing)."""
        return self.tokens[self.index - 1].end

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Query:
        if self._peek().kind == "name":
            return self._parse_shorthand()
        self._expect("kw", "select")
        select_items = self._parse_select_list()
        self._expect("kw", "from")
        hierarchy = self._accept("kw", "only") is None
        target_token = self._expect("name")
        target = target_token.text
        self.variable = self._expect("name").text

        projections, aggregates = self._resolve_select_items(select_items)

        where: Optional[Expr] = None
        if self._accept("kw", "where"):
            where = self._parse_or()

        group_by: Optional[Path] = None
        if self._accept("kw", "group"):
            self._expect("kw", "by")
            group_by = self._parse_path()
        for plain in getattr(self, "_group_select_paths", []):
            if group_by is None or plain != group_by:
                raise QuerySyntaxError(
                    "select item %r must match the GROUP BY path" % plain.dotted()
                )

        order_by: Optional[Path] = None
        descending = False
        if self._accept("kw", "order"):
            self._expect("kw", "by")
            order_by = self._parse_path()
            if self._accept("kw", "desc"):
                descending = True
            else:
                self._accept("kw", "asc")

        limit: Optional[int] = None
        if self._accept("kw", "limit"):
            limit = int(self._expect("int").text)
            if limit < 0:
                raise QuerySyntaxError("LIMIT must be non-negative")

        self._expect("eof")
        query = Query(
            target_class=target,
            variable=self.variable,
            where=where,
            hierarchy=hierarchy,
            projections=projections,
            order_by=order_by,
            descending=descending,
            limit=limit,
            aggregates=aggregates,
            group_by=group_by,
        )
        query.span = SourceSpan(target_token.pos, target_token.end)
        return query

    def _parse_shorthand(self) -> Query:
        """``Class [where ...] [order by ...] [limit N]`` — whole-object
        select over the hierarchy, with an implicit variable."""
        target_token = self._expect("name")
        self.variable = self.IMPLICIT_VARIABLE
        self._implicit = True

        where: Optional[Expr] = None
        if self._accept("kw", "where"):
            where = self._parse_or()

        order_by: Optional[Path] = None
        descending = False
        if self._accept("kw", "order"):
            self._expect("kw", "by")
            order_by = self._parse_path()
            if self._accept("kw", "desc"):
                descending = True
            else:
                self._accept("kw", "asc")

        limit: Optional[int] = None
        if self._accept("kw", "limit"):
            limit = int(self._expect("int").text)
            if limit < 0:
                raise QuerySyntaxError("LIMIT must be non-negative")

        self._expect("eof")
        query = Query(
            target_class=target_token.text,
            variable=self.variable,
            where=where,
            hierarchy=True,
            projections=None,
            order_by=order_by,
            descending=descending,
            limit=limit,
            aggregates=None,
            group_by=None,
        )
        query.span = SourceSpan(target_token.pos, target_token.end)
        return query

    def _parse_select_list(self) -> List[tuple]:
        """Raw select items: ('path', dotted) or ('agg', fn, dotted|None).

        Names are resolved against the variable after FROM is parsed.
        """
        items = [self._parse_select_item()]
        while self._accept("punct", ","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> tuple:
        token = self._peek()
        if (
            token.kind == "name"
            and token.text.lower() in AGGREGATE_FNS
            and self.tokens[self.index + 1].kind == "punct"
            and self.tokens[self.index + 1].text == "("
        ):
            fn = self._advance().text
            self._expect("punct", "(")
            if self._accept("punct", "*"):
                inner: Optional[List[str]] = None
                inner_span = None
            else:
                inner = self._parse_dotted()
                inner_span = self._dotted_span
            self._expect("punct", ")")
            return ("agg", fn, inner, SourceSpan(token.pos, self._prev_end()), inner_span)
        parts = self._parse_dotted()
        return ("path", parts, self._dotted_span)

    def _parse_dotted(self) -> List[str]:
        start = self._peek().pos
        if self._accept("punct", "*"):
            self._dotted_span = SourceSpan(start, self._prev_end())
            return ["*"]
        parts = [self._expect("name").text]
        while self._accept("punct", "."):
            parts.append(self._expect("name").text)
        self._dotted_span = SourceSpan(start, self._prev_end())
        return parts

    def _resolve_select_items(self, items: List[tuple]):
        """Split raw select items into (projections, aggregates)."""
        aggregates = [item for item in items if item[0] == "agg"]
        paths = [(item[1], item[2]) for item in items if item[0] == "path"]
        if aggregates:
            resolved = []
            for _tag, fn, inner, span, inner_span in aggregates:
                if inner is None or inner == [self.variable]:
                    aggregate = Aggregate(fn, None)
                else:
                    aggregate = Aggregate(fn, self._to_path(inner, inner_span))
                aggregate.span = span
                resolved.append(aggregate)
            # Plain paths next to aggregates must match GROUP BY; checked
            # after the GROUP BY clause is parsed.
            self._group_select_paths = [
                self._to_path(parts, span) for parts, span in paths
            ]
            return None, resolved
        # "SELECT v" or "SELECT *" -> whole objects; otherwise projections.
        if len(paths) == 1 and paths[0][0] in ([self.variable], ["*"]):
            return None, None
        projections = []
        for parts, span in paths:
            if parts == ["*"]:
                raise QuerySyntaxError(
                    "* cannot be combined with projections",
                    source=self.text,
                    pos=span.start if span else None,
                )
            projections.append(self._to_path(parts, span))
        return projections, None

    def _to_path(self, item: List[str], span: Optional[SourceSpan] = None) -> Path:
        if item[0] != self.variable:
            raise QuerySyntaxError(
                "select item %r does not start with variable %r"
                % (".".join(item), self.variable),
                source=self.text,
                pos=span.start if span else None,
                width=len(span) if span else 1,
            )
        if len(item) == 1:
            raise QuerySyntaxError(
                "bare variable cannot appear in a projection list",
                source=self.text,
                pos=span.start if span else None,
            )
        path = Path(item[1:])
        path.span = span
        return path

    def _parse_or(self) -> Expr:
        operands = [self._parse_and()]
        while self._accept("kw", "or"):
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else Or(operands)

    def _parse_and(self) -> Expr:
        operands = [self._parse_not()]
        while self._accept("kw", "and"):
            operands.append(self._parse_not())
        return operands[0] if len(operands) == 1 else And(operands)

    def _parse_not(self) -> Expr:
        if self._accept("kw", "not"):
            return Not(self._parse_not())
        if self._accept("punct", "("):
            inner = self._parse_or()
            self._expect("punct", ")")
            return inner
        return self._parse_predicate()

    def _parse_path(self) -> Path:
        parts = self._parse_dotted()
        span = self._dotted_span
        if parts[0] != self.variable:
            if self._implicit:
                # Shorthand: a bare path is relative to the implicit variable.
                path = Path(parts)
                path.span = span
                return path
            raise QuerySyntaxError(
                "path %r does not start with variable %r"
                % (".".join(parts), self.variable),
                source=self.text,
                pos=span.start if span else None,
                width=len(span) if span else 1,
            )
        if len(parts) == 1:
            raise QuerySyntaxError(
                "a path needs at least one attribute",
                source=self.text,
                pos=span.start if span else None,
            )
        path = Path(parts[1:])
        path.span = span
        return path

    def _parse_predicate(self) -> Expr:
        token = self._peek()
        if token.kind != "name":
            raise QuerySyntaxError(
                "expected a predicate at position %d, found %r"
                % (token.pos, token.text),
                source=self.text,
                pos=token.pos,
                width=max(1, len(token.text)),
            )
        start = token.pos
        # ADT predicate: name '(' path, literals ')'
        if token.text != self.variable:
            if not self._implicit:
                return self._parse_adt_predicate()
            # Shorthand: only `name(` opens an ADT predicate; a bare
            # name is a path off the implicit variable.
            follower = self.tokens[self.index + 1]
            if follower.kind == "punct" and follower.text == "(":
                return self._parse_adt_predicate()
        parts = self._parse_dotted()
        path_span = self._dotted_span
        if self._accept("punct", "("):
            if parts[0] != self.variable:
                parts = [self.variable] + parts
            call = self._parse_method_call(parts)
            call.span = SourceSpan(start, self._prev_end())
            return call
        if parts[0] != self.variable:
            if self._implicit:
                path = Path(parts)
                path.span = path_span
                comparison = self._parse_comparison_tail(path)
                comparison.span = SourceSpan(start, self._prev_end())
                return comparison
            raise QuerySyntaxError(
                "predicate path %r must start with %r"
                % (".".join(parts), self.variable),
                source=self.text,
                pos=start,
                width=len(path_span) if path_span else 1,
            )
        if len(parts) == 1:
            raise QuerySyntaxError(
                "predicate path %r must start with %r"
                % (".".join(parts), self.variable),
                source=self.text,
                pos=start,
                width=len(path_span) if path_span else 1,
            )
        path = Path(parts[1:])
        path.span = path_span
        comparison = self._parse_comparison_tail(path)
        comparison.span = SourceSpan(start, self._prev_end())
        return comparison

    def _parse_comparison_tail(self, path: Path) -> Expr:
        if self._accept("kw", "like"):
            literal = self._parse_literal()
            return Comparison("like", path, Const(literal))
        if self._accept("kw", "contains"):
            literal = self._parse_literal()
            return Comparison("contains", path, Const(literal))
        if self._accept("kw", "in"):
            self._expect("punct", "(")
            values = [self._parse_literal()]
            while self._accept("punct", ","):
                values.append(self._parse_literal())
            self._expect("punct", ")")
            return Comparison("in", path, Const(values))
        op_token = self._expect("op")
        op = "!=" if op_token.text == "<>" else op_token.text
        literal = self._parse_literal()
        return Comparison(op, path, Const(literal))

    def _parse_method_call(self, parts: List[str]) -> Expr:
        args: List[Any] = []
        if not self._accept("punct", ")"):
            args.append(self._parse_literal())
            while self._accept("punct", ","):
                args.append(self._parse_literal())
            self._expect("punct", ")")
        selector = parts[-1]
        prefix = parts[1:-1]
        path = Path(prefix) if prefix else None
        token = self._peek()
        if token.kind == "op":
            op = "!=" if self._advance().text == "<>" else token.text
            literal = self._parse_literal()
            return MethodCall(path, selector, args, op, Const(literal))
        return MethodCall(path, selector, args)

    def _parse_adt_predicate(self) -> Expr:
        name_token = self._expect("name")
        self._expect("punct", "(")
        path = self._parse_path()
        args: List[Any] = []
        while self._accept("punct", ","):
            args.append(self._parse_literal())
        self._expect("punct", ")")
        predicate = AdtPredicate(name_token.text, path, args)
        predicate.span = SourceSpan(name_token.pos, self._prev_end())
        return predicate

    def _parse_literal(self) -> Any:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return int(token.text)
        if token.kind == "float":
            self._advance()
            return float(token.text)
        if token.kind == "string":
            self._advance()
            body = token.text[1:-1]
            return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")
        if token.kind == "kw" and token.text in ("true", "false", "null"):
            self._advance()
            return {"true": True, "false": False, "null": None}[token.text]
        if token.kind == "punct" and token.text == "[":
            self._advance()
            values: List[Any] = []
            if not self._accept("punct", "]"):
                values.append(self._parse_literal())
                while self._accept("punct", ","):
                    values.append(self._parse_literal())
                self._expect("punct", "]")
            return values
        raise QuerySyntaxError(
            "expected a literal at position %d, found %r" % (token.pos, token.text),
            source=self.text,
            pos=token.pos,
            width=max(1, len(token.text)),
        )


def parse_query(text: str) -> Query:
    """Parse OQL text into a :class:`~repro.query.ast.Query`."""
    return _Parser(text).parse()
