"""Query AST.

The paper's query model (Section 3.2, [KIM89d]): a query targets a class,
its scope is either the class alone or the hierarchy rooted at it, and
predicates range over the *nested definition* of the class — paths along
the aggregation hierarchy ("v.manufacturer.location = 'Detroit'").
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..errors import QueryError

#: Comparison operators understood by predicates and the planner.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=", "like", "in", "contains")


class Expr:
    """Base class for boolean expressions."""

    def children(self) -> Sequence["Expr"]:
        return ()


class Path:
    """An attribute path rooted at the query variable (``v.a.b.c``).

    ``span`` (set by the parser, None for hand-built ASTs) locates the
    path in the query text as a half-open character range; equality and
    hashing deliberately ignore it.
    """

    __slots__ = ("steps", "span")

    def __init__(self, steps: Sequence[str]) -> None:
        if not steps:
            raise QueryError("empty attribute path")
        self.steps: Tuple[str, ...] = tuple(steps)
        self.span = None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Path) and other.steps == self.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    def __repr__(self) -> str:
        return "Path(%s)" % ".".join(self.steps)

    def dotted(self) -> str:
        return ".".join(self.steps)


class Const:
    """A literal value (possibly a list, for IN)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __repr__(self) -> str:
        return "Const(%r)" % (self.value,)


#: Aggregate function names understood by the parser and executor.
AGGREGATE_FNS = ("count", "sum", "avg", "min", "max")


class Aggregate:
    """An aggregate select item: ``COUNT(v)`` or ``SUM(v.weight)``.

    ``path`` is None for ``COUNT(v)`` (count of qualifying objects);
    otherwise the aggregate folds the first terminal value of the path
    per object (missing/None values are skipped, as in SQL).
    """

    __slots__ = ("fn", "path", "span")

    def __init__(self, fn: str, path: Optional["Path"]) -> None:
        fn = fn.lower()
        if fn not in AGGREGATE_FNS:
            raise QueryError("unknown aggregate function %r" % (fn,))
        if fn != "count" and path is None:
            raise QueryError("%s() requires an attribute path" % fn.upper())
        self.fn = fn
        self.path = path
        self.span = None

    def label(self) -> str:
        inner = self.path.dotted() if self.path is not None else "*"
        return "%s(%s)" % (self.fn, inner)

    def __repr__(self) -> str:
        return "Aggregate(%s)" % self.label()


class Comparison(Expr):
    """``path op literal`` — the sargable predicate form."""

    __slots__ = ("op", "path", "const", "span")

    def __init__(self, op: str, path: Path, const: Const) -> None:
        if op not in COMPARISON_OPS:
            raise QueryError("unknown comparison operator %r" % (op,))
        if op == "in" and not isinstance(const.value, (list, tuple)):
            raise QueryError("IN requires a list literal")
        self.op = op
        self.path = path
        self.const = const
        self.span = None

    def __repr__(self) -> str:
        return "(%s %s %r)" % (self.path.dotted(), self.op, self.const.value)


class MethodCall(Expr):
    """``path.method(args) = literal`` style predicate on behavior.

    Evaluated by sending the message to the object the path leads to; the
    method's return value is compared with ``op`` against the literal.
    Never sargable (methods are opaque), always a residual filter.
    """

    __slots__ = ("path", "selector", "args", "op", "const", "span")

    def __init__(
        self,
        path: Optional[Path],
        selector: str,
        args: Sequence[Any],
        op: str = "=",
        const: Optional[Const] = None,
    ) -> None:
        self.path = path  # None means the method runs on the target itself
        self.selector = selector
        self.args = list(args)
        self.op = op
        self.const = const if const is not None else Const(True)
        self.span = None

    def __repr__(self) -> str:
        prefix = self.path.dotted() + "." if self.path else ""
        return "(%s%s(%s) %s %r)" % (
            prefix,
            self.selector,
            ", ".join(repr(a) for a in self.args),
            self.op,
            self.const.value,
        )


class AdtPredicate(Expr):
    """A user-defined-type predicate (Section 5.5).

    ``name`` identifies an operation in the ADT registry; ``path`` selects
    the attribute holding the ADT value; ``args`` are literal operands.
    The planner consults the registry for a matching access method.
    """

    __slots__ = ("name", "path", "args", "span")

    def __init__(self, name: str, path: Path, args: Sequence[Any]) -> None:
        self.name = name
        self.path = path
        self.span = None
        args = list(args)
        if len(args) == 1 and isinstance(args[0], (list, tuple)):
            # ``overlaps(r.shape, [0, 0, 4, 4])`` — a single list literal
            # is the operand vector.
            args = list(args[0])
        self.args = args

    def __repr__(self) -> str:
        return "%s(%s, %r)" % (self.name, self.path.dotted(), self.args)


class And(Expr):
    __slots__ = ("operands",)

    def __init__(self, operands: Sequence[Expr]) -> None:
        if len(operands) < 2:
            raise QueryError("AND requires at least two operands")
        self.operands = list(operands)

    def children(self) -> Sequence[Expr]:
        return self.operands

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(op) for op in self.operands) + ")"


class Or(Expr):
    __slots__ = ("operands",)

    def __init__(self, operands: Sequence[Expr]) -> None:
        if len(operands) < 2:
            raise QueryError("OR requires at least two operands")
        self.operands = list(operands)

    def children(self) -> Sequence[Expr]:
        return self.operands

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(op) for op in self.operands) + ")"


class Not(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def __repr__(self) -> str:
        return "(NOT %r)" % (self.operand,)


class Query:
    """A complete query.

    ``hierarchy=True`` is the paper's default interpretation (the target
    class is "the generalization of all direct and indirect subclasses");
    ``hierarchy=False`` corresponds to ``FROM ONLY C``.
    """

    def __init__(
        self,
        target_class: str,
        variable: str = "x",
        where: Optional[Expr] = None,
        hierarchy: bool = True,
        projections: Optional[List[Path]] = None,
        order_by: Optional[Path] = None,
        descending: bool = False,
        limit: Optional[int] = None,
        aggregates: Optional[List[Aggregate]] = None,
        group_by: Optional[Path] = None,
    ) -> None:
        if aggregates and projections:
            raise QueryError(
                "aggregates cannot be mixed with plain projections "
                "(use GROUP BY for the grouping attribute)"
            )
        if group_by is not None and not aggregates:
            raise QueryError("GROUP BY requires at least one aggregate")
        self.target_class = target_class
        self.variable = variable
        self.where = where
        self.hierarchy = hierarchy
        #: None -> return object handles; otherwise project these paths.
        self.projections = projections
        self.order_by = order_by
        self.descending = descending
        self.limit = limit
        #: Aggregate select items; when set, rows are group summaries.
        self.aggregates = aggregates
        self.group_by = group_by
        #: Span of the target-class token in the source (parser-set).
        self.span = None

    def __repr__(self) -> str:
        scope = self.target_class if self.hierarchy else "ONLY " + self.target_class
        return "<Query %s %s WHERE %r>" % (self.variable, scope, self.where)


def conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Flatten the top-level AND tree into a conjunct list."""
    if expr is None:
        return []
    if isinstance(expr, And):
        out: List[Expr] = []
        for operand in expr.operands:
            out.extend(conjuncts(operand))
        return out
    return [expr]


def _const_token(value: Any) -> str:
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_const_token(item) for item in value) + "]"
    return "%s:%r" % (type(value).__name__, value)


def structural_key(expr: Optional[Expr]) -> str:
    """A deterministic serialization of an expression's structure.

    Two expressions with the same key are structurally identical (same
    operators, paths and literals, in the same operand order); spans and
    object identity are ignored.  The rewrite pass uses keys for operand
    deduplication, commutative canonical ordering and the normalized-AST
    fingerprint the plan cache is keyed on.
    """
    if expr is None:
        return "true"
    if isinstance(expr, Comparison):
        return "(%s %s %s)" % (
            ".".join(expr.path.steps),
            expr.op,
            _const_token(expr.const.value),
        )
    if isinstance(expr, MethodCall):
        prefix = ".".join(expr.path.steps) + "." if expr.path is not None else ""
        return "(%s%s(%s) %s %s)" % (
            prefix,
            expr.selector,
            ",".join(_const_token(a) for a in expr.args),
            expr.op,
            _const_token(expr.const.value),
        )
    if isinstance(expr, AdtPredicate):
        return "adt:%s(%s;%s)" % (
            expr.name,
            ".".join(expr.path.steps),
            ",".join(_const_token(a) for a in expr.args),
        )
    if isinstance(expr, Not):
        return "not" + structural_key(expr.operand)
    if isinstance(expr, And):
        return "and(" + ";".join(structural_key(o) for o in expr.operands) + ")"
    if isinstance(expr, Or):
        return "or(" + ";".join(structural_key(o) for o in expr.operands) + ")"
    return "%s:%r" % (type(expr).__name__, expr)
