"""repro.query.operators — the physical operator layer.

A Volcano-style pull pipeline (``open()/next()/close()``) with live
per-operator counters (``rows_out``, ``elapsed``, probe counts).  The
planner's :class:`~repro.query.planner.Plan` compiles into a chain of
these via :func:`compile_plan`; the executor is a thin driver, EXPLAIN
ANALYZE reads stats straight off the operators, and the federation
layer reuses the same operators over row dicts through its own kernel.
"""

from .base import ObjectKernel, PhysicalOperator
from .leaves import ExtentScanOp, IndexOrderScanOp, IndexProbeOp, VirtualScanOp
from .pipeline import Pipeline, compile_plan
from .unary import (
    AggregateOp,
    DerefOp,
    FilterOp,
    GroupByOp,
    LimitOp,
    ProjectOp,
    SortOp,
)

__all__ = [
    "AggregateOp",
    "DerefOp",
    "ExtentScanOp",
    "FilterOp",
    "GroupByOp",
    "IndexOrderScanOp",
    "IndexProbeOp",
    "LimitOp",
    "ObjectKernel",
    "PhysicalOperator",
    "Pipeline",
    "ProjectOp",
    "SortOp",
    "VirtualScanOp",
    "compile_plan",
]
