"""Plan -> physical operator pipeline compilation.

``compile_plan`` turns the planner's logical :class:`~repro.query.planner.Plan`
into an operator chain and wraps it in a :class:`Pipeline`, which keeps
named handles on the interesting stages so the executor's legacy
counters (examined/matched/index probes) and EXPLAIN ANALYZE read live
operator state instead of re-instrumenting the run.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from ...core.oid import OID
from ...errors import QueryError
from ..planner import (
    AdtIndexProbe,
    EmptyScan,
    ExtentScan,
    IndexEqProbe,
    IndexInProbe,
    IndexOrderScan,
    IndexRangeProbe,
    Plan,
    SystemScan,
)
from .base import PhysicalOperator
from .leaves import (
    EmptyScanOp,
    ExtentScanOp,
    IndexOrderScanOp,
    IndexProbeOp,
    VirtualScanOp,
)
from .unary import (
    AggregateOp,
    DerefOp,
    FilterOp,
    GroupByOp,
    LimitOp,
    ProjectOp,
    SortOp,
)


class Pipeline:
    """A compiled operator chain plus named handles on its stages."""

    def __init__(
        self,
        plan: Plan,
        root: PhysicalOperator,
        source: PhysicalOperator,
        probe: Optional[PhysicalOperator] = None,
        filter: Optional[FilterOp] = None,
        sort: Optional[SortOp] = None,
        limit: Optional[LimitOp] = None,
        aggregate: Optional[AggregateOp] = None,
        project: Optional[ProjectOp] = None,
    ) -> None:
        self.plan = plan
        #: Top of the chain — what the driver pulls from.
        self.root = root
        #: The operator producing candidate *states* (scan, or the deref
        #: above a probe); its ``rows_out`` is the classic ``examined``.
        self.source = source
        self.probe = probe
        self.filter = filter
        self.sort = sort
        self.limit = limit
        self.aggregate = aggregate
        self.project = project

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> None:
        self.root.open()

    def close(self) -> None:
        self.root.close()

    def set_timed(self, timed: bool = True) -> None:
        self.root.set_timed(timed)

    def rows(self) -> Iterator[Any]:
        return self.root.rows()

    # -- live counters -----------------------------------------------------

    @property
    def examined(self) -> int:
        return self.source.rows_out

    @property
    def matched(self) -> int:
        return self.filter.rows_out if self.filter is not None else 0

    @property
    def index_probes(self) -> int:
        return self.probe.probes if self.probe is not None else 0

    def operators(self) -> List[PhysicalOperator]:
        """The chain, bottom (leaf) first."""
        chain: List[PhysicalOperator] = []
        op: Optional[PhysicalOperator] = self.root
        while op is not None:
            chain.append(op)
            op = op.child
        chain.reverse()
        return chain

    def operator_stats(self) -> List[Dict[str, Any]]:
        """Per-operator counters, leaf first (bench artifacts)."""
        return [op.stats() for op in self.operators()]

    def __repr__(self) -> str:
        return "<Pipeline %s>" % " -> ".join(op.name for op in self.operators())


def compile_plan(plan: Plan, kernel, scan_class) -> Pipeline:
    """Compile a plan into a pipeline over ``kernel``-typed rows."""
    query = plan.query
    access = plan.access
    probe: Optional[PhysicalOperator] = None

    if isinstance(access, ExtentScan):
        source: PhysicalOperator = ExtentScanOp(scan_class, access.classes)
    elif isinstance(access, EmptyScan):
        source = EmptyScanOp(access.classes, access.reason)
    elif isinstance(access, SystemScan):
        # System views scan generated rows; ``scan_class`` here is the
        # system catalog's row producer, not the storage extent walker.
        source = VirtualScanOp(scan_class, access.view)
    elif isinstance(access, IndexEqProbe):
        probe = IndexProbeOp(
            "eq",
            lambda: access.index.lookup_eq(access.value, plan.scope),
            access.description,
        )
        source = DerefOp(probe, kernel.deref)
    elif isinstance(access, IndexInProbe):
        probe = IndexProbeOp(
            "in",
            lambda: access.index.lookup_in(access.values, plan.scope),
            access.description,
        )
        source = DerefOp(probe, kernel.deref)
    elif isinstance(access, IndexRangeProbe):
        probe = IndexProbeOp(
            "range",
            lambda: access.index.lookup_range(
                access.low,
                access.high,
                access.include_low,
                access.include_high,
                plan.scope,
            ),
            access.description,
        )
        source = DerefOp(probe, kernel.deref)
    elif isinstance(access, AdtIndexProbe):
        probe = IndexProbeOp(
            "adt",
            lambda: sorted(
                {oid for oid in access.probe() if isinstance(oid, OID)}
            ),
            access.description,
        )
        source = DerefOp(probe, kernel.deref)
    elif isinstance(access, IndexOrderScan):
        probe = IndexOrderScanOp(access.index, plan.scope, access.descending)
        source = DerefOp(probe, kernel.deref)
    else:
        raise QueryError("unknown access path %r" % (access,))

    # The FULL predicate is re-checked — index probes give candidates,
    # not answers; current state decides.
    filter_op = FilterOp(source, kernel, plan.scope, query.where)
    root: PhysicalOperator = filter_op

    if query.aggregates:
        op_type = GroupByOp if query.group_by is not None else AggregateOp
        aggregate_op = op_type(root, kernel, query)
        return Pipeline(
            plan, aggregate_op, source, probe=probe, filter=filter_op,
            aggregate=aggregate_op,
        )

    sort_op: Optional[SortOp] = None
    if not isinstance(access, IndexOrderScan):
        steps = query.order_by.steps if query.order_by is not None else None
        if steps is not None or getattr(kernel, "has_default_order", True):
            sort_op = SortOp(root, kernel, steps, query.descending, limit=query.limit)
            root = sort_op

    limit_op: Optional[LimitOp] = None
    if query.limit is not None:
        limit_op = LimitOp(root, query.limit)
        root = limit_op

    project_op: Optional[ProjectOp] = None
    if query.projections is not None:
        project_op = ProjectOp(
            root, kernel, [path.steps for path in query.projections]
        )
        root = project_op

    return Pipeline(
        plan, root, source, probe=probe, filter=filter_op, sort=sort_op,
        limit=limit_op, project=project_op,
    )
