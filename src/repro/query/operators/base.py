"""The physical-operator protocol: Volcano-style pull iterators.

Section 2.2 makes the optimizer — and therefore an explicit physical
plan — a first-class OODB component.  Every operator here implements the
classic ``open() / next() / close()`` iterator contract [GRAE94-style]:
``next()`` returns one row (an :class:`~repro.core.obj.ObjectState`, an
OID, or a row dict — never ``None``) or ``None`` at end-of-stream, so a
``LIMIT`` can stop pulling and the whole pipeline does only the work the
consumer demands.

Per-operator counters are first-class: ``rows_out`` is always counted;
``elapsed`` (cumulative wall-clock inside ``next()``, *inclusive* of
child time) is measured only when the pipeline runs timed (EXPLAIN
ANALYZE), so plain execution pays no clock overhead.

Operators are row-type agnostic: all row semantics (predicate
evaluation, path navigation, ordering, projection) are delegated to a
*kernel* object.  :class:`ObjectKernel` speaks kimdb object states via
:mod:`repro.query.algebra`; the federation layer provides its own kernel
over plain row dicts, so one operator set serves both engines.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from .. import algebra
from ..ast import AdtPredicate, Expr, Query
from ..paths import Deref, evaluate_path


class PhysicalOperator:
    """Base iterator: one input (``child``, None for leaves), one output.

    Subclasses implement ``_next()`` (and optionally ``_on_open`` /
    ``_on_close``, both of which must be idempotent — a LIMIT may close
    the pipeline early and the driver closes it again).
    """

    name = "operator"

    def __init__(self, child: Optional["PhysicalOperator"] = None) -> None:
        self.child = child
        self.detail = ""
        #: Rows this operator has produced so far (always maintained).
        self.rows_out = 0
        #: Cumulative seconds spent in ``next()`` including child time;
        #: only advances when the pipeline runs timed.
        self.elapsed = 0.0
        self.timed = False

    # -- iterator contract -------------------------------------------------

    def open(self) -> None:
        if self.child is not None:
            self.child.open()
        self._on_open()

    def next(self) -> Optional[Any]:
        if self.timed:
            started = time.perf_counter()
            row = self._next()
            self.elapsed += time.perf_counter() - started
        else:
            row = self._next()
        if row is not None:
            self.rows_out += 1
        return row

    def close(self) -> None:
        self._on_close()
        if self.child is not None:
            self.child.close()

    # -- subclass hooks ----------------------------------------------------

    def _on_open(self) -> None:
        pass

    def _next(self) -> Optional[Any]:
        raise NotImplementedError

    def _on_close(self) -> None:
        pass

    # -- helpers -----------------------------------------------------------

    def set_timed(self, timed: bool = True) -> None:
        """Switch per-``next()`` timing on for this operator and below."""
        op: Optional[PhysicalOperator] = self
        while op is not None:
            op.timed = timed
            op = op.child

    def rows(self) -> Iterator[Any]:
        """Drain this operator as a generator (caller opens/closes)."""
        while True:
            row = self.next()
            if row is None:
                return
            yield row

    def stats(self) -> Dict[str, Any]:
        """This operator's live counters (bench artifacts, EXPLAIN)."""
        return {
            "op": self.name,
            "detail": self.detail,
            "rows_out": self.rows_out,
            "elapsed": self.elapsed,
        }

    def __repr__(self) -> str:
        return "<%s %s rows_out=%d>" % (type(self).__name__, self.detail, self.rows_out)


class ObjectKernel:
    """Row semantics for kimdb object states.

    Thin delegation onto :mod:`repro.query.algebra` (the shared row/set
    kernel) plus the storage-facing callables the executor owns.
    """

    #: Object states have a deterministic fallback order (OID), so a
    #: SortOp with ``steps=None`` is meaningful.  Row-dict kernels
    #: (federation, system views) have no such tiebreaker and set False,
    #: which makes ``compile_plan`` skip the implicit ordering sort.
    has_default_order = True

    def __init__(
        self,
        deref: Deref,
        send: Optional[Callable[..., Any]] = None,
        adt_eval: Optional[Callable[[AdtPredicate, Any], bool]] = None,
    ) -> None:
        self.deref = deref
        self.send = send
        self.adt_eval = adt_eval

    def row_class(self, row: Any) -> Optional[str]:
        return row.class_name

    def matches(self, expr: Expr, row: Any) -> bool:
        return algebra.evaluate_predicate(
            expr, row, self.deref, self.send, self.adt_eval
        )

    def sort(
        self,
        rows: Iterator[Any],
        steps: Optional[Sequence[str]],
        descending: bool,
        limit: Optional[int] = None,
    ) -> List[Any]:
        """Order rows; ``steps`` None means the default OID order.

        With a limit, the bounded-heap top-K fast path replaces the full
        sort (same results, O(n log k)).
        """
        if limit is not None:
            return algebra.top_k(rows, steps, self.deref, descending, limit)
        if steps is None:
            # Default order ignores ``descending`` — same as a plain
            # SELECT, which always returns OID order.
            return sorted(rows, key=lambda state: state.oid.value)
        return algebra.order_by(rows, steps, self.deref, descending)

    def project_row(self, row: Any, paths: Sequence[Sequence[str]]) -> Dict[str, Any]:
        return algebra.project_row(row, paths, self.deref)

    def aggregate(self, query: Query, rows: Iterator[Any]) -> List[Dict[str, Any]]:
        return algebra.aggregate_rows(query, rows, self.deref)

    def path_values(self, row: Any, steps: Sequence[str]) -> List[Any]:
        return evaluate_path(row, steps, self.deref)
