"""Unary operators: filter, deref, sort, aggregate, project, limit.

Each consumes one child stream.  ``FilterOp`` re-verifies the *full*
predicate (index probes produce candidates, not answers), ``DerefOp``
turns candidate OIDs into object states, ``SortOp`` is the pipeline
breaker (with a top-K fast path when a LIMIT follows), and ``LimitOp``
implements early termination by closing its subtree as soon as the
quota is reached.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..ast import Expr, Query
from ..paths import Deref
from .base import PhysicalOperator


class FilterOp(PhysicalOperator):
    """Scope check + full predicate re-check against current state.

    ``rows_out`` is the executor's classic ``matched`` counter; the
    child's ``rows_out`` is ``examined``.
    """

    name = "filter"

    def __init__(
        self,
        child: PhysicalOperator,
        kernel,
        scope: Optional[Set[str]],
        where: Optional[Expr],
    ) -> None:
        super().__init__(child)
        self._kernel = kernel
        self.scope = scope
        self.where = where
        self.detail = repr(where) if where is not None else "true"

    def _next(self) -> Optional[Any]:
        while True:
            row = self.child.next()
            if row is None:
                return None
            if self.scope is not None and self._kernel.row_class(row) not in self.scope:
                continue
            if self.where is not None and not self._kernel.matches(self.where, row):
                continue
            return row


class DerefOp(PhysicalOperator):
    """OIDs -> object states; dangling references contribute nothing."""

    name = "deref"

    def __init__(self, child: PhysicalOperator, deref: Deref) -> None:
        super().__init__(child)
        self._deref = deref
        self.detail = "oid -> state"

    def _next(self) -> Optional[Any]:
        while True:
            oid = self.child.next()
            if oid is None:
                return None
            state = self._deref(oid)
            if state is not None:
                return state


class SortOp(PhysicalOperator):
    """Pipeline breaker: drain the child, order via the kernel, re-emit.

    When a LIMIT follows, the kernel may use a bounded-heap top-K
    (O(n log k)) instead of a full sort — results are identical.
    """

    name = "sort"

    def __init__(
        self,
        child: PhysicalOperator,
        kernel,
        steps: Optional[Sequence[str]],
        descending: bool = False,
        limit: Optional[int] = None,
    ) -> None:
        super().__init__(child)
        self._kernel = kernel
        self.steps = tuple(steps) if steps is not None else None
        self.descending = descending
        self.limit = limit
        self.detail = (
            "oid"
            if steps is None
            else "%s%s" % (".".join(steps), " desc" if descending else "")
        )
        self._iter: Optional[Iterator[Any]] = None

    def _next(self) -> Optional[Any]:
        if self._iter is None:
            ordered = self._kernel.sort(
                self.child.rows(), self.steps, self.descending, self.limit
            )
            self._iter = iter(ordered)
        return next(self._iter, None)

    def _on_close(self) -> None:
        self._iter = None


class AggregateOp(PhysicalOperator):
    """Fold the child stream into summary rows (COUNT/SUM/AVG/MIN/MAX)."""

    name = "aggregate"

    def __init__(self, child: PhysicalOperator, kernel, query: Query) -> None:
        super().__init__(child)
        self._kernel = kernel
        self._query = query
        self.detail = ", ".join(a.label() for a in query.aggregates or [])
        self._iter: Optional[Iterator[Dict[str, Any]]] = None

    def _next(self) -> Optional[Dict[str, Any]]:
        if self._iter is None:
            self._iter = iter(self._kernel.aggregate(self._query, self.child.rows()))
        return next(self._iter, None)

    def _on_close(self) -> None:
        self._iter = None


class GroupByOp(AggregateOp):
    """Aggregation with grouping; groups order by key (None last)."""

    name = "group-by"

    def __init__(self, child: PhysicalOperator, kernel, query: Query) -> None:
        super().__init__(child, kernel, query)
        if query.group_by is not None:
            self.detail += " group by %s" % query.group_by.dotted()


class ProjectOp(PhysicalOperator):
    """pi while streaming: emit ``(source_row, projected_dict)`` pairs.

    The pair shape lets the driver keep OIDs and rows in parallel (the
    authorization filters index into both) without a second pass over
    the result — the old executor materialized the full OID list first.
    """

    name = "project"

    def __init__(
        self,
        child: PhysicalOperator,
        kernel,
        paths: Sequence[Sequence[str]],
    ) -> None:
        super().__init__(child)
        self._kernel = kernel
        self.paths = [tuple(steps) for steps in paths]
        self.detail = ", ".join(".".join(steps) for steps in self.paths)

    def _next(self) -> Optional[Tuple[Any, Dict[str, Any]]]:
        row = self.child.next()
        if row is None:
            return None
        return row, self._kernel.project_row(row, self.paths)


class LimitOp(PhysicalOperator):
    """Stop after ``limit`` rows and close the subtree immediately.

    The early ``close()`` propagates down the chain, releasing scans and
    index walks before they finish — with an ordered leaf below, a
    ``LIMIT k`` examines far fewer objects than the extent holds.
    """

    name = "limit"

    def __init__(self, child: PhysicalOperator, limit: int) -> None:
        super().__init__(child)
        self.limit = limit
        self.detail = str(limit)
        self._done = False

    def _next(self) -> Optional[Any]:
        if self._done:
            return None
        if self.rows_out >= self.limit:
            self._done = True
            self.child.close()
            return None
        row = self.child.next()
        if row is None:
            self._done = True
        return row

    def _on_close(self) -> None:
        self._done = True
