"""Leaf operators: where rows enter the pipeline.

``ExtentScanOp`` walks class extents, ``IndexProbeOp`` produces the
candidate OIDs of one index probe (eq/in/range/ADT), ``IndexOrderScanOp``
walks a B+-tree in key order (ORDER BY without a sort — the LIMIT above
it stops the walk early), and ``VirtualScanOp`` wraps a federation
adapter's ``scan`` so multidatabase queries run through the same
pipeline.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Set

from ...core.obj import ObjectState
from ...core.oid import OID
from .base import PhysicalOperator

ScanClass = Callable[[str], Iterable[ObjectState]]


class ExtentScanOp(PhysicalOperator):
    """Yield every direct instance of the scanned classes, in heap order."""

    name = "extent-scan"

    def __init__(self, scan_class: ScanClass, classes: Sequence[str]) -> None:
        super().__init__()
        self._scan_class = scan_class
        self.classes = tuple(classes)
        self.detail = "scan(%s)" % ", ".join(self.classes)
        self._iter: Optional[Iterator[ObjectState]] = None

    def _on_open(self) -> None:
        self._iter = self._states()

    def _states(self) -> Iterator[ObjectState]:
        for class_name in self.classes:
            for state in self._scan_class(class_name):
                yield state

    def _next(self) -> Optional[ObjectState]:
        if self._iter is None:
            return None
        return next(self._iter, None)

    def _on_close(self) -> None:
        self._iter = None


class EmptyScanOp(PhysicalOperator):
    """Produce nothing: the rewrite pass proved no object can match.

    The short-circuit leaf for provably-contradictory predicates — it
    never touches storage, probes no index and dereferences nothing, so
    a contradictory query's execution cost is exactly zero rows.
    """

    name = "empty-scan"

    def __init__(self, classes: Sequence[str], reason: str = "") -> None:
        super().__init__()
        self.classes = tuple(classes)
        self.reason = reason
        self.detail = "empty(%s)" % ", ".join(self.classes)

    def _next(self) -> None:
        return None


class IndexProbeOp(PhysicalOperator):
    """One index probe; yields the candidate OIDs it returned.

    ``fetch`` runs the probe at ``open()`` (a B+-tree probe is a single
    bulk lookup, not an incremental walk); ``probes`` counts runs.
    """

    def __init__(self, kind: str, fetch: Callable[[], Sequence[OID]], detail: str = "") -> None:
        super().__init__()
        self.kind = kind
        self.name = "adt-index-probe" if kind == "adt" else "index-%s-probe" % kind
        self.detail = detail
        self._fetch = fetch
        self.probes = 0
        self._iter: Optional[Iterator[OID]] = None

    def _on_open(self) -> None:
        self.probes += 1
        self._iter = iter(self._fetch())

    def _next(self) -> Optional[OID]:
        if self._iter is None:
            return None
        return next(self._iter, None)

    def _on_close(self) -> None:
        self._iter = None


class IndexOrderScanOp(PhysicalOperator):
    """Walk an index's B+-tree in key order, yielding in-scope OIDs.

    Produces exactly the executor's ORDER BY order for a direct
    single-valued attribute: key order (linked leaves), ties by OID, and
    objects with a None key — the index's representation of a missing
    value — deferred to the end regardless of direction.  Because rows
    are pulled lazily, a LIMIT above this leaf ends the walk after k
    matches: the early-termination path a sort can never offer.
    """

    name = "index-order-scan"

    def __init__(self, index, scope: Set[str], descending: bool = False) -> None:
        super().__init__()
        self.index = index
        self.scope = set(scope)
        self.descending = descending
        self.detail = "%s%s" % (index.name, " desc" if descending else "")
        self.probes = 0
        self._none_oids: Set[OID] = set()
        self._iter: Optional[Iterator[OID]] = None

    def _on_open(self) -> None:
        self.probes += 1
        self._none_oids = {
            oid
            for cls, oid in self.index.tree.search(None)
            if cls in self.scope
        }
        self._iter = self._oids()

    def _oids(self) -> Iterator[OID]:
        groups: Iterable[List[OID]] = self._groups()
        if self.descending:
            # Key groups must be emitted in reverse; only the (key, OID)
            # skeleton is materialized — states are still fetched lazily
            # above us, so a LIMIT keeps dereferences < extent size.
            ordered = list(groups)  # lint: ignore[operator-materialization]
            ordered.reverse()
            groups = ordered
        for oids in groups:
            for oid in oids:
                yield oid
        for oid in sorted(self._none_oids, reverse=self.descending):
            yield oid

    def _groups(self) -> Iterator[List[OID]]:
        """Per-key lists of in-scope OIDs, ascending key order.

        None-keyed entries (missing values sort first in the tree) are
        skipped here and appended after every present key.
        """
        for _key, entries in self.index.tree.range():
            oids = sorted(
                (
                    oid
                    for cls, oid in entries
                    if cls in self.scope and oid not in self._none_oids
                ),
                reverse=self.descending,
            )
            if oids:
                yield oids

    def _next(self) -> Optional[OID]:
        if self._iter is None:
            return None
        return next(self._iter, None)

    def _on_close(self) -> None:
        self._iter = None


class VirtualScanOp(PhysicalOperator):
    """Yield the rows of one federated virtual class (adapter scan)."""

    name = "virtual-scan"

    def __init__(self, scan: Callable[[str], Iterator[Any]], class_name: str) -> None:
        super().__init__()
        self._scan = scan
        self.class_name = class_name
        self.detail = class_name
        self._iter: Optional[Iterator[Any]] = None

    def _on_open(self) -> None:
        self._iter = self._scan(self.class_name)

    def _next(self) -> Optional[Any]:
        if self._iter is None:
            return None
        return next(self._iter, None)

    def _on_close(self) -> None:
        self._iter = None
