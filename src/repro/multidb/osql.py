"""OSQL: an SQL-compatible migration language [BEEC88].

Section 5.2's first migration path: "the development of an object-
oriented SQL which is compatible with SQL".  :func:`translate_sql`
parses a conventional ``SELECT cols FROM name WHERE ...`` statement and
rewrites it into kimdb OQL — the *same* statement therefore runs against
a relational table today and an object class tomorrow.  Dotted column
names in the SQL (``manufacturer.location``) become OQL path
expressions, which is exactly the OSQL extension point: SQL syntax,
object semantics.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import QuerySyntaxError

_SQL_RE = re.compile(
    r"^\s*select\s+(?P<cols>.+?)\s+from\s+(?P<name>\w+)"
    r"(?:\s+where\s+(?P<where>.+?))?"
    r"(?:\s+order\s+by\s+(?P<order>[\w.]+)(?:\s+(?P<dir>asc|desc))?)?"
    r"(?:\s+limit\s+(?P<limit>\d+))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

#: The variable OSQL introduces when translating to OQL.
VARIABLE = "x"


class TranslatedQuery:
    """The OQL text plus what it was derived from."""

    __slots__ = ("sql", "oql", "target", "columns")

    def __init__(self, sql: str, oql: str, target: str, columns: Optional[List[str]]) -> None:
        self.sql = sql
        self.oql = oql
        self.target = target
        self.columns = columns

    def __repr__(self) -> str:
        return "<TranslatedQuery %r -> %r>" % (self.sql, self.oql)


def _translate_columns(cols: str) -> Tuple[Optional[List[str]], str]:
    cols = cols.strip()
    if cols == "*":
        return None, VARIABLE
    names = [c.strip() for c in cols.split(",") if c.strip()]
    select_list = ", ".join("%s.%s" % (VARIABLE, name) for name in names)
    return names, select_list


def _translate_where(where: str) -> str:
    """Prefix bare column references with the OQL variable.

    Handles identifiers and dotted paths; leaves string literals,
    numbers, and keywords alone.
    """
    keywords = {
        "and", "or", "not", "in", "like", "null", "true", "false",
        "between", "is", "contains",
    }
    out: List[str] = []
    pos = 0
    token_re = re.compile(r"'[^']*'|\"[^\"]*\"|[A-Za-z_][\w.]*|\S")
    for match in token_re.finditer(where):
        out.append(where[pos : match.start()])
        token = match.group()
        if (
            token[0].isalpha() or token[0] == "_"
        ) and token.lower() not in keywords:
            out.append("%s.%s" % (VARIABLE, token))
        else:
            out.append(token)
        pos = match.end()
    out.append(where[pos:])
    return "".join(out)


def translate_sql(sql: str, only: bool = False) -> TranslatedQuery:
    """Translate a conventional SQL SELECT into kimdb OQL.

    ``only=True`` restricts evaluation to direct instances (``FROM ONLY``),
    matching SQL's single-relation semantics exactly; the default keeps
    the object reading (hierarchy scope), which is the OSQL upgrade.
    """
    match = _SQL_RE.match(sql)
    if match is None:
        raise QuerySyntaxError("cannot parse SQL statement %r" % (sql,))
    columns, select_list = _translate_columns(match.group("cols"))
    target = match.group("name")
    scope = "ONLY " + target if only else target
    parts = ["SELECT %s FROM %s %s" % (select_list, scope, VARIABLE)]
    where = match.group("where")
    if where:
        parts.append("WHERE " + _translate_where(where.strip()))
    order = match.group("order")
    if order:
        direction = (match.group("dir") or "asc").upper()
        parts.append("ORDER BY %s.%s %s" % (VARIABLE, order, direction))
    limit = match.group("limit")
    if limit:
        parts.append("LIMIT " + limit)
    return TranslatedQuery(sql, " ".join(parts), target, columns)


def run_osql(db, sql: str, only: bool = False):
    """Translate and execute against a kimdb database.

    Returns projected rows (list of dicts) for column selects, or object
    handles for ``SELECT *``.
    """
    translated = translate_sql(sql, only=only)
    result = db.execute(translated.oql)
    if translated.columns is None:
        from ..core.obj import ObjectHandle

        return [ObjectHandle(db, oid) for oid in result.oids]
    # Re-key projection rows by the original SQL column names.
    rows = []
    for row in result.rows or []:
        rows.append(
            {name: row.get(name) for name in translated.columns}
        )
    return rows
