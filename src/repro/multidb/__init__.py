"""Multidatabase: hierarchical baseline, federation, OSQL migration."""

from .federation import (
    Adapter,
    Federation,
    HierarchicalAdapter,
    ObjectAdapter,
    RelationalAdapter,
    VirtualClass,
)
from .hierarchical import HierarchicalDatabase, HierarchicalRecord, SegmentType
from .osql import TranslatedQuery, run_osql, translate_sql

__all__ = [
    "Adapter",
    "Federation",
    "HierarchicalAdapter",
    "ObjectAdapter",
    "RelationalAdapter",
    "VirtualClass",
    "HierarchicalDatabase",
    "HierarchicalRecord",
    "SegmentType",
    "TranslatedQuery",
    "run_osql",
    "translate_sql",
]
