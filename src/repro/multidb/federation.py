"""Multidatabase federation under a common object-oriented model.

Section 5.2: "It is highly desirable to allow the user to access a
heterogeneous mix of databases under the illusion of a single common
data model ... The richness of an object-oriented data model makes it
appropriate for use as the common data model."

Every participating database is wrapped in an adapter exposing *virtual
classes* — named row sources with attributes and optional cross-source
**references** (attribute ``x`` of virtual class A refers to the row of
virtual class B whose key attribute matches).  Federated OQL queries run
against virtual classes, with path predicates traversing references even
when the endpoints live in different engines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import FederationError
from ..query.ast import (
    And,
    Comparison,
    Expr,
    Not,
    Or,
    Query,
)
from ..query.operators import (
    FilterOp,
    LimitOp,
    PhysicalOperator,
    ProjectOp,
    SortOp,
    VirtualScanOp,
)
from ..query.parser import parse_query
from ..query.paths import compare
from .hierarchical import HierarchicalDatabase

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database
    from ..relational.engine import RelationalEngine

Row = Dict[str, Any]


class VirtualClass:
    """One federated row source.

    ``references`` maps a local attribute to ``(virtual_class, key_attr)``:
    the attribute's value identifies the row of the target class whose
    ``key_attr`` equals it.
    """

    __slots__ = ("name", "attributes", "references")

    def __init__(
        self,
        name: str,
        attributes: List[str],
        references: Optional[Dict[str, Tuple[str, str]]] = None,
    ) -> None:
        self.name = name
        self.attributes = list(attributes)
        self.references = dict(references or {})

    def __repr__(self) -> str:
        return "<VirtualClass %s(%s)>" % (self.name, ", ".join(self.attributes))


class Adapter:
    """Interface every federated source implements."""

    def virtual_classes(self) -> List[VirtualClass]:
        raise NotImplementedError

    def scan(self, class_name: str) -> Iterator[Row]:
        raise NotImplementedError


class RelationalAdapter(Adapter):
    """Expose relational tables as virtual classes (1 table = 1 class)."""

    def __init__(
        self,
        engine: "RelationalEngine",
        references: Optional[Dict[str, Dict[str, Tuple[str, str]]]] = None,
    ) -> None:
        self.engine = engine
        self._references = references or {}

    def virtual_classes(self) -> List[VirtualClass]:
        out = []
        for name in self.engine.table_names():
            table = self.engine.table(name)
            out.append(
                VirtualClass(name, table.column_names(), self._references.get(name))
            )
        return out

    def scan(self, class_name: str) -> Iterator[Row]:
        yield from self.engine.scan(class_name)


class HierarchicalAdapter(Adapter):
    """Expose segments as virtual classes; the parent link becomes a
    synthetic ``parent_id`` reference attribute (navigation flattened
    into the common model)."""

    def __init__(self, hdb: HierarchicalDatabase) -> None:
        self.hdb = hdb

    def virtual_classes(self) -> List[VirtualClass]:
        out = []
        for name in self.hdb.segment_names():
            segment = self.hdb.segment(name)
            attributes = ["record_id"] + segment.fields
            references: Dict[str, Tuple[str, str]] = {}
            if segment.parent is not None:
                attributes.append("parent_id")
                references["parent_id"] = (segment.parent, "record_id")
            out.append(VirtualClass(name, attributes, references))
        return out

    def scan(self, class_name: str) -> Iterator[Row]:
        for record in self.hdb.scan(class_name):
            row: Row = {"record_id": record.record_id}
            row.update(record.fields)
            if record.parent_id is not None:
                row["parent_id"] = record.parent_id
            yield row


class ObjectAdapter(Adapter):
    """Expose kimdb classes as virtual classes.

    Reference attributes surface as OID values; they are declared as
    federation references keyed on the target's ``oid`` attribute.
    """

    def __init__(self, db: "Database", classes: Iterable[str]) -> None:
        self.db = db
        self.classes = list(classes)

    def virtual_classes(self) -> List[VirtualClass]:
        from ..core.primitives import is_primitive_class

        out = []
        for name in self.classes:
            attrs = self.db.schema.attributes(name)
            attributes = ["oid"] + sorted(attrs)
            references = {}
            for attr_name, attr in attrs.items():
                domain = attr.domain
                if (
                    not is_primitive_class(domain)
                    and domain not in ("Any", "Object")
                    and domain in self.classes
                ):
                    references[attr_name] = (domain, "oid")
            out.append(VirtualClass(name, attributes, references))
        return out

    def scan(self, class_name: str) -> Iterator[Row]:
        for state in self.db.storage.scan_class(class_name):
            row: Row = {"oid": state.oid}
            row.update(state.values)
            yield row


class FederationKernel:
    """Row semantics for federated row dicts.

    The physical operators (:mod:`repro.query.operators`) are row-type
    agnostic; this kernel gives them predicate evaluation, ordering and
    projection over plain dicts, navigating cross-source references via
    the federation's catalog.  Ordering is a stable full sort — virtual
    classes have no OID tiebreaker, so the top-K heap path (which
    reorders ties) is deliberately not used.
    """

    __slots__ = ("federation", "class_name")

    #: Row dicts have no OID tiebreaker: an unordered query keeps scan
    #: order, and ``compile_plan`` must not insert an implicit sort.
    has_default_order = False

    def __init__(self, federation: "Federation", class_name: str) -> None:
        self.federation = federation
        self.class_name = class_name

    def row_class(self, row: Row) -> str:
        return self.class_name

    def matches(self, expr: Expr, row: Row) -> bool:
        return self.federation._evaluate(self.class_name, row, expr)

    def sort(
        self,
        rows: Iterator[Row],
        steps: Optional[Tuple[str, ...]],
        descending: bool,
        limit: Optional[int] = None,
    ) -> List[Row]:
        if steps is None:
            raise FederationError("federated queries have no default row order")

        def sort_key(row: Row):
            values = self.federation._path_values(self.class_name, row, steps)
            return (0, values[0]) if values and values[0] is not None else (1, 0)

        return sorted(rows, key=sort_key, reverse=descending)

    def project_row(self, row: Row, paths: Iterable[Tuple[str, ...]]) -> Row:
        out: Row = {}
        for steps in paths:
            values = self.federation._path_values(self.class_name, row, steps)
            out[".".join(steps)] = values[0] if len(values) == 1 else (values or None)
        return out


class Federation:
    """The multidatabase: a registry of adapters + a federated executor."""

    def __init__(self) -> None:
        self._sources: Dict[str, Adapter] = {}
        self._classes: Dict[str, Tuple[str, VirtualClass]] = {}

    def register(self, source_name: str, adapter: Adapter) -> None:
        if source_name in self._sources:
            raise FederationError("source %r already registered" % (source_name,))
        self._sources[source_name] = adapter
        for virtual in adapter.virtual_classes():
            if virtual.name in self._classes:
                raise FederationError(
                    "virtual class %r exported by both %r and %r"
                    % (virtual.name, self._classes[virtual.name][0], source_name)
                )
            self._classes[virtual.name] = (source_name, virtual)

    def refresh(self) -> None:
        """Re-pull virtual class catalogs (after source DDL)."""
        sources = dict(self._sources)
        self._sources.clear()
        self._classes.clear()
        for name, adapter in sources.items():
            self.register(name, adapter)

    # -- catalog ---------------------------------------------------------------

    def class_names(self) -> List[str]:
        return sorted(self._classes)

    def source_of(self, class_name: str) -> str:
        return self._entry(class_name)[0]

    def virtual_class(self, class_name: str) -> VirtualClass:
        return self._entry(class_name)[1]

    def _entry(self, class_name: str) -> Tuple[str, VirtualClass]:
        entry = self._classes.get(class_name)
        if entry is None:
            raise FederationError("no virtual class named %r" % (class_name,))
        return entry

    # -- execution ------------------------------------------------------------------

    def scan(self, class_name: str) -> Iterator[Row]:
        source, _virtual = self._entry(class_name)
        yield from self._sources[source].scan(class_name)

    def _deref_row(self, class_name: str, attr: str, value: Any) -> Optional[Tuple[str, Row]]:
        virtual = self.virtual_class(class_name)
        target = virtual.references.get(attr)
        if target is None or value is None:
            return None
        target_class, key_attr = target
        for row in self.scan(target_class):
            if row.get(key_attr) == value:
                return target_class, row
        return None

    def _path_values(self, class_name: str, row: Row, steps: Tuple[str, ...]) -> List[Any]:
        current: List[Tuple[str, Row]] = [(class_name, row)]
        for position, step in enumerate(steps):
            is_last = position == len(steps) - 1
            next_rows: List[Tuple[str, Row]] = []
            values: List[Any] = []
            for cls, r in current:
                value = r.get(step)
                if is_last:
                    virtual = self.virtual_class(cls)
                    if step in virtual.references:
                        # A terminal reference compares by its raw value.
                        values.append(value)
                    else:
                        values.append(value)
                    continue
                resolved = self._deref_row(cls, step, value)
                if resolved is not None:
                    next_rows.append(resolved)
            if is_last:
                return values
            current = next_rows
        return []

    def _evaluate(self, class_name: str, row: Row, expr: Expr) -> bool:
        if isinstance(expr, Comparison):
            values = self._path_values(class_name, row, expr.path.steps)
            return any(compare(expr.op, v, expr.const.value) for v in values)
        if isinstance(expr, And):
            return all(self._evaluate(class_name, row, op) for op in expr.operands)
        if isinstance(expr, Or):
            return any(self._evaluate(class_name, row, op) for op in expr.operands)
        if isinstance(expr, Not):
            return not self._evaluate(class_name, row, expr.operand)
        raise FederationError(
            "federated queries support comparisons and boolean operators only"
        )

    def pipeline(self, query: Query) -> PhysicalOperator:
        """Compile a federated query into a physical operator chain.

        The same Volcano operators the local engine runs, parameterized
        by :class:`FederationKernel` over row dicts: virtual scan,
        filter, (stable) sort, limit, projection.  Hierarchy scope is
        meaningless across sources and ignored.
        """
        self._entry(query.target_class)
        kernel = FederationKernel(self, query.target_class)
        root: PhysicalOperator = VirtualScanOp(self.scan, query.target_class)
        root = FilterOp(root, kernel, None, query.where)
        if query.order_by is not None:
            root = SortOp(root, kernel, query.order_by.steps, query.descending)
        if query.limit is not None:
            root = LimitOp(root, query.limit)
        if query.projections is not None:
            root = ProjectOp(
                root, kernel, [path.steps for path in query.projections]
            )
        return root

    def query(self, text_or_query) -> List[Row]:
        """Run a federated OQL query; returns row dicts.

        Projections are honoured; hierarchy scope is meaningless across
        sources and ignored.
        """
        query: Query = (
            parse_query(text_or_query)
            if isinstance(text_or_query, str)
            else text_or_query
        )
        root = self.pipeline(query)
        root.open()
        try:
            if query.projections is not None:
                return [projected for _row, projected in root.rows()]
            return [row for row in root.rows()]
        finally:
            root.close()

    def __repr__(self) -> str:
        return "<Federation %d sources, %d virtual classes>" % (
            len(self._sources),
            len(self._classes),
        )
