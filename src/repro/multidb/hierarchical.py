"""An IMS-style hierarchical database — the second-generation baseline.

Section 5.2's migration scenario has "a Product database managed by a
hierarchical database system".  This is that system: segment types form
a tree, records of a child segment live under a parent record, and
access is navigational (roots, then children), exactly the style whose
"tedious navigational access" motivated the relational generation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from ..errors import FederationError


class SegmentType:
    __slots__ = ("name", "fields", "parent")

    def __init__(self, name: str, fields: List[str], parent: Optional[str]) -> None:
        self.name = name
        self.fields = list(fields)
        self.parent = parent

    def __repr__(self) -> str:
        return "<SegmentType %s under %s>" % (self.name, self.parent or "(root)")


class HierarchicalRecord:
    __slots__ = ("record_id", "segment", "parent_id", "fields")

    def __init__(
        self,
        record_id: int,
        segment: str,
        parent_id: Optional[int],
        fields: Dict[str, Any],
    ) -> None:
        self.record_id = record_id
        self.segment = segment
        self.parent_id = parent_id
        self.fields = fields

    def __repr__(self) -> str:
        return "<%s #%d %r>" % (self.segment, self.record_id, self.fields)


class HierarchicalDatabase:
    """Tree-structured records with navigational access."""

    def __init__(self, name: str = "hdb") -> None:
        self.name = name
        self._segments: Dict[str, SegmentType] = {}
        self._records: Dict[int, HierarchicalRecord] = {}
        self._children: Dict[int, List[int]] = {}
        self._roots: Dict[str, List[int]] = {}
        self._by_segment: Dict[str, List[int]] = {}
        self._next_id = 1

    # -- schema -----------------------------------------------------------------

    def define_segment(
        self, name: str, fields: List[str], parent: Optional[str] = None
    ) -> SegmentType:
        if name in self._segments:
            raise FederationError("segment %r already defined" % (name,))
        if parent is not None and parent not in self._segments:
            raise FederationError("parent segment %r is not defined" % (parent,))
        segment = SegmentType(name, fields, parent)
        self._segments[name] = segment
        self._by_segment[name] = []
        if parent is None:
            self._roots[name] = []
        return segment

    def segment(self, name: str) -> SegmentType:
        segment = self._segments.get(name)
        if segment is None:
            raise FederationError("no segment named %r" % (name,))
        return segment

    def segment_names(self) -> List[str]:
        return sorted(self._segments)

    # -- records ---------------------------------------------------------------------

    def insert(
        self,
        segment_name: str,
        fields: Dict[str, Any],
        parent_id: Optional[int] = None,
    ) -> int:
        segment = self.segment(segment_name)
        if segment.parent is None:
            if parent_id is not None:
                raise FederationError(
                    "root segment %r takes no parent" % (segment_name,)
                )
        else:
            if parent_id is None:
                raise FederationError(
                    "segment %r requires a parent %r record"
                    % (segment_name, segment.parent)
                )
            parent = self._records.get(parent_id)
            if parent is None or parent.segment != segment.parent:
                raise FederationError(
                    "record %r is not a %r parent" % (parent_id, segment.parent)
                )
        unknown = set(fields) - set(segment.fields)
        if unknown:
            raise FederationError(
                "unknown fields %s for segment %r" % (sorted(unknown), segment_name)
            )
        record_id = self._next_id
        self._next_id += 1
        record = HierarchicalRecord(
            record_id,
            segment_name,
            parent_id,
            {f: fields.get(f) for f in segment.fields},
        )
        self._records[record_id] = record
        self._by_segment[segment_name].append(record_id)
        if parent_id is None:
            self._roots[segment_name].append(record_id)
        else:
            self._children.setdefault(parent_id, []).append(record_id)
        return record_id

    # -- navigation (the second-generation access style) ----------------------------

    def get(self, record_id: int) -> HierarchicalRecord:
        record = self._records.get(record_id)
        if record is None:
            raise FederationError("no record %r" % (record_id,))
        return record

    def roots(self, segment_name: str) -> List[HierarchicalRecord]:
        self.segment(segment_name)
        return [self._records[rid] for rid in self._roots.get(segment_name, ())]

    def children(
        self, record_id: int, segment_name: Optional[str] = None
    ) -> List[HierarchicalRecord]:
        self.get(record_id)
        out = [self._records[rid] for rid in self._children.get(record_id, ())]
        if segment_name is not None:
            out = [r for r in out if r.segment == segment_name]
        return out

    def parent(self, record_id: int) -> Optional[HierarchicalRecord]:
        record = self.get(record_id)
        if record.parent_id is None:
            return None
        return self._records[record.parent_id]

    def scan(self, segment_name: str) -> Iterator[HierarchicalRecord]:
        self.segment(segment_name)
        for record_id in self._by_segment.get(segment_name, ()):
            yield self._records[record_id]

    def __repr__(self) -> str:
        return "<HierarchicalDatabase %s: %d segments, %d records>" % (
            self.name,
            len(self._segments),
            len(self._records),
        )
