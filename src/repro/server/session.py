"""Server sessions: one connected client's view of the database.

A :class:`Session` is the unit of transaction scope on the wire — the
paper's "sharable repository" requirement means many clients, each with
at most one open transaction.  Sessions bridge the engine's thread-local
transaction tracking and the server's thread pool: a transaction begun
by a session is immediately *detached* from the worker thread that
created it and parked on the session; every later request re-attaches
it (``TransactionManager.bound``) on whichever pool thread happens to
serve that request.

Lifecycle (see DESIGN.md for the full state diagram)::

    connect -> IDLE --begin--> IN_TXN --commit/rollback--> IDLE
    any state --disconnect/idle-timeout--> RELEASED
                (open transaction rolled back, cursors closed,
                 locks freed, session removed from the registry)

``release()`` is idempotent and is the single cleanup path for normal
close, client crash, and reaper-forced eviction alike, which is what
makes "kill a client mid-transaction leaves no stranded locks" a
structural property rather than a best-effort one.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..core.oid import OID
from ..database import Database, QueryStream
from ..errors import DeadlockError
from .protocol import (
    SessionError,
    error_response,
    from_wire,
    ok_response,
    to_wire,
)

#: Session states as reported by the SysSession view.
IDLE = "idle"
IN_TXN = "in_txn"
RELEASED = "released"


class Session:
    """One client connection's server-side state.

    Requests for a session are serialized by ``_session_mutex`` (a
    client sends one request at a time anyway; the mutex makes that a
    guarantee rather than an assumption).  The mutex sits *below* every
    engine lock in the ordering lattice: a request handler acquires it
    first and only then calls into the engine.
    """

    def __init__(
        self,
        session_id: int,
        db: Database,
        registry: "SessionRegistry",
        client: str = "?",
    ) -> None:
        self.session_id = session_id
        self.db = db
        self.client = client
        self._registry = registry
        self._session_mutex = threading.Lock()
        self._txn = None  # parked Transaction, attached per request
        self._cursors: Dict[int, QueryStream] = {}
        self._next_cursor = 1
        self._released = False
        #: True while a request is executing (the idle reaper skips
        #: sessions that are merely slow, not idle).
        self.busy = False
        self.requests = 0
        self.rows_streamed = 0
        self._created_clock = time.perf_counter()
        self._last_active_clock = self._created_clock

    # -- introspection (SysSession) ----------------------------------------

    @property
    def state(self) -> str:
        if self._released:
            return RELEASED
        return IN_TXN if self._txn is not None else IDLE

    @property
    def age_seconds(self) -> float:
        return time.perf_counter() - self._created_clock

    @property
    def idle_seconds(self) -> float:
        if self.busy:
            return 0.0
        return time.perf_counter() - self._last_active_clock

    @property
    def txn_id(self) -> Optional[int]:
        return self._txn.txn_id if self._txn is not None else None

    # -- request dispatch --------------------------------------------------

    def handle(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one decoded request frame, returning the response dict.

        All engine exceptions become typed error frames here; nothing a
        client sends can take the connection handler down.
        """
        request_id = payload.get("id")
        op = payload.get("op")
        params = payload.get("params") or {}
        trace_id = self._trace_id(payload.get("trace"))
        self.busy = True
        try:
            with self._session_mutex:
                if self._released:
                    raise SessionError(
                        "session %d is released" % self.session_id
                    )
                self.requests += 1
                self.db.metrics.counter("server.requests").inc()
                handler = self._op_table().get(op)
                if handler is None:
                    raise SessionError("unknown op %r" % op)
                if not isinstance(params, dict):
                    raise SessionError("params must be an object")
                # Adopt the client's trace context for the whole request:
                # the server.request span, every nested engine span, wait
                # events and slow-op entries recorded on this thread all
                # carry the id the client stamped into the frame.
                with self.db.tracer.trace(trace_id):
                    with self.db.tracer.span("server.request", target=str(op)):
                        result = handler(params)
            return ok_response(request_id, result)
        except DeadlockError as exc:
            # The engine chose this transaction as the deadlock victim;
            # its locks must go away *now*, not when the client decides
            # to send a rollback.
            self._abort_parked_txn()
            self.db.metrics.counter("server.errors").inc()
            return error_response(request_id, exc)
        except Exception as exc:
            self.db.metrics.counter("server.errors").inc()
            return error_response(request_id, exc)
        finally:
            self._last_active_clock = time.perf_counter()
            self.busy = False

    @staticmethod
    def _trace_id(trace: Any) -> Optional[str]:
        """Sanitize the optional request-frame trace field.

        Accepts ``{"id": ..., "span": ...}`` (the client's format) or a
        bare string; anything else — or an oversized id, this is
        client-controlled input landing in server-side views — is
        dropped rather than rejected: tracing is observability, not
        validation, and an untraced request must still succeed.
        """
        if isinstance(trace, dict):
            trace = trace.get("id")
        if not isinstance(trace, str) or not trace or len(trace) > 64:
            return None
        return trace

    def _op_table(self) -> Dict[str, Callable[[Dict[str, Any]], Any]]:
        return {
            "ping": self._op_ping,
            "begin": self._op_begin,
            "commit": self._op_commit,
            "rollback": self._op_rollback,
            "query": self._op_query,
            "query_stream": self._op_query_stream,
            "fetch": self._op_fetch,
            "close_cursor": self._op_close_cursor,
            "new": self._op_new,
            "get": self._op_get,
            "update": self._op_update,
            "delete": self._op_delete,
            "stats": self._op_stats,
        }

    def _bound(self):
        """Context running the block under this session's transaction.

        Without an open transaction the engine's per-operation
        autocommit applies, exactly as in embedded use.
        """
        if self._txn is not None:
            return self.db.txns.bound(self._txn)
        return _NULL_CONTEXT

    def _abort_parked_txn(self) -> None:
        txn = self._txn
        self._txn = None
        if txn is not None and txn.is_active:
            txn.abort()

    # -- transaction ops ---------------------------------------------------

    def _op_ping(self, params: Dict[str, Any]) -> str:
        return "pong"

    def _op_begin(self, params: Dict[str, Any]) -> Dict[str, Any]:
        if self._txn is not None:
            raise SessionError(
                "session %d already has open transaction %d"
                % (self.session_id, self._txn.txn_id)
            )
        txn = self.db.txns.begin()
        # Park it: the worker thread returns to the pool, the session
        # owns the transaction until commit/rollback/release.
        self.db.txns.detach()
        self._txn = txn
        return {"txn": txn.txn_id}

    def _require_txn(self):
        if self._txn is None:
            raise SessionError(
                "session %d has no open transaction" % self.session_id
            )
        return self._txn

    def _op_commit(self, params: Dict[str, Any]) -> Dict[str, Any]:
        txn = self._require_txn()
        self._close_cursors()
        try:
            txn.commit()
        except Exception:
            # A failed commit (WAL append error, injected fault) must not
            # strand the transaction on the session: roll it back so its
            # locks die with the request, then surface the typed error.
            if txn.is_active:
                txn.abort()
            raise
        finally:
            self._txn = None
        return {"txn": txn.txn_id}

    def _op_rollback(self, params: Dict[str, Any]) -> Dict[str, Any]:
        txn = self._require_txn()
        self._close_cursors()
        self._txn = None
        txn.abort()
        return {"txn": txn.txn_id}

    # -- query ops ---------------------------------------------------------

    def _op_query(self, params: Dict[str, Any]) -> Dict[str, Any]:
        q = self._str_param(params, "q")
        want_values = bool(params.get("values"))
        with self._bound():
            result = self.db.execute(q)
            if result.system or result.rows is not None:
                rows: List[Any] = [to_wire(row) for row in result.rows or []]
            elif want_values:
                rows = [self._materialize(oid) for oid in result.oids]
            else:
                rows = [to_wire(oid) for oid in result.oids]
        return {"rows": rows, "count": len(rows)}

    def _op_query_stream(self, params: Dict[str, Any]) -> Dict[str, Any]:
        q = self._str_param(params, "q")
        with self._bound():
            stream = self.db.select_iter(q)
        cursor_id = self._next_cursor
        self._next_cursor += 1
        self._cursors[cursor_id] = stream
        self.db.metrics.gauge("server.cursors").set(len(self._cursors))
        return {"cursor": cursor_id}

    def _op_fetch(self, params: Dict[str, Any]) -> Dict[str, Any]:
        cursor_id = params.get("cursor")
        limit = int(params.get("n") or 64)
        if limit < 1:
            raise SessionError("fetch size must be positive")
        stream = self._cursors.get(cursor_id)
        if stream is None:
            raise SessionError("unknown cursor %r" % cursor_id)
        rows: List[Any] = []
        done = False
        with self._bound():
            while len(rows) < limit:
                try:
                    # The stream's own visible state, not a re-read of
                    # current storage: under snapshot reads the cursor
                    # must keep serving its begin snapshot even while
                    # writers commit between fetch batches.
                    state = stream.next_state()
                except StopIteration:
                    done = True
                    break
                rows.append(
                    {
                        "oid": to_wire(state.oid),
                        "class": state.class_name,
                        "values": to_wire(dict(state.values)),
                    }
                )
        if done:
            stream.close()
            self._cursors.pop(cursor_id, None)
            self.db.metrics.gauge("server.cursors").set(len(self._cursors))
        self.rows_streamed += len(rows)
        self.db.metrics.counter("server.rows_streamed").inc(len(rows))
        return {"rows": rows, "done": done}

    def _op_close_cursor(self, params: Dict[str, Any]) -> Dict[str, Any]:
        cursor_id = params.get("cursor")
        stream = self._cursors.pop(cursor_id, None)
        if stream is None:
            raise SessionError("unknown cursor %r" % cursor_id)
        stream.close()
        self.db.metrics.gauge("server.cursors").set(len(self._cursors))
        return {"closed": cursor_id}

    # -- object ops ----------------------------------------------------------

    def _op_new(self, params: Dict[str, Any]) -> Dict[str, Any]:
        class_name = self._str_param(params, "class")
        values = params.get("values") or {}
        if not isinstance(values, dict):
            raise SessionError("values must be an object")
        with self._bound():
            handle = self.db.new(class_name, from_wire(values))
        return {"oid": to_wire(handle.oid)}

    def _op_get(self, params: Dict[str, Any]) -> Dict[str, Any]:
        oid = self._oid_param(params)
        with self._bound():
            return self._materialize(oid)

    def _op_update(self, params: Dict[str, Any]) -> Dict[str, Any]:
        oid = self._oid_param(params)
        changes = params.get("changes")
        if not isinstance(changes, dict):
            raise SessionError("changes must be an object")
        with self._bound():
            self.db.update(oid, from_wire(changes))
        return {"oid": to_wire(oid)}

    def _op_delete(self, params: Dict[str, Any]) -> Dict[str, Any]:
        oid = self._oid_param(params)
        with self._bound():
            self.db.delete(oid)
        return {"oid": to_wire(oid)}

    def _op_stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return to_wire(self.db.stats.snapshot())

    # -- param / row helpers -------------------------------------------------

    def _str_param(self, params: Dict[str, Any], key: str) -> str:
        value = params.get(key)
        if not isinstance(value, str) or not value:
            raise SessionError("op requires a non-empty %r string" % key)
        return value

    def _oid_param(self, params: Dict[str, Any]) -> OID:
        oid = from_wire(params.get("oid"))
        if not isinstance(oid, OID):
            raise SessionError("op requires an 'oid' reference")
        return oid

    def _materialize(self, oid) -> Dict[str, Any]:
        state = self.db.get_state(oid)
        return {
            "oid": to_wire(oid),
            "class": state.class_name,
            "values": to_wire(dict(state.values)),
        }

    # -- teardown ------------------------------------------------------------

    def _close_cursors(self) -> None:
        cursors, self._cursors = self._cursors, {}
        for stream in cursors.values():
            stream.close()
        self.db.metrics.gauge("server.cursors").set(0)

    def release(self) -> None:
        """Tear the session down: cursors closed, transaction rolled
        back, registry entry removed.  Idempotent; runs on clean close,
        client crash and reaper eviction alike."""
        with self._session_mutex:
            if self._released:
                return
            self._released = True
            self._close_cursors()
            self._abort_parked_txn()
        self._registry.remove(self)

    def __repr__(self) -> str:
        return "<Session %d %s client=%s>" % (
            self.session_id,
            self.state,
            self.client,
        )


class _NullContext:
    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class SessionRegistry:
    """All live sessions of one server; the SysSession row source.

    The server attaches its registry as ``db.sessions``, which is all
    the wiring the system catalog needs — ``SysSession`` then flows
    through the same parse/plan/pipeline path as every other view.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        self._sessions_mutex = threading.Lock()
        self._sessions: Dict[int, Session] = {}
        self._next_id = 1
        self._m_sessions = db.metrics.gauge("server.sessions")

    def create(self, client: str = "?") -> Session:
        with self._sessions_mutex:
            session_id = self._next_id
            self._next_id += 1
            session = Session(session_id, self.db, self, client=client)
            self._sessions[session_id] = session
            self._m_sessions.set(len(self._sessions))
        return session

    def remove(self, session: Session) -> None:
        with self._sessions_mutex:
            self._sessions.pop(session.session_id, None)
            self._m_sessions.set(len(self._sessions))

    def snapshot(self) -> List[Session]:
        with self._sessions_mutex:
            return [self._sessions[sid] for sid in sorted(self._sessions)]

    def __len__(self) -> int:
        with self._sessions_mutex:
            return len(self._sessions)

    def release_all(self) -> None:
        for session in self.snapshot():
            session.release()

    def rows(self) -> Iterator[Dict[str, Any]]:
        """SysSession rows (fresh snapshot per scan)."""
        for session in self.snapshot():
            yield {
                "session": session.session_id,
                "client": session.client,
                "state": session.state,
                "txn": session.txn_id,
                "age": session.age_seconds,
                "idle": session.idle_seconds,
                "requests": session.requests,
                "rows_streamed": session.rows_streamed,
                "cursors": len(session._cursors),
            }
