"""Blocking client for the kimdb wire protocol.

:class:`Client` is one connection = one server session: its ``begin``
opens the session's single transaction, and dropping the connection
(crash or :meth:`Client.kill`) makes the server roll that transaction
back.  Typed error frames re-raise as
:class:`~repro.server.protocol.ServerError` with the stable wire code.

:class:`ConnectionPool` amortizes connection setup for fan-out
workloads: connections are health-checked (ping) on reuse and returned
to the pool clean — an open transaction on a released connection is
rolled back rather than leaking into the next borrower.
"""

from __future__ import annotations

import contextlib
import socket
import struct
import threading
import uuid
from typing import Any, Dict, Iterator, List, Optional

from ..core.oid import OID
from .protocol import (
    ServerError,
    from_wire,
    raise_on_error,
    recv_frame,
    send_frame,
    to_wire,
)


class Client:
    """One blocking connection to a kimdb server."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        trace_id: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._next_id = 1
        self._closed = False
        #: This connection's trace id, stamped into every request frame
        #: (with the request id as the span id) and adopted server-side,
        #: so the client can find its own slow queries in SysSlowOp /
        #: SysWaitEvent by an id it chose — or logged — itself.
        self.trace_id = trace_id if trace_id is not None else uuid.uuid4().hex[:16]
        #: True between a successful begin and its commit/rollback
        #: (the pool rolls back before reusing the connection).
        self.in_txn = False

    # -- plumbing ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def call(self, op: str, **params: Any) -> Any:
        """One request/response round trip; returns the decoded result."""
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        send_frame(
            self._sock,
            {
                "id": request_id,
                "op": op,
                "params": params,
                "trace": {"id": self.trace_id, "span": request_id},
            },
        )
        payload, _n = recv_frame(self._sock)
        if payload.get("id") not in (request_id, None):
            raise ConnectionError(
                "response id %r does not match request id %d"
                % (payload.get("id"), request_id)
            )
        return from_wire(raise_on_error(payload))

    def close(self) -> None:
        """Close the connection (the server rolls back any open txn)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def kill(self) -> None:
        """Abort the connection with an RST — simulates a client crash.

        Unlike :meth:`close` there is no orderly FIN; the server sees
        the connection die exactly as it would for a killed process.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- transactions --------------------------------------------------------

    def ping(self) -> bool:
        return self.call("ping") == "pong"

    def begin(self) -> int:
        txn = self.call("begin")["txn"]
        self.in_txn = True
        return txn

    def commit(self) -> int:
        # Clear the flag *before* the round trip: whether commit
        # succeeds or fails, the server ends the transaction (a failed
        # commit is rolled back server-side), so a commit-time
        # ServerError must propagate to the caller — not trigger a
        # doomed rollback of a transaction that no longer exists.
        self.in_txn = False
        return self.call("commit")["txn"]

    def rollback(self) -> int:
        self.in_txn = False
        return self.call("rollback")["txn"]

    @contextlib.contextmanager
    def transaction(self) -> Iterator["Client"]:
        self.begin()
        try:
            yield self
        except BaseException:
            if self.in_txn and not self._closed:
                self.rollback()
            raise
        else:
            self.commit()

    # -- queries -------------------------------------------------------------

    def query(self, q: str, values: bool = False) -> List[Any]:
        """Run a query, materialized server-side in one response."""
        return self.call("query", q=q, values=values)["rows"]

    def query_stream(self, q: str, batch: int = 64) -> Iterator[Dict[str, Any]]:
        """Stream query rows through a server-side cursor.

        The cursor is chunk-fetched lazily; abandoning the generator
        closes it server-side so scan locks never outlive the consumer.
        """
        cursor = self.call("query_stream", q=q)["cursor"]
        done = False
        try:
            while not done:
                reply = self.call("fetch", cursor=cursor, n=batch)
                done = bool(reply.get("done"))
                for row in reply["rows"]:
                    yield row
        finally:
            if not done and not self._closed:
                try:
                    self.call("close_cursor", cursor=cursor)
                except (ServerError, ConnectionError, OSError):
                    pass

    # -- objects -------------------------------------------------------------

    def new(self, class_name: str, values: Optional[Dict[str, Any]] = None) -> OID:
        reply = self.call("new", **{"class": class_name, "values": to_wire(values or {})})
        return reply["oid"]

    def get(self, oid: OID) -> Dict[str, Any]:
        return self.call("get", oid=to_wire(oid))

    def update(self, oid: OID, changes: Dict[str, Any]) -> OID:
        return self.call("update", oid=to_wire(oid), changes=to_wire(changes))["oid"]

    def delete(self, oid: OID) -> OID:
        return self.call("delete", oid=to_wire(oid))["oid"]

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return "<Client %s:%d %s>" % (self.host, self.port, state)


class ConnectionPool:
    """A small health-checked pool of :class:`Client` connections."""

    def __init__(
        self, host: str, port: int, size: int = 8, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.size = size
        self.timeout = timeout
        self._pool_mutex = threading.Lock()
        self._idle: List[Client] = []
        self._closed = False

    def _connect(self) -> Client:
        return Client(self.host, self.port, timeout=self.timeout)

    def acquire(self) -> Client:
        """A healthy connection: pooled if one pings, fresh otherwise."""
        while True:
            with self._pool_mutex:
                if self._closed:
                    raise ConnectionError("pool is closed")
                client = self._idle.pop() if self._idle else None
            if client is None:
                return self._connect()
            try:
                if client.ping():
                    return client
            except (ServerError, ConnectionError, OSError):
                pass
            client.close()

    def release(self, client: Client) -> None:
        """Return a connection, rolled back and ready for the next user."""
        if client.closed:
            return
        if client.in_txn:
            try:
                client.rollback()
            except (ServerError, ConnectionError, OSError):
                client.close()
                return
        with self._pool_mutex:
            if not self._closed and len(self._idle) < self.size:
                self._idle.append(client)
                return
        client.close()

    @contextlib.contextmanager
    def connection(self) -> Iterator[Client]:
        client = self.acquire()
        try:
            yield client
        finally:
            self.release(client)

    def close(self) -> None:
        with self._pool_mutex:
            self._closed = True
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return "<ConnectionPool %s:%d %d idle>" % (
            self.host,
            self.port,
            len(self._idle),
        )
