"""The network front end: asyncio framing, thread-pool execution.

One process owns the :class:`~repro.database.Database`; any number of
clients share it over TCP.  The split of responsibilities:

* the **asyncio loop** (one daemon thread) does nothing but frame I/O —
  read a length prefix, read a body, write a response.  It never calls
  into the engine, so a slow query can't stall other clients' reads.
* the **thread pool** runs engine work.  A request is decoded on the
  loop, handed to :meth:`Session.handle` on a pool thread (which
  re-attaches the session's parked transaction there), and the response
  frame is written back from the loop.
* the **idle reaper** (an asyncio task) closes connections whose
  sessions have been idle past ``idle_timeout``; the connection
  handler's ``finally`` then releases the session, so eviction and
  client crash share one cleanup path.

The server registers its session registry as ``db.sessions``, which
makes the ``SysSession`` system view live — connected sessions are
queryable over the very protocol they arrive on.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from ..database import Database
from . import protocol
from .protocol import ProtocolError
from .session import Session, SessionRegistry


class Server:
    """Serve one database to many clients.

    Usable as a context manager; ``port=0`` binds an ephemeral port
    (read the bound one from :attr:`address` after :meth:`start`).
    """

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 8,
        idle_timeout: Optional[float] = None,
        lock_timeout: Optional[float] = None,
    ) -> None:
        self.db = db
        self.host = host
        self.port = port
        self.workers = workers
        self.idle_timeout = idle_timeout
        self.lock_timeout = lock_timeout
        self.sessions = SessionRegistry(db)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._asyncio_server: Optional[asyncio.base_events.Server] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._reaper: Optional[asyncio.Task] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._running = False
        #: session id -> StreamWriter; loop-thread only (reaper eviction
        #: and shutdown close connections through it).
        self._conns: Dict[int, asyncio.StreamWriter] = {}
        #: Live connection-handler tasks; shutdown drains these so every
        #: session release completes before the loop exits.
        self._handler_tasks: set = set()

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "Server":
        if self._running:
            return self
        if self.lock_timeout is not None:
            self.db.locks.default_timeout = self.lock_timeout
        self.db.sessions = self.sessions
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="kimdb-worker"
        )
        self._started.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="kimdb-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("server failed to start within 10s")
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise self._startup_error
        self._running = True
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._request_stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        # Belt and braces: the connection handlers already released
        # their sessions on the way down; anything left (a connection
        # that never finished its handshake) is swept here.
        self.sessions.release_all()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.db.sessions = None

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def serve_forever(self) -> None:
        """Block the calling thread until the server is stopped."""
        self.start()
        thread = self._thread
        try:
            while thread is not None and thread.is_alive():
                thread.join(timeout=0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    # -- event loop ----------------------------------------------------------

    def _run_loop(self) -> None:
        asyncio.run(self._main())

    def _request_stop(self) -> None:
        if self._stop_requested is not None:
            self._stop_requested.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        try:
            self._asyncio_server = await asyncio.start_server(
                self._handle_conn, self.host, self.port
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        sockname = self._asyncio_server.sockets[0].getsockname()
        self.port = sockname[1]
        if self.idle_timeout is not None:
            self._reaper = self._loop.create_task(self._reap_idle())
        self._started.set()
        await self._stop_requested.wait()
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
        self._asyncio_server.close()
        await self._asyncio_server.wait_closed()
        for writer in list(self._conns.values()):
            writer.close()
        # Let every handler run its finally block (session release) to
        # completion before asyncio.run starts cancelling tasks.
        pending = [task for task in self._handler_tasks if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=5.0)

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        peer = writer.get_extra_info("peername")
        client = "%s:%s" % (peer[0], peer[1]) if isinstance(peer, tuple) else "?"
        session = self.sessions.create(client=client)
        self._conns[session.session_id] = writer
        metrics = self.db.metrics
        metrics.counter("server.connections").inc()
        m_in = metrics.counter("server.bytes_in")
        m_out = metrics.counter("server.bytes_out")
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                    length = protocol.frame_length(header)
                    body = await reader.readexactly(length)
                    payload = protocol.decode_payload(body)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except ProtocolError as exc:
                    # Framing is unrecoverable once a bad length or
                    # body arrives: answer with a typed error, hang up.
                    writer.write(
                        protocol.encode_frame(protocol.error_response(None, exc))
                    )
                    await self._drain(writer)
                    break
                m_in.inc(4 + length)
                response = await self._loop.run_in_executor(
                    self._pool, session.handle, payload
                )
                frame = protocol.encode_frame(response)
                writer.write(frame)
                if not await self._drain(writer):
                    break
                m_out.inc(len(frame))
        finally:
            self._conns.pop(session.session_id, None)
            # The stranded-lock guarantee: clean goodbye, client crash
            # and reaper eviction all funnel through this release —
            # open transaction rolled back, cursors closed, locks freed.
            await self._release(session)
            writer.close()

    @staticmethod
    async def _drain(writer: asyncio.StreamWriter) -> bool:
        try:
            await writer.drain()
        except ConnectionError:
            return False
        return True

    async def _release(self, session: Session) -> None:
        try:
            await asyncio.shield(
                self._loop.run_in_executor(self._pool, session.release)
            )
        except (RuntimeError, asyncio.CancelledError):
            # Pool shutting down, or this handler was cancelled during
            # loop teardown: release inline (idempotent either way).
            session.release()

    async def _reap_idle(self) -> None:
        assert self.idle_timeout is not None
        interval = max(0.05, min(1.0, self.idle_timeout / 4.0))
        while True:
            await asyncio.sleep(interval)
            for session in self.sessions.snapshot():
                if session.busy or session.idle_seconds < self.idle_timeout:
                    continue
                writer = self._conns.get(session.session_id)
                if writer is not None:
                    self.db.metrics.counter("server.idle_evictions").inc()
                    # Closing the transport wakes the handler's read,
                    # which runs the one true cleanup path above.
                    writer.close()

    def __repr__(self) -> str:
        state = "running" if self._running else "stopped"
        return "<Server %s:%d %s, %d sessions>" % (
            self.host,
            self.port,
            state,
            len(self.sessions),
        )
