"""Multi-client network front end for the kimdb engine.

The paper's first requirement for an OODB is that it be "a persistent
and *sharable* repository of objects"; everything before this package
shared a database only between threads of one process.  ``repro.server``
makes the repository sharable in the ordinary client/server sense:

* :mod:`~repro.server.protocol` — the wire format: length-prefixed JSON
  frames, OID markers, stable error codes;
* :mod:`~repro.server.session` — per-connection sessions owning at most
  one open transaction each, parked between requests and re-attached on
  whichever pool thread serves the next one;
* :mod:`~repro.server.server` — the asyncio accept loop + thread pool,
  with an idle reaper and rollback-on-disconnect;
* :mod:`~repro.server.client` — a blocking :class:`Client` and a
  health-checked :class:`ConnectionPool`.

Start a server with ``python -m repro.tools.serve`` or in-process::

    with Server(db, port=0) as server:
        client = Client(*server.address)
"""

from .client import Client, ConnectionPool
from .protocol import ProtocolError, ServerError, SessionError
from .server import Server
from .session import Session, SessionRegistry

__all__ = [
    "Client",
    "ConnectionPool",
    "ProtocolError",
    "ServerError",
    "SessionError",
    "Server",
    "Session",
    "SessionRegistry",
]
