"""The kimdb wire protocol: length-prefixed frames of JSON.

The paper's minimum definition of an OODB makes it "a persistent and
*sharable* repository"; sharing across processes needs a wire format.
This one is deliberately small:

* **Framing** — every message is a 4-byte big-endian unsigned length
  followed by that many bytes of UTF-8 JSON.  A frame larger than
  :data:`MAX_FRAME_BYTES` is a protocol error (a malformed length prefix
  must not make the peer allocate gigabytes).
* **Requests** — ``{"id": n, "op": "query", "params": {...}}``.  The id
  is chosen by the client and echoed back verbatim, so a client library
  can pipeline requests if it wants to (the bundled one does not).  An
  optional ``"trace": {"id": str, "span": n}`` field propagates the
  client's trace context: the server adopts the id for the request's
  spans, wait events and slow-op log entries (see
  :meth:`~repro.obs.tracing.Tracer.trace`), so a slow query is findable
  server-side — SysSlowOp, SysWaitEvent — by the id the client logged.
  Unknown or malformed trace fields are ignored, never an error.
* **Responses** — ``{"id": n, "ok": true, "result": ...}`` on success,
  or ``{"id": n, "ok": false, "error": {"code": ..., "message": ...}}``.
  Error *codes* are the stable contract (clients dispatch on them);
  messages are human-readable and may change.
* **Values** — JSON primitives pass through; an OID crosses the wire as
  ``{"$oid": value, "$class": hint}`` (see :func:`to_wire` /
  :func:`from_wire`), so object references survive the round trip.

Engine exceptions map onto stable error codes via :func:`error_code`;
the client re-raises them as :class:`ServerError` carrying the code.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from ..core.oid import OID
from ..errors import caret_snippet, source_position
from ..errors import (
    AuthorizationError,
    DeadlockError,
    KimDBError,
    LockTimeoutError,
    ObjectNotFoundError,
    QueryError,
    QuerySyntaxError,
    SchemaError,
    SemanticError,
    TransactionError,
    TypeCheckError,
)

#: Hard ceiling on one frame (requests and responses alike).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(KimDBError):
    """Malformed frame, oversized frame, or non-serializable value."""


class SessionError(KimDBError):
    """Illegal session usage (nested BEGIN, unknown cursor, closed session)."""


class ServerError(KimDBError):
    """Client-side image of a typed error frame.

    ``code`` is the stable wire code (``LOCK_TIMEOUT``, ``DEADLOCK``,
    ...); ``message`` is the server's human-readable description.
    ``diagnostics`` carries the structured compile-time findings of a
    ``SEMANTIC`` error — each with code, severity, character span and
    resolved line/column/caret — exactly as the server's analyzer
    produced them, so remote tooling can point at source without
    re-parsing the rendered message.
    """

    def __init__(self, code: str, message: str, diagnostics=()) -> None:
        super().__init__("[%s] %s" % (code, message))
        self.code = code
        self.message = message
        self.diagnostics = list(diagnostics)


#: Exception class -> stable wire code, most specific first.  Anything
#: not matched (a genuine server bug) reports ``INTERNAL``.
_ERROR_CODES: Tuple[Tuple[type, str], ...] = (
    (DeadlockError, "DEADLOCK"),
    (LockTimeoutError, "LOCK_TIMEOUT"),
    (TransactionError, "TRANSACTION"),
    (ObjectNotFoundError, "NOT_FOUND"),
    (SemanticError, "SEMANTIC"),
    (QuerySyntaxError, "SYNTAX"),
    (QueryError, "QUERY"),
    (SchemaError, "SCHEMA"),
    (TypeCheckError, "TYPECHECK"),
    (AuthorizationError, "FORBIDDEN"),
    (SessionError, "SESSION"),
    (ProtocolError, "PROTOCOL"),
    (KimDBError, "ENGINE"),
)


def error_code(exc: BaseException) -> str:
    """The stable wire code for an exception (``INTERNAL`` if unknown)."""
    for klass, code in _ERROR_CODES:
        if isinstance(exc, klass):
            return code
    return "INTERNAL"


# -- value encoding ----------------------------------------------------------


def to_wire(value: Any) -> Any:
    """Recursively encode a result value for JSON transport.

    OIDs become ``{"$oid": ..., "$class": ...}`` markers; containers
    recurse; JSON primitives pass through; anything else is a
    :class:`ProtocolError` (the server must never silently ``repr`` an
    internal object onto the wire).
    """
    if isinstance(value, OID):
        return {"$oid": value.value, "$class": value.hint}
    if isinstance(value, dict):
        return {str(key): to_wire(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_wire(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ProtocolError(
        "value of type %s is not wire-encodable" % type(value).__name__
    )


def from_wire(value: Any) -> Any:
    """Inverse of :func:`to_wire`: revive OID markers, recurse containers."""
    if isinstance(value, dict):
        if "$oid" in value:
            return OID(int(value["$oid"]), str(value.get("$class") or ""))
        return {key: from_wire(item) for key, item in value.items()}
    if isinstance(value, list):
        return [from_wire(item) for item in value]
    return value


# -- frame encoding ----------------------------------------------------------


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One wire frame (length prefix + JSON body) for a message dict."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "frame of %d bytes exceeds the %d-byte limit"
            % (len(body), MAX_FRAME_BYTES)
        )
    return _LENGTH.pack(len(body)) + body


def decode_payload(body: bytes) -> Dict[str, Any]:
    """Parse one frame body; malformed JSON is a :class:`ProtocolError`."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("undecodable frame: %s" % exc) from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


def frame_length(header: bytes) -> int:
    """Decode and bounds-check a 4-byte length prefix."""
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            "announced frame of %d bytes exceeds the %d-byte limit"
            % (length, MAX_FRAME_BYTES)
        )
    return length


# -- response shaping (shared by server and tests) ---------------------------


def ok_response(request_id: Any, result: Any) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, exc: BaseException) -> Dict[str, Any]:
    error: Dict[str, Any] = {"code": error_code(exc), "message": str(exc)}
    diagnostics = _wire_diagnostics(exc)
    if diagnostics:
        error["diagnostics"] = diagnostics
    return {"id": request_id, "ok": False, "error": error}


def _wire_diagnostics(exc: BaseException) -> list:
    """Structured diagnostics of a semantic/rewrite failure, wire-shaped.

    Each entry is the diagnostic's own ``to_dict`` (severity, code,
    message, character span) plus — when the failing query's source text
    is known — the span resolved to 1-based ``line``/``column`` and a
    ``caret`` snippet, so the client renders the identical
    pointed-at-source message without owning the query text.
    """
    diagnostics = getattr(exc, "diagnostics", None)
    if not diagnostics:
        return []
    source = getattr(exc, "source", None)
    out = []
    for diag in diagnostics:
        entry = dict(diag.to_dict())
        span = getattr(diag, "span", None)
        if source is not None and span is not None:
            line, column = source_position(source, span.start)
            entry["line"] = line
            entry["column"] = column
            entry["caret"] = caret_snippet(
                source, span.start, max(1, span.end - span.start)
            )
        out.append(entry)
    return out


# -- blocking socket helpers (client side) -----------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> int:
    """Write one frame to a blocking socket; returns bytes sent."""
    frame = encode_frame(payload)
    sock.sendall(frame)
    return len(frame)


def recv_frame(sock: socket.socket) -> Tuple[Dict[str, Any], int]:
    """Read one frame from a blocking socket: (payload, bytes read)."""
    header = _recv_exact(sock, _LENGTH.size)
    length = frame_length(header)
    body = _recv_exact(sock, length) if length else b""
    return decode_payload(body), _LENGTH.size + length


def raise_on_error(payload: Dict[str, Any]) -> Any:
    """Unwrap a response payload; re-raise typed errors as ServerError."""
    if payload.get("ok"):
        return payload.get("result")
    error: Optional[Dict[str, Any]] = payload.get("error")
    if not isinstance(error, dict):
        raise ProtocolError("response frame is neither ok nor a typed error")
    return_code = str(error.get("code") or "INTERNAL")
    raise ServerError(
        return_code,
        str(error.get("message") or ""),
        diagnostics=error.get("diagnostics") or (),
    )
