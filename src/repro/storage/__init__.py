"""Storage substrate: pages, buffer pool, heaps, object directory."""

from .buffer import BufferPool, BufferStats
from .clustering import (
    AttributeClustering,
    ClusteringPolicy,
    CompositeClustering,
    NoClustering,
)
from .directory import DirectoryEntry, ObjectDirectory
from .heap import RID, HeapFile
from .manager import StorageManager, load_state_if_exists
from .page import SlottedPage
from .pager import DEFAULT_PAGE_SIZE, FilePager, MemoryPager, open_pager
from .serializer import decode_object, encode_object

__all__ = [
    "BufferPool",
    "BufferStats",
    "ClusteringPolicy",
    "NoClustering",
    "CompositeClustering",
    "AttributeClustering",
    "DirectoryEntry",
    "ObjectDirectory",
    "RID",
    "HeapFile",
    "StorageManager",
    "load_state_if_exists",
    "SlottedPage",
    "DEFAULT_PAGE_SIZE",
    "FilePager",
    "MemoryPager",
    "open_pager",
    "decode_object",
    "encode_object",
]
