"""Buffer manager.

An LRU cache of parsed :class:`~repro.storage.page.SlottedPage` objects in
front of a pager.  The paper (Section 4.2) frames OODB performance partly
in terms of how often object access has to cross into the storage layer;
the buffer pool's ``faults`` counter is the deterministic I/O metric used
by the clustering and traversal experiments (E4, E6).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, Iterator, Optional, Set

from ..errors import PageCorruptError, StorageError
from ..obs.metrics import MetricsRegistry
from ..obs.waits import WaitProfiler
from .page import SlottedPage


class BufferStats:
    """Hit/fault counters — a view over ``buffer.*`` registry metrics.

    Also registers the derived ``buffer.hit_rate`` metric so a single
    ``MetricsRegistry.snapshot()`` answers "how warm is the pool?"
    without the hot path paying for a division per access.
    """

    __slots__ = ("_hits", "_faults", "_evictions", "_flushes", "_corruptions")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._hits = registry.counter("buffer.hits")
        self._faults = registry.counter("buffer.faults")
        self._evictions = registry.counter("buffer.evictions")
        self._flushes = registry.counter("buffer.flushes")
        #: Checksum failures detected on page reads — the engine-side
        #: detection counter of the ``fault.*`` family.
        self._corruptions = registry.counter("fault.page_corruptions")
        registry.derived("buffer.hit_rate", lambda: self.hit_rate)

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def faults(self) -> int:
        return self._faults.value

    @faults.setter
    def faults(self, value: int) -> None:
        self._faults.value = value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @evictions.setter
    def evictions(self, value: int) -> None:
        self._evictions.value = value

    @property
    def flushes(self) -> int:
        return self._flushes.value

    @flushes.setter
    def flushes(self, value: int) -> None:
        self._flushes.value = value

    def reset(self) -> None:
        self._hits.reset()
        self._faults.reset()
        self._evictions.reset()
        self._flushes.reset()

    @property
    def accesses(self) -> int:
        return self.hits + self.faults

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "faults": self.faults,
            "evictions": self.evictions,
            "flushes": self.flushes,
        }


class BufferPool:
    """LRU buffer pool over a pager."""

    def __init__(
        self,
        pager,
        capacity: int = 256,
        registry: Optional[MetricsRegistry] = None,
        waits: Optional[WaitProfiler] = None,
    ) -> None:
        if capacity < 1:
            raise StorageError("buffer capacity must be >= 1")
        self.pager = pager
        self.capacity = capacity
        self._frames: "OrderedDict[int, SlottedPage]" = OrderedDict()
        self._dirty: Set[int] = set()
        self.stats = BufferStats(registry)
        self._waits = waits
        # Torn-page protection hooks (attached by the Database once the
        # WAL exists): log a full page image before the page write, and
        # make logged images durable.  Both None when no WAL is wired.
        self._image_log = None
        self._image_sync = None

    @property
    def page_size(self) -> int:
        return self.pager.page_size

    def new_page(self) -> int:
        """Allocate a fresh page and cache it empty (and dirty)."""
        page_id = self.pager.allocate()
        self._admit(page_id, SlottedPage.empty(self.page_size))
        self._dirty.add(page_id)
        return page_id

    def attach_page_image_log(self, log, sync) -> None:
        """Arm torn-page protection: ``log(page_id, data)`` records a
        full page image, ``sync()`` makes recorded images durable.
        Every dirty write-back then logs its image *before* the page
        write, so a write torn by a crash is repairable from the log."""
        self._image_log = log
        self._image_sync = sync

    def get_page(self, page_id: int) -> SlottedPage:
        frame = self._frames.get(page_id)
        if frame is not None:
            self._frames.move_to_end(page_id)
            self.stats._hits.inc()
            return frame
        self.stats._faults.inc()
        try:
            if self._waits is None:
                frame = SlottedPage.from_bytes(
                    self.pager.read_page(page_id), page_id=page_id
                )
            else:
                started = time.perf_counter()
                frame = SlottedPage.from_bytes(
                    self.pager.read_page(page_id), page_id=page_id
                )
                self._waits.record(
                    "BufferRead",
                    time.perf_counter() - started,
                    target="page:%d" % page_id,
                )
        except PageCorruptError:
            self.stats._corruptions.inc()
            raise
        self._admit(page_id, frame)
        return frame

    def mark_dirty(self, page_id: int) -> None:
        if page_id not in self._frames:
            raise StorageError("page %d is not resident" % page_id)
        self._dirty.add(page_id)

    def _admit(self, page_id: int, frame: SlottedPage) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page_id] = frame
        self._frames.move_to_end(page_id)

    def _write_back(
        self, page_id: int, frame: SlottedPage, image_logged: bool = False
    ) -> None:
        """Write a dirty frame through to the pager (timed as a wait).

        With torn-page protection armed, the page's full image is logged
        and made durable *before* the in-place write — write-ahead at
        the physical level, so recovery can always re-image a page whose
        write tore.  ``image_logged`` skips that when the caller already
        batch-logged (``flush_all``).
        """
        data = frame.to_bytes()
        if self._image_log is not None and not image_logged:
            self._image_log(page_id, data)
            self._image_sync()
        if self._waits is None:
            self.pager.write_page(page_id, data)
        else:
            started = time.perf_counter()
            self.pager.write_page(page_id, data)
            self._waits.record(
                "BufferWrite",
                time.perf_counter() - started,
                target="page:%d" % page_id,
            )

    def _evict_one(self) -> None:
        victim_id, victim = self._frames.popitem(last=False)
        if victim_id in self._dirty:
            self._write_back(victim_id, victim)
            self._dirty.discard(victim_id)
            self.stats._flushes.inc()
        self.stats._evictions.inc()

    def flush_page(self, page_id: int, image_logged: bool = False) -> None:
        frame = self._frames.get(page_id)
        if frame is not None and page_id in self._dirty:
            self._write_back(page_id, frame, image_logged=image_logged)
            self._dirty.discard(page_id)
            self.stats._flushes.inc()

    def flush_all(self) -> None:
        dirty = sorted(self._dirty)
        batch_logged = False
        if self._image_log is not None and dirty:
            # One durability point for the whole batch of images instead
            # of an fsync per page.
            for page_id in dirty:
                frame = self._frames.get(page_id)
                if frame is not None:
                    self._image_log(page_id, frame.to_bytes())
            self._image_sync()
            batch_logged = True
        for page_id in dirty:
            self.flush_page(page_id, image_logged=batch_logged)
        self.pager.sync()

    def invalidate(self, page_id: int) -> None:
        """Drop a frame without writing it back (recovery re-imaged the
        page on disk underneath us; the cached parse is stale)."""
        self._frames.pop(page_id, None)
        self._dirty.discard(page_id)

    def drop_all(self) -> None:
        """Empty the pool *after* flushing — used to simulate a cold cache."""
        self.flush_all()
        self._frames.clear()
        self._dirty.clear()

    def resident_pages(self) -> Iterator[int]:
        return iter(list(self._frames))

    def __len__(self) -> int:
        return len(self._frames)

    def __repr__(self) -> str:
        return "<BufferPool %d/%d pages, %d dirty>" % (
            len(self._frames),
            self.capacity,
            len(self._dirty),
        )
