"""Buffer manager.

An LRU cache of parsed :class:`~repro.storage.page.SlottedPage` objects in
front of a pager.  The paper (Section 4.2) frames OODB performance partly
in terms of how often object access has to cross into the storage layer;
the buffer pool's ``faults`` counter is the deterministic I/O metric used
by the clustering and traversal experiments (E4, E6).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Set

from ..errors import StorageError
from .page import SlottedPage


class BufferStats:
    """Hit/fault counters for one buffer pool."""

    __slots__ = ("hits", "faults", "evictions", "flushes")

    def __init__(self) -> None:
        self.hits = 0
        self.faults = 0
        self.evictions = 0
        self.flushes = 0

    def reset(self) -> None:
        self.hits = 0
        self.faults = 0
        self.evictions = 0
        self.flushes = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.faults

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "faults": self.faults,
            "evictions": self.evictions,
            "flushes": self.flushes,
        }


class BufferPool:
    """LRU buffer pool over a pager."""

    def __init__(self, pager, capacity: int = 256) -> None:
        if capacity < 1:
            raise StorageError("buffer capacity must be >= 1")
        self.pager = pager
        self.capacity = capacity
        self._frames: "OrderedDict[int, SlottedPage]" = OrderedDict()
        self._dirty: Set[int] = set()
        self.stats = BufferStats()

    @property
    def page_size(self) -> int:
        return self.pager.page_size

    def new_page(self) -> int:
        """Allocate a fresh page and cache it empty (and dirty)."""
        page_id = self.pager.allocate()
        self._admit(page_id, SlottedPage.empty(self.page_size))
        self._dirty.add(page_id)
        return page_id

    def get_page(self, page_id: int) -> SlottedPage:
        frame = self._frames.get(page_id)
        if frame is not None:
            self._frames.move_to_end(page_id)
            self.stats.hits += 1
            return frame
        self.stats.faults += 1
        frame = SlottedPage.from_bytes(self.pager.read_page(page_id))
        self._admit(page_id, frame)
        return frame

    def mark_dirty(self, page_id: int) -> None:
        if page_id not in self._frames:
            raise StorageError("page %d is not resident" % page_id)
        self._dirty.add(page_id)

    def _admit(self, page_id: int, frame: SlottedPage) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page_id] = frame
        self._frames.move_to_end(page_id)

    def _evict_one(self) -> None:
        victim_id, victim = self._frames.popitem(last=False)
        if victim_id in self._dirty:
            self.pager.write_page(victim_id, victim.to_bytes())
            self._dirty.discard(victim_id)
            self.stats.flushes += 1
        self.stats.evictions += 1

    def flush_page(self, page_id: int) -> None:
        frame = self._frames.get(page_id)
        if frame is not None and page_id in self._dirty:
            self.pager.write_page(page_id, frame.to_bytes())
            self._dirty.discard(page_id)
            self.stats.flushes += 1

    def flush_all(self) -> None:
        for page_id in list(self._dirty):
            self.flush_page(page_id)
        self.pager.sync()

    def drop_all(self) -> None:
        """Empty the pool *after* flushing — used to simulate a cold cache."""
        self.flush_all()
        self._frames.clear()
        self._dirty.clear()

    def resident_pages(self) -> Iterator[int]:
        return iter(list(self._frames))

    def __len__(self) -> int:
        return len(self._frames)

    def __repr__(self) -> str:
        return "<BufferPool %d/%d pages, %d dirty>" % (
            len(self._frames),
            self.capacity,
            len(self._dirty),
        )
