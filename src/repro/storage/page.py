"""Slotted pages.

Classic slotted-page layout: a small header, a slot directory growing
forward from the header, and record bodies growing backward from the end
of the page.  Deleting a record tombstones its slot (slot numbers are
stable because RIDs embed them); updating in place succeeds only when the
new body fits the old cell or the page has room, otherwise the caller
relocates the record.

Layout (big-endian)::

    [0:4)   crc32 over bytes [4:page_size)
    [4:6)   slot_count
    [6:8)   free_end   -- offset one past the last free byte (records
                          occupy [free_end:page_size))
    then slot_count entries of 4 bytes each: offset (2) + length (2).
    offset == 0xFFFF marks a tombstone.

Every serialized page carries its checksum; every deserialization
verifies it (raising :class:`~repro.errors.PageCorruptError`), so a torn
page write or flipped bit on disk is *detected* at the buffer pool
instead of surfacing as garbage records.  A page of all zero bytes is
the one checksum-exempt form: it is what the pager allocates and means
"never written" — an empty page.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, List, Optional, Tuple

from ..errors import PageCorruptError, PageFullError, StorageError

_CRC = struct.Struct(">I")
_HEADER = struct.Struct(">IHH")  # crc, slot_count, free_end
_SLOT = struct.Struct(">HH")
TOMBSTONE = 0xFFFF


class SlottedPage:
    """A parsed, mutable slotted page."""

    __slots__ = ("page_size", "_slots", "_records")

    def __init__(self, page_size: int) -> None:
        self.page_size = page_size
        # Parallel arrays: (offset, length) per slot and the record bodies.
        # We keep bodies separately so mutation is cheap; offsets are
        # recomputed at serialization time (records are always compacted on
        # write, which keeps fragmentation bounded without a vacuum pass).
        self._slots: List[Optional[bytes]] = []
        self._records = self._slots  # alias: body stored directly in slot list

    # -- geometry -----------------------------------------------------------

    @property
    def slot_count(self) -> int:
        return len(self._slots)

    @property
    def live_count(self) -> int:
        return sum(1 for body in self._slots if body is not None)

    def _used_bytes(self) -> int:
        body_bytes = sum(len(body) for body in self._slots if body is not None)
        return _HEADER.size + _SLOT.size * len(self._slots) + body_bytes

    @property
    def free_space(self) -> int:
        return self.page_size - self._used_bytes()

    def fits(self, record: bytes) -> bool:
        """Would ``record`` fit as a new insert (slot entry included)?"""
        return self.free_space >= len(record) + _SLOT.size

    # -- record operations ---------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert a record, reusing a tombstoned slot when available."""
        if len(record) > self.page_size - _HEADER.size - _SLOT.size:
            raise StorageError(
                "record of %d bytes can never fit a %d-byte page"
                % (len(record), self.page_size)
            )
        for slot, body in enumerate(self._slots):
            if body is None:
                if self.free_space < len(record):
                    raise PageFullError("page full")
                self._slots[slot] = bytes(record)
                return slot
        if not self.fits(record):
            raise PageFullError("page full")
        self._slots.append(bytes(record))
        return len(self._slots) - 1

    def read(self, slot: int) -> bytes:
        body = self._body(slot)
        if body is None:
            raise StorageError("slot %d is deleted" % slot)
        return body

    def update(self, slot: int, record: bytes) -> None:
        old = self._body(slot)
        if old is None:
            raise StorageError("slot %d is deleted" % slot)
        if self.free_space + len(old) < len(record):
            raise PageFullError("updated record does not fit")
        self._slots[slot] = bytes(record)

    def delete(self, slot: int) -> None:
        if self._body(slot) is None:
            raise StorageError("slot %d is already deleted" % slot)
        self._slots[slot] = None

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield (slot, body) for every live record."""
        for slot, body in enumerate(self._slots):
            if body is not None:
                yield slot, body

    def _body(self, slot: int) -> Optional[bytes]:
        if not 0 <= slot < len(self._slots):
            raise StorageError("slot %d out of range" % slot)
        return self._slots[slot]

    # -- (de)serialization ----------------------------------------------------

    def to_bytes(self) -> bytes:
        buf = bytearray(self.page_size)
        free_end = self.page_size
        slot_entries = []
        for body in self._slots:
            if body is None:
                slot_entries.append((TOMBSTONE, 0))
                continue
            free_end -= len(body)
            buf[free_end : free_end + len(body)] = body
            slot_entries.append((free_end, len(body)))
        _HEADER.pack_into(buf, 0, 0, len(self._slots), free_end)
        pos = _HEADER.size
        for offset, length in slot_entries:
            _SLOT.pack_into(buf, pos, offset, length)
            pos += _SLOT.size
        if pos > free_end:
            raise StorageError("slot directory overlaps record area")
        _CRC.pack_into(buf, 0, zlib.crc32(bytes(buf[_CRC.size :])))
        return bytes(buf)

    @staticmethod
    def verify_bytes(data: bytes, page_id: Optional[int] = None) -> None:
        """Raise :class:`PageCorruptError` unless ``data`` checksums.

        An all-zero page (never written since allocation) is valid and
        empty; any other content must carry a matching CRC.
        """
        (stored,) = _CRC.unpack_from(data, 0)
        if stored == zlib.crc32(data[_CRC.size :]):
            return
        if not any(data):
            return
        where = "page %s" % page_id if page_id is not None else "page"
        raise PageCorruptError(
            "%s failed checksum verification (stored 0x%08x): torn write "
            "or on-disk corruption" % (where, stored),
            page_id=page_id,
        )

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        page_id: Optional[int] = None,
        verify: bool = True,
    ) -> "SlottedPage":
        if verify:
            cls.verify_bytes(data, page_id)
        page = cls(len(data))
        _crc, slot_count, _free_end = _HEADER.unpack_from(data, 0)
        pos = _HEADER.size
        for _ in range(slot_count):
            offset, length = _SLOT.unpack_from(data, pos)
            pos += _SLOT.size
            if offset == TOMBSTONE:
                page._slots.append(None)
            else:
                page._slots.append(bytes(data[offset : offset + length]))
        return page

    @classmethod
    def empty(cls, page_size: int) -> "SlottedPage":
        return cls(page_size)

    def __repr__(self) -> str:
        return "<SlottedPage %d/%d slots, %d bytes free>" % (
            self.live_count,
            self.slot_count,
            self.free_space,
        )
