"""Heap files: unordered record storage with stable record ids.

kimdb gives every class its own heap file (a list of slotted pages), the
segment-per-class layout ORION used.  That makes class scans sequential
and gives the clustering policy (experiment E6) a meaningful notion of
"place this object near that one".
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..errors import PageFullError, StorageError
from .buffer import BufferPool


class RID:
    """Record identifier: (page id, slot) — stable across updates in place."""

    __slots__ = ("page_id", "slot")

    def __init__(self, page_id: int, slot: int) -> None:
        self.page_id = page_id
        self.slot = slot

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RID)
            and other.page_id == self.page_id
            and other.slot == self.slot
        )

    def __hash__(self) -> int:
        return hash((self.page_id, self.slot))

    def __repr__(self) -> str:
        return "RID(%d, %d)" % (self.page_id, self.slot)

    def to_pair(self) -> Tuple[int, int]:
        return (self.page_id, self.slot)


class HeapFile:
    """An append-friendly bag of records on slotted pages."""

    def __init__(self, buffer: BufferPool, name: str, page_ids: Optional[List[int]] = None) -> None:
        self.buffer = buffer
        self.name = name
        self.page_ids: List[int] = list(page_ids or [])

    # -- placement ----------------------------------------------------------

    def _try_insert(self, page_id: int, record: bytes) -> Optional[RID]:
        page = self.buffer.get_page(page_id)
        try:
            slot = page.insert(record)
        except PageFullError:
            return None
        self.buffer.mark_dirty(page_id)
        return RID(page_id, slot)

    def insert(self, record: bytes, near: Optional[RID] = None) -> RID:
        """Insert a record; with ``near`` co-locate with its page's run.

        Hinted placement: try the hint page; when it is full, grow the
        *cluster run* with a fresh page rather than falling back to the
        shared tail — otherwise every interleaved writer would stripe the
        same tail page and clustering would silently degrade (the effect
        experiment E6 measures).  Unhinted inserts append to the tail
        page, allocating a new one when full.
        """
        if near is not None and near.page_id in set(self.page_ids):
            rid = self._try_insert(near.page_id, record)
            if rid is not None:
                return rid
            page_id = self.buffer.new_page()
            self.page_ids.append(page_id)
            rid = self._try_insert(page_id, record)
            if rid is None:
                raise StorageError(
                    "record of %d bytes does not fit an empty page" % len(record)
                )
            return rid
        if self.page_ids:
            rid = self._try_insert(self.page_ids[-1], record)
            if rid is not None:
                return rid
        page_id = self.buffer.new_page()
        self.page_ids.append(page_id)
        rid = self._try_insert(page_id, record)
        if rid is None:
            raise StorageError(
                "record of %d bytes does not fit an empty page" % len(record)
            )
        return rid

    # -- access ---------------------------------------------------------------

    def read(self, rid: RID) -> bytes:
        self._check_owned(rid)
        return self.buffer.get_page(rid.page_id).read(rid.slot)

    def update(self, rid: RID, record: bytes) -> RID:
        """Update in place when possible, else relocate; returns the RID."""
        self._check_owned(rid)
        page = self.buffer.get_page(rid.page_id)
        try:
            page.update(rid.slot, record)
        except PageFullError:
            page.delete(rid.slot)
            self.buffer.mark_dirty(rid.page_id)
            return self.insert(record, near=rid)
        self.buffer.mark_dirty(rid.page_id)
        return rid

    def delete(self, rid: RID) -> None:
        self._check_owned(rid)
        page = self.buffer.get_page(rid.page_id)
        page.delete(rid.slot)
        self.buffer.mark_dirty(rid.page_id)

    def scan(self) -> Iterator[Tuple[RID, bytes]]:
        """All live records in page order (sequential-scan order)."""
        for page_id in list(self.page_ids):
            page = self.buffer.get_page(page_id)
            for slot, body in page.records():
                yield RID(page_id, slot), body

    def _check_owned(self, rid: RID) -> None:
        if rid.page_id not in set(self.page_ids):
            raise StorageError(
                "RID %r does not belong to heap %r" % (rid, self.name)
            )

    @property
    def page_count(self) -> int:
        return len(self.page_ids)

    def __repr__(self) -> str:
        return "<HeapFile %s: %d pages>" % (self.name, len(self.page_ids))
