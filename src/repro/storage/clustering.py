"""Physical clustering policies.

Section 4.2 lists physical clustering among the components needing new
architecture in an OODB: composite objects should live near their parents
so a traversal touches few pages.  A policy inspects a new object's state
and nominates a neighbour OID; the storage manager then tries to place the
record on the neighbour's page.  Experiment E6 measures the fault-count
difference between :class:`NoClustering` and :class:`CompositeClustering`.
"""

from __future__ import annotations

from typing import Optional

from ..core.obj import ObjectState
from ..core.oid import OID
from ..core.schema import Schema


class ClusteringPolicy:
    """Base policy: never clusters."""

    def neighbour_for(self, schema: Schema, state: ObjectState) -> Optional[OID]:
        """Return an OID to co-locate ``state`` with, or None."""
        return None


class NoClustering(ClusteringPolicy):
    """Explicit null policy (objects append to their class heap)."""


class CompositeClustering(ClusteringPolicy):
    """Cluster a new object near the first object it references through a
    composite (part-of) attribute — i.e. parts go near sibling parts.

    Because kimdb heaps are per-class, the useful anchor is a *sibling*:
    the policy walks the new object's composite references and nominates
    the referenced object when it is in the same class (sub-assembly
    chains), which keeps recursive assemblies physically contiguous.
    """

    def neighbour_for(self, schema: Schema, state: ObjectState) -> Optional[OID]:
        attrs = schema.attributes(state.class_name)
        for name, attr in attrs.items():
            value = state.values.get(name)
            if value is None:
                continue
            candidates = value if isinstance(value, list) else [value]
            for candidate in candidates:
                if isinstance(candidate, OID):
                    if attr.composite or attr.domain == state.class_name:
                        return candidate
        return None


class AttributeClustering(ClusteringPolicy):
    """Cluster near the object referenced by one named attribute.

    Lets an application declare, e.g., "place Connection objects near
    their source Part" without marking the attribute composite.
    """

    def __init__(self, class_name: str, attribute: str) -> None:
        self.class_name = class_name
        self.attribute = attribute

    def neighbour_for(self, schema: Schema, state: ObjectState) -> Optional[OID]:
        if not schema.is_subclass(state.class_name, self.class_name):
            return None
        value = state.values.get(self.attribute)
        if isinstance(value, OID):
            return value
        if isinstance(value, list):
            for element in value:
                if isinstance(element, OID):
                    return element
        return None
