"""The object directory.

Section 4.2 of the paper names "object directory management" as a primary
OODB component absent from conventional systems.  The directory maps a
logical OID to its physical location (class heap + RID), which is what
makes kimdb OIDs *logical*: relocating a record (page overflow,
reclustering) only touches the directory entry, never the references
stored inside other objects.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..core.oid import OID
from ..errors import ObjectNotFoundError
from .heap import RID


class DirectoryEntry:
    __slots__ = ("class_name", "rid")

    def __init__(self, class_name: str, rid: RID) -> None:
        self.class_name = class_name
        self.rid = rid

    def __repr__(self) -> str:
        return "<DirectoryEntry %s %r>" % (self.class_name, self.rid)


class ObjectDirectory:
    """OID -> (class, RID) map with a per-class secondary index."""

    def __init__(self) -> None:
        self._entries: Dict[OID, DirectoryEntry] = {}
        self._by_class: Dict[str, set] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, oid: OID) -> bool:
        return oid in self._entries

    def add(self, oid: OID, class_name: str, rid: RID) -> None:
        if oid in self._entries:
            raise ObjectNotFoundError(
                "directory already has an entry for %r" % (oid,)
            )
        self._entries[oid] = DirectoryEntry(class_name, rid)
        self._by_class.setdefault(class_name, set()).add(oid)

    def lookup(self, oid: OID) -> DirectoryEntry:
        entry = self._entries.get(oid)
        if entry is None:
            raise ObjectNotFoundError("no object with OID %r" % (oid,))
        return entry

    def try_lookup(self, oid: OID) -> Optional[DirectoryEntry]:
        return self._entries.get(oid)

    def relocate(self, oid: OID, rid: RID) -> None:
        self.lookup(oid).rid = rid

    def reclass(self, oid: OID, new_class: str, rid: RID) -> None:
        """Move an object between classes (schema evolution migrate)."""
        entry = self.lookup(oid)
        self._by_class.get(entry.class_name, set()).discard(oid)
        entry.class_name = new_class
        entry.rid = rid
        self._by_class.setdefault(new_class, set()).add(oid)

    def remove(self, oid: OID) -> DirectoryEntry:
        entry = self._entries.pop(oid, None)
        if entry is None:
            raise ObjectNotFoundError("no object with OID %r" % (oid,))
        self._by_class.get(entry.class_name, set()).discard(oid)
        return entry

    def oids_of_class(self, class_name: str) -> List[OID]:
        """OIDs of direct instances of ``class_name`` only, sorted."""
        return sorted(self._by_class.get(class_name, ()))

    def class_extent_sizes(self) -> Dict[str, int]:
        return {name: len(oids) for name, oids in self._by_class.items() if oids}

    def items(self) -> Iterator[Tuple[OID, DirectoryEntry]]:
        return iter(list(self._entries.items()))

    def max_oid_value(self) -> int:
        if not self._entries:
            return 0
        return max(oid.value for oid in self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._by_class.clear()
