"""Storage manager: the facade over pager, buffer, heaps and directory.

Gives the rest of the system an object-granularity API (store / load /
overwrite / remove by OID) and owns persistence bootstrap: reopening a
database rebuilds the directory by scanning the heaps recorded in the
metadata catalog, so the directory itself never needs to be durable.

**Long objects.**  The paper lists "long unstructured data (such as
images, audio, and textual documents)" among the post-relational
requirements.  An encoded object larger than a page spills into an
overflow heap as a chain of chunks; its class heap holds a small *stub*
pointing at the chain.  The split is invisible above this module.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Any, Dict, Iterator, List, Optional

from ..core.obj import ObjectState
from ..core.oid import OID
from ..errors import ObjectNotFoundError, PageCorruptError, StorageError
from ..obs.metrics import MetricsRegistry
from .buffer import BufferPool
from .directory import ObjectDirectory
from .heap import RID, HeapFile
from .page import SlottedPage
from .pager import DEFAULT_PAGE_SIZE, open_pager
from .serializer import decode_object, encode_object


#: Magic prefix marking a long-object stub record (encode_object output
#: always starts with an 8-byte big-endian OID, whose first byte is 0 for
#: any realistic OID, so the prefix cannot collide with a real record).
_LONG_MAGIC = b"\xffKIMLONG"
_STUB_HEAD = struct.Struct(">Q")  # oid value
_CHUNK_REF = struct.Struct(">IH")  # page id, slot

#: Name of the heap holding overflow chunks.
OVERFLOW_HEAP = "__overflow__"


class StorageManager:
    """Object store: one heap per class, one directory for all OIDs."""

    def __init__(
        self,
        path: Optional[str] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_capacity: int = 256,
        registry: Optional[MetricsRegistry] = None,
        waits=None,
    ) -> None:
        self.path = path
        self.pager = open_pager(path, page_size, registry, waits)
        self.buffer = BufferPool(self.pager, buffer_capacity, registry, waits)
        self.directory = ObjectDirectory()
        self._heaps: Dict[str, HeapFile] = {}
        self._sticky_extra: Dict[str, Any] = {}
        #: True when the bootstrap directory rebuild hit corrupt pages.
        #: Recovery repairs the pages from WAL full-page images and
        #: rebuilds again; anything else must not trust the directory.
        self.directory_stale = False
        if path is not None:
            self._load_metadata()

    # -- metadata (heap catalogs) -------------------------------------------

    @property
    def _meta_path(self) -> Optional[str]:
        return self.path + ".meta" if self.path else None

    def _load_metadata(self) -> None:
        meta_path = self._meta_path
        if meta_path is None or not os.path.exists(meta_path):
            return
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        for class_name, page_ids in meta.pop("heaps", {}).items():
            self._heaps[class_name] = HeapFile(self.buffer, class_name, page_ids)
        self._sticky_extra = meta
        try:
            self.rebuild_directory()
        except StorageError:
            # Torn pages (or a file shorter than the catalog expects, after
            # a crash reverted allocations).  Not fatal at open time:
            # recovery repairs pages from WAL images and rebuilds.
            self.directory_stale = True

    def save_metadata(self, extra: Optional[Dict[str, Any]] = None) -> None:
        """Persist heap catalogs (and arbitrary extra metadata) to disk.

        Extra metadata (e.g. the schema catalog) is sticky: once written
        it is preserved by later saves that do not pass a new value.
        """
        meta_path = self._meta_path
        if meta_path is None:
            return
        if extra:
            self._sticky_extra.update(extra)
        meta: Dict[str, Any] = {
            "heaps": {name: heap.page_ids for name, heap in self._heaps.items()}
        }
        meta.update(self._sticky_extra)
        tmp_path = meta_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, meta_path)

    def load_extra_metadata(self) -> Dict[str, Any]:
        meta_path = self._meta_path
        if meta_path is None or not os.path.exists(meta_path):
            return {}
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        meta.pop("heaps", None)
        return meta

    def rebuild_directory(self) -> None:
        """Re-derive OID -> location by scanning every heap."""
        self.directory.clear()
        for class_name, heap in self._heaps.items():
            if class_name == OVERFLOW_HEAP:
                continue
            for rid, body in heap.scan():
                if self._is_stub(body):
                    oid_value, _stub_class, _chunks = self._read_stub(body)
                    self.directory.add(OID(oid_value), class_name, rid)
                else:
                    state = decode_object(body)
                    self.directory.add(state.oid, class_name, rid)
        self.directory_stale = False

    # -- crash repair (driven by txn.recovery) ----------------------------

    def ensure_heap_pages(self) -> int:
        """Re-extend the page file to cover every cataloged heap page.

        A crash can revert page allocations (the file is shorter than it
        was) while the metadata catalog still references the higher page
        ids.  Fresh allocations are all-zero pages — exactly the state a
        never-flushed page would have had.  Returns how many pages were
        re-allocated.
        """
        max_id = -1
        for heap in self._heaps.values():
            if heap.page_ids:
                max_id = max(max_id, max(heap.page_ids))
        added = 0
        while self.pager.page_count <= max_id:
            self.pager.allocate()
            added += 1
        return added

    def repair_pages(self, images: Dict[int, bytes]) -> int:
        """Sweep every page, re-imaging corrupt ones from WAL images.

        ``images`` maps page id to the *newest* full page image in the
        log.  A corrupt page with no image is unrepairable and raises —
        that would mean a page write tore before its image was logged,
        i.e. the physical write-ahead invariant was violated (possible
        only under lying-fsync faults, where all guarantees are void).
        Returns the number of pages re-imaged.
        """
        repaired = 0
        for page_id in range(self.pager.page_count):
            data = self.pager.read_page(page_id)
            try:
                SlottedPage.verify_bytes(data, page_id)
            except PageCorruptError:
                image = images.get(page_id)
                if image is None:
                    raise PageCorruptError(
                        "page %d is corrupt and the log holds no image of it"
                        % page_id,
                        page_id=page_id,
                    )
                self.pager.write_page(page_id, image)
                self.buffer.invalidate(page_id)
                repaired += 1
        if repaired:
            self.pager.sync()
        return repaired

    # -- long objects (overflow chains) ----------------------------------

    def _max_plain_record(self) -> int:
        """Largest record stored inline on a slotted page."""
        return self.pager.page_size - 64

    @staticmethod
    def _is_stub(body: bytes) -> bool:
        return body.startswith(_LONG_MAGIC)

    def _write_long(self, data: bytes, oid: OID, class_name: str) -> bytes:
        """Spill ``data`` into the overflow heap; return the stub record."""
        heap = self.heap_for(OVERFLOW_HEAP)
        chunk_size = self._max_plain_record()
        rids = []
        previous = None
        for offset in range(0, len(data), chunk_size):
            rid = heap.insert(data[offset : offset + chunk_size], near=previous)
            rids.append(rid)
            previous = rid
        stub = bytearray(_LONG_MAGIC)
        stub += _STUB_HEAD.pack(oid.value)
        name = class_name.encode("utf-8")
        stub += struct.pack(">H", len(name)) + name
        stub += struct.pack(">I", len(rids))
        for rid in rids:
            stub += _CHUNK_REF.pack(rid.page_id, rid.slot)
        return bytes(stub)

    @staticmethod
    def _read_stub(body: bytes):
        pos = len(_LONG_MAGIC)
        (oid_value,) = _STUB_HEAD.unpack_from(body, pos)
        pos += _STUB_HEAD.size
        (name_len,) = struct.unpack_from(">H", body, pos)
        pos += 2
        class_name = body[pos : pos + name_len].decode("utf-8")
        pos += name_len
        (count,) = struct.unpack_from(">I", body, pos)
        pos += 4
        rids = []
        for _ in range(count):
            page_id, slot = _CHUNK_REF.unpack_from(body, pos)
            pos += _CHUNK_REF.size
            rids.append(RID(page_id, slot))
        return oid_value, class_name, rids

    def _assemble(self, body: bytes) -> ObjectState:
        _oid_value, _class_name, rids = self._read_stub(body)
        heap = self.heap_for(OVERFLOW_HEAP)
        data = b"".join(heap.read(rid) for rid in rids)
        return decode_object(data)

    def _free_chunks(self, body: bytes) -> None:
        if not self._is_stub(body):
            return
        _oid_value, _class_name, rids = self._read_stub(body)
        heap = self.heap_for(OVERFLOW_HEAP)
        for rid in rids:
            heap.delete(rid)

    def _encode_record(self, state: ObjectState) -> bytes:
        """Inline record, or a stub after spilling a long object."""
        data = encode_object(state)
        if len(data) > self._max_plain_record():
            return self._write_long(data, state.oid, state.class_name)
        return data

    def _decode_record(self, body: bytes) -> ObjectState:
        if self._is_stub(body):
            return self._assemble(body)
        return decode_object(body)

    # -- heap management -------------------------------------------------------

    def heap_for(self, class_name: str) -> HeapFile:
        heap = self._heaps.get(class_name)
        if heap is None:
            heap = HeapFile(self.buffer, class_name)
            self._heaps[class_name] = heap
        return heap

    def has_heap(self, class_name: str) -> bool:
        return class_name in self._heaps

    def heap_names(self) -> List[str]:
        return sorted(self._heaps)

    # -- object operations ------------------------------------------------------

    def store_new(self, state: ObjectState, near: Optional[OID] = None) -> RID:
        """Store a brand-new object, optionally clustered near ``near``.

        Clustering only applies when the neighbour lives in the *same*
        class heap; a cross-class hint silently degrades to normal
        placement (the common case for composite hierarchies is resolved
        by the clustering policy choosing same-heap anchors).
        """
        if state.oid in self.directory:
            raise StorageError("object %r already stored" % (state.oid,))
        heap = self.heap_for(state.class_name)
        near_rid: Optional[RID] = None
        if near is not None:
            entry = self.directory.try_lookup(near)
            if entry is not None and entry.class_name == state.class_name:
                near_rid = entry.rid
        rid = heap.insert(self._encode_record(state), near=near_rid)
        self.directory.add(state.oid, state.class_name, rid)
        return rid

    def load(self, oid: OID) -> ObjectState:
        entry = self.directory.lookup(oid)
        heap = self.heap_for(entry.class_name)
        return self._decode_record(heap.read(entry.rid))

    def contains(self, oid: OID) -> bool:
        return oid in self.directory

    def class_of(self, oid: OID) -> str:
        return self.directory.lookup(oid).class_name

    def overwrite(self, state: ObjectState) -> None:
        """Replace the stored state of an existing object."""
        entry = self.directory.lookup(state.oid)
        if entry.class_name != state.class_name:
            # Class migration: remove from the old heap, insert into new.
            old_heap = self.heap_for(entry.class_name)
            self._free_chunks(old_heap.read(entry.rid))
            old_heap.delete(entry.rid)
            new_heap = self.heap_for(state.class_name)
            rid = new_heap.insert(self._encode_record(state))
            self.directory.reclass(state.oid, state.class_name, rid)
            return
        heap = self.heap_for(entry.class_name)
        self._free_chunks(heap.read(entry.rid))
        new_rid = heap.update(entry.rid, self._encode_record(state))
        if new_rid != entry.rid:
            self.directory.relocate(state.oid, new_rid)

    def remove(self, oid: OID) -> ObjectState:
        """Delete an object, returning its final state (for undo logs)."""
        entry = self.directory.lookup(oid)
        heap = self.heap_for(entry.class_name)
        body = heap.read(entry.rid)
        state = self._decode_record(body)
        self._free_chunks(body)
        heap.delete(entry.rid)
        self.directory.remove(oid)
        return state

    def scan_class(self, class_name: str) -> Iterator[ObjectState]:
        """All direct instances of one class, in physical (page) order."""
        if class_name == OVERFLOW_HEAP or class_name not in self._heaps:
            return iter(())
        heap = self._heaps[class_name]

        def _iter() -> Iterator[ObjectState]:
            for _rid, body in heap.scan():
                yield self._decode_record(body)

        return _iter()

    def oids_of_class(self, class_name: str) -> List[OID]:
        return self.directory.oids_of_class(class_name)

    def count_class(self, class_name: str) -> int:
        return len(self.directory.oids_of_class(class_name))

    # -- lifecycle -----------------------------------------------------------------

    def flush(self) -> None:
        self.buffer.flush_all()
        self.save_metadata()

    def drop_cache(self) -> None:
        """Flush then empty the buffer pool (cold-cache experiments)."""
        self.buffer.drop_all()

    def close(self) -> None:
        try:
            self.flush()
        finally:
            self.pager.close()

    def __enter__(self) -> "StorageManager":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return "<StorageManager %s: %d objects, %d heaps>" % (
            self.path or "memory",
            len(self.directory),
            len(self._heaps),
        )


def load_state_if_exists(storage: StorageManager, oid: OID) -> Optional[ObjectState]:
    """Convenience: load or None instead of raising."""
    try:
        return storage.load(oid)
    except ObjectNotFoundError:
        return None
