"""Binary object serialization.

Encodes an :class:`~repro.core.obj.ObjectState` into a compact
tag-length-value byte string for storage in slotted pages, and decodes it
back.  The format is self-describing (every value carries a type tag), so
schema evolution never invalidates stored records — a record written under
an old class definition decodes fine and is coerced lazily (experiment
E12).

Record layout::

    u64  oid
    str  class_name        (u16 length + utf-8 bytes)
    u16  attribute count
    per attribute: str name, tagged value

Tagged values: ``N`` none, ``T``/``F`` bool, ``I`` signed int
(u8 length + big-endian two's complement), ``D`` float (8-byte IEEE),
``S`` string, ``B`` bytes, ``O`` OID (u64), ``L`` list (u32 count +
elements).
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

from ..core.obj import ObjectState
from ..core.oid import OID
from ..errors import StorageError

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")


def _encode_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise StorageError("string of %d bytes exceeds field limit" % len(raw))
    out += _U16.pack(len(raw))
    out += raw


def _decode_str(data: bytes, pos: int) -> Tuple[str, int]:
    (length,) = _U16.unpack_from(data, pos)
    pos += _U16.size
    return data[pos : pos + length].decode("utf-8"), pos + length


def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, OID):
        out += b"O"
        out += _U64.pack(value.value)
    elif isinstance(value, int):
        out += b"I"
        length = max(1, (value.bit_length() + 8) // 8)
        if length > 255:
            raise StorageError("integer too large to serialize")
        out.append(length)
        out += value.to_bytes(length, "big", signed=True)
    elif isinstance(value, float):
        out += b"D"
        out += _F64.pack(value)
    elif isinstance(value, str):
        out += b"S"
        raw = value.encode("utf-8")
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, bytes):
        out += b"B"
        out += _U32.pack(len(value))
        out += value
    elif isinstance(value, list):
        out += b"L"
        out += _U32.pack(len(value))
        for element in value:
            _encode_value(out, element)
    else:
        raise StorageError(
            "value %r of type %s is not storable" % (value, type(value).__name__)
        )


def _decode_value(data: bytes, pos: int) -> Tuple[Any, int]:
    tag = data[pos : pos + 1]
    pos += 1
    if tag == b"N":
        return None, pos
    if tag == b"T":
        return True, pos
    if tag == b"F":
        return False, pos
    if tag == b"O":
        (raw,) = _U64.unpack_from(data, pos)
        return OID(raw), pos + _U64.size
    if tag == b"I":
        length = data[pos]
        pos += 1
        return int.from_bytes(data[pos : pos + length], "big", signed=True), pos + length
    if tag == b"D":
        (raw_f,) = _F64.unpack_from(data, pos)
        return raw_f, pos + _F64.size
    if tag == b"S":
        (length,) = _U32.unpack_from(data, pos)
        pos += _U32.size
        return data[pos : pos + length].decode("utf-8"), pos + length
    if tag == b"B":
        (length,) = _U32.unpack_from(data, pos)
        pos += _U32.size
        return bytes(data[pos : pos + length]), pos + length
    if tag == b"L":
        (count,) = _U32.unpack_from(data, pos)
        pos += _U32.size
        items = []
        for _ in range(count):
            item, pos = _decode_value(data, pos)
            items.append(item)
        return items, pos
    raise StorageError("unknown value tag %r at offset %d" % (tag, pos - 1))


def encode_object(state: ObjectState) -> bytes:
    """Serialize an object state to bytes."""
    out = bytearray()
    out += _U64.pack(state.oid.value)
    _encode_str(out, state.class_name)
    names = sorted(state.values)
    if len(names) > 0xFFFF:
        raise StorageError("too many attributes to serialize")
    out += _U16.pack(len(names))
    for name in names:
        _encode_str(out, name)
        _encode_value(out, state.values[name])
    return bytes(out)


def decode_object(data: bytes) -> ObjectState:
    """Deserialize bytes produced by :func:`encode_object`."""
    try:
        (oid_raw,) = _U64.unpack_from(data, 0)
        pos = _U64.size
        class_name, pos = _decode_str(data, pos)
        (count,) = _U16.unpack_from(data, pos)
        pos += _U16.size
        values = {}
        for _ in range(count):
            name, pos = _decode_str(data, pos)
            value, pos = _decode_value(data, pos)
            values[name] = value
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise StorageError("corrupt object record: %s" % exc) from exc
    return ObjectState(OID(oid_raw, class_name), class_name, values)
