"""Page stores.

The bottom of the storage stack: fixed-size pages addressed by page id.
Two implementations share one interface — :class:`MemoryPager` for
ephemeral databases and tests, :class:`FilePager` for durable databases.
Both count physical reads and writes so experiments can report
deterministic I/O costs alongside wall-clock times.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from ..errors import StorageError
from ..faults import fsync_file, wrap_file
from ..obs.metrics import MetricsRegistry
from ..obs.waits import WaitProfiler

#: Default page size.  4 KiB matches the historical systems the paper
#: discusses and keeps fault counts meaningful at laptop scale.
DEFAULT_PAGE_SIZE = 4096


class PagerStats:
    """Physical I/O counters — a view over ``pager.*`` registry metrics.

    A pager created without a registry gets a private one, so
    directly-constructed pagers (tests) stay isolated while a pager
    inside a database shares the database-wide registry.
    """

    __slots__ = ("_reads", "_writes", "_allocations")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._reads = registry.counter("pager.reads")
        self._writes = registry.counter("pager.writes")
        self._allocations = registry.counter("pager.allocations")

    @property
    def reads(self) -> int:
        return self._reads.value

    @reads.setter
    def reads(self, value: int) -> None:
        self._reads.value = value

    @property
    def writes(self) -> int:
        return self._writes.value

    @writes.setter
    def writes(self, value: int) -> None:
        self._writes.value = value

    @property
    def allocations(self) -> int:
        return self._allocations.value

    @allocations.setter
    def allocations(self, value: int) -> None:
        self._allocations.value = value

    def reset(self) -> None:
        self._reads.reset()
        self._writes.reset()
        self._allocations.reset()

    def snapshot(self) -> Dict[str, int]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "allocations": self.allocations,
        }


class MemoryPager:
    """In-memory page store backing ephemeral databases."""

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if page_size < 128:
            raise StorageError("page size %d is too small" % page_size)
        self.page_size = page_size
        self._pages: Dict[int, bytes] = {}
        self._next_id = 0
        self.stats = PagerStats(registry)

    @property
    def page_count(self) -> int:
        return self._next_id

    def allocate(self) -> int:
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = bytes(self.page_size)
        self.stats._allocations.inc()
        return page_id

    def read_page(self, page_id: int) -> bytes:
        try:
            data = self._pages[page_id]
        except KeyError:
            raise StorageError("page %d does not exist" % page_id) from None
        self.stats._reads.inc()
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        if page_id not in self._pages:
            raise StorageError("page %d does not exist" % page_id)
        if len(data) != self.page_size:
            raise StorageError(
                "page write of %d bytes does not match page size %d"
                % (len(data), self.page_size)
            )
        self._pages[page_id] = bytes(data)
        self.stats._writes.inc()

    def sync(self) -> None:
        """No durability for memory pagers; present for interface parity."""

    def close(self) -> None:
        self._pages.clear()


class FilePager:
    """File-backed page store.

    Pages live at ``page_id * page_size`` offsets in a single file.  The
    first 16 bytes of the file form a tiny superblock holding a magic
    string and the page size so a reopened file validates its geometry;
    page 0 therefore starts at offset ``page_size`` (page ids are still
    dense from 0).
    """

    MAGIC = b"KIMDB1\x00\x00"
    HEADER_SIZE = 16

    def __init__(
        self,
        path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        registry: Optional[MetricsRegistry] = None,
        waits: Optional[WaitProfiler] = None,
    ) -> None:
        if page_size < 128:
            raise StorageError("page size %d is too small" % page_size)
        self.path = path
        self.page_size = page_size
        self.stats = PagerStats(registry)
        self._waits = waits
        exists = os.path.exists(path) and os.path.getsize(path) >= self.HEADER_SIZE
        mode = "r+b" if exists else "w+b"
        # Routed through the fault-injection layer: a no-op passthrough
        # unless a FaultPlan is installed (torture tests).
        self._file = wrap_file(open(path, mode), "pager:%s" % path, registry)
        if exists:
            self._validate_header()
            size = os.path.getsize(path)
            self._next_id = max(0, (size - self.HEADER_SIZE) // page_size)
        else:
            self._write_header()
            self._next_id = 0

    def _write_header(self) -> None:
        self._file.seek(0)
        header = self.MAGIC + self.page_size.to_bytes(8, "big")
        self._file.write(header)
        self._file.flush()

    def _validate_header(self) -> None:
        self._file.seek(0)
        header = self._file.read(self.HEADER_SIZE)
        if header[: len(self.MAGIC)] != self.MAGIC:
            raise StorageError("%s is not a kimdb page file" % self.path)
        stored_size = int.from_bytes(header[len(self.MAGIC) :], "big")
        if stored_size != self.page_size:
            raise StorageError(
                "%s was created with page size %d, opened with %d"
                % (self.path, stored_size, self.page_size)
            )

    @property
    def page_count(self) -> int:
        return self._next_id

    def _offset(self, page_id: int) -> int:
        return self.HEADER_SIZE + page_id * self.page_size

    def allocate(self) -> int:
        page_id = self._next_id
        self._next_id += 1
        self._file.seek(self._offset(page_id))
        self._file.write(bytes(self.page_size))
        self.stats._allocations.inc()
        return page_id

    def read_page(self, page_id: int) -> bytes:
        if not 0 <= page_id < self._next_id:
            raise StorageError("page %d does not exist" % page_id)
        started = time.perf_counter() if self._waits is not None else 0.0
        self._file.seek(self._offset(page_id))
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise StorageError("short read on page %d of %s" % (page_id, self.path))
        self.stats._reads.inc()
        if self._waits is not None:
            self._waits.record(
                "PageRead",
                time.perf_counter() - started,
                target="page:%d" % page_id,
            )
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        if not 0 <= page_id < self._next_id:
            raise StorageError("page %d does not exist" % page_id)
        if len(data) != self.page_size:
            raise StorageError(
                "page write of %d bytes does not match page size %d"
                % (len(data), self.page_size)
            )
        started = time.perf_counter() if self._waits is not None else 0.0
        self._file.seek(self._offset(page_id))
        self._file.write(data)
        self.stats._writes.inc()
        if self._waits is not None:
            self._waits.record(
                "PageWrite",
                time.perf_counter() - started,
                target="page:%d" % page_id,
            )

    def sync(self) -> None:
        self._file.flush()
        fsync_file(self._file)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def open_pager(
    path: Optional[str],
    page_size: int = DEFAULT_PAGE_SIZE,
    registry: Optional[MetricsRegistry] = None,
    waits: Optional[WaitProfiler] = None,
):
    """Factory: memory pager when ``path`` is None, file pager otherwise.

    Only the file pager reports ``PageRead``/``PageWrite`` wait events —
    a memory pager's dict lookup is not a wait.
    """
    if path is None:
        return MemoryPager(page_size, registry)
    return FilePager(path, page_size, registry, waits)
