"""kimdb — an object-oriented database system.

A complete, from-scratch reproduction of the system described in Won
Kim's *Research Directions in Object-Oriented Database Systems* (PODS
1990): the core object-oriented data model (objects, classes, multiple
inheritance, message passing with late binding), an OQL query language
with class-hierarchy scoping and nested (path) predicates, class-
hierarchy and nested-attribute indexes, a slotted-page storage engine
with buffer management and physical clustering, ACID transactions with
hierarchical locking and WAL recovery, long-duration checkout/checkin
workspaces, pointer swizzling for memory-resident object management,
versions with change notification, composite objects, schema evolution,
authorization, views, deductive rules, abstract data types, and a
multidatabase federation layer over relational and hierarchical
baselines.

Quickstart::

    from repro import Database, AttributeDef

    db = Database()
    db.define_class("Company", attributes=[
        AttributeDef("name", "String"), AttributeDef("location", "String"),
    ])
    db.define_class("Vehicle", attributes=[
        AttributeDef("weight", "Integer"),
        AttributeDef("manufacturer", "Company"),
    ])
    gm = db.new("Company", {"name": "GM", "location": "Detroit"})
    db.new("Vehicle", {"weight": 8000, "manufacturer": gm.oid})
    heavy = db.select(
        "SELECT v FROM Vehicle v "
        "WHERE v.weight > 7500 AND v.manufacturer.location = 'Detroit'"
    )
"""

from .analysis import Diagnostic, DiagnosticReport, SemanticAnalyzer
from .core.attribute import AttributeDef
from .core.klass import ClassDef
from .core.method import MethodDef, method
from .core.obj import ObjectHandle, ObjectState
from .core.oid import OID
from .core.schema import Schema
from .database import Database
from .errors import KimDBError, QuerySyntaxError, SemanticError
from .query.parser import parse_query

__version__ = "1.0.0"

__all__ = [
    "AttributeDef",
    "ClassDef",
    "MethodDef",
    "method",
    "ObjectHandle",
    "ObjectState",
    "OID",
    "Schema",
    "Database",
    "Diagnostic",
    "DiagnosticReport",
    "SemanticAnalyzer",
    "KimDBError",
    "QuerySyntaxError",
    "SemanticError",
    "parse_query",
    "__version__",
]
