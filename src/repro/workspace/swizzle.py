"""Pointer swizzling: memory-resident objects à la LOOM/ORION.

Section 3.3: "A much better solution is to store logical object
identifiers within the objects in the database, and convert them to
memory pointers to related objects ... as an object is fetched from the
database, the object identifiers embedded in the object are converted to
memory pointers that will point to some descriptors for the objects that
the object references.  The referenced objects may later be fetched as
necessary."

A :class:`MemoryObject` is the in-memory form; its reference attributes
hold either direct pointers to other resident memory objects or
:class:`Fault` descriptors that load on first traversal.  After the first
traversal the pointer is direct — subsequent accesses are "a few memory
lookups" (the order-of-magnitude claim of Section 4.2, experiment E5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from ..core.oid import OID
from ..errors import ObjectNotFoundError

if TYPE_CHECKING:  # pragma: no cover
    from .cache import ObjectWorkspace


class Fault:
    """A descriptor standing in for a not-yet-resident object."""

    __slots__ = ("oid", "workspace")

    def __init__(self, oid: OID, workspace: "ObjectWorkspace") -> None:
        self.oid = oid
        self.workspace = workspace

    def resolve(self) -> "MemoryObject":
        return self.workspace.load(self.oid)

    def __repr__(self) -> str:
        return "<Fault %r>" % (self.oid,)


Pointer = Union["MemoryObject", Fault, OID]


class MemoryObject:
    """The memory-resident form of one object.

    Primitive attribute values are stored directly; reference attributes
    are swizzled to pointers (:class:`MemoryObject` once resident,
    :class:`Fault` before).  Mutations mark the object dirty; the
    workspace writes dirty objects back through the database, so the full
    database machinery (validation, indexes, WAL) still applies — the
    paper's point that memory-resident management *extends* database
    capabilities rather than bypassing them.
    """

    __slots__ = ("oid", "class_name", "values", "dirty", "_workspace")

    def __init__(
        self,
        oid: OID,
        class_name: str,
        values: Dict[str, Any],
        workspace: "ObjectWorkspace",
    ) -> None:
        self.oid = oid
        self.class_name = class_name
        self.values = values
        self.dirty = False
        self._workspace = workspace

    # -- reads ---------------------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        return self.values.get(name)

    def get(self, name: str, default: Any = None) -> Any:
        value = self.values.get(name)
        return default if value is None else value

    def ref(self, name: str) -> Optional["MemoryObject"]:
        """Traverse one reference attribute, faulting if necessary.

        After the fault, the slot holds a direct pointer, so the next
        ``ref`` on the same slot is a plain attribute read.
        """
        value = self.values.get(name)
        if type(value) is MemoryObject:  # hot path: already a pointer
            return value
        resolved = self._resolve(value)
        if resolved is not value and not isinstance(value, list):
            self.values[name] = resolved  # install the direct pointer
        return resolved if isinstance(resolved, MemoryObject) else None

    def refs(self, name: str) -> List["MemoryObject"]:
        """Traverse a set-valued reference attribute."""
        value = self.values.get(name)
        if not isinstance(value, list):
            single = self.ref(name)
            return [single] if single is not None else []
        out: List[MemoryObject] = []
        for position, element in enumerate(value):
            if type(element) is MemoryObject:  # hot path
                out.append(element)
                continue
            resolved = self._resolve(element)
            if isinstance(resolved, MemoryObject):
                value[position] = resolved
                out.append(resolved)
        return out

    def _pending_refs(self) -> List[OID]:
        """OIDs of referenced objects not yet resolved to pointers."""
        out: List[OID] = []
        for value in self.values.values():
            if isinstance(value, (Fault, OID)):
                out.append(value.oid if isinstance(value, Fault) else value)
            elif isinstance(value, list):
                for element in value:
                    if isinstance(element, (Fault, OID)):
                        out.append(
                            element.oid if isinstance(element, Fault) else element
                        )
        return out

    def _resolve(self, value: Any) -> Any:
        if isinstance(value, MemoryObject):
            return value
        if isinstance(value, Fault):
            try:
                return value.resolve()
            except ObjectNotFoundError:
                return None
        if isinstance(value, OID):
            try:
                return self._workspace.load(value)
            except ObjectNotFoundError:
                return None
        return value

    # -- writes ----------------------------------------------------------------

    def set(self, name: str, value: Any) -> None:
        """Local update; persisted at workspace flush."""
        self.values[name] = value
        self.dirty = True

    # -- unswizzling ----------------------------------------------------------

    def to_state_values(self) -> Dict[str, Any]:
        """Convert back to storable values (pointers -> OIDs)."""
        out: Dict[str, Any] = {}
        for name, value in self.values.items():
            out[name] = _unswizzle(value)
        return out

    def __repr__(self) -> str:
        return "<MemoryObject %s %r%s>" % (
            self.class_name,
            self.oid,
            " dirty" if self.dirty else "",
        )


def _unswizzle(value: Any) -> Any:
    if isinstance(value, MemoryObject):
        return value.oid
    if isinstance(value, Fault):
        return value.oid
    if isinstance(value, list):
        return [_unswizzle(element) for element in value]
    return value
