"""Memory-resident object management (pointer swizzling, object cache)."""

from .cache import ObjectWorkspace, WorkspaceStats
from .swizzle import Fault, MemoryObject

__all__ = ["ObjectWorkspace", "WorkspaceStats", "Fault", "MemoryObject"]
