"""The object workspace: a virtual-memory object cache over a database.

"Object-oriented database systems which manage memory-resident objects
extend the capabilities of database systems to the virtual-memory
workspace for the applications" (Section 3.3).  The workspace loads
objects once, swizzles their references, serves repeated traversals from
memory, and writes dirty objects back through the database at flush so
queries, indexing and recovery remain correct.

Swizzling policies (the E5 ablation):

* ``"lazy"``  — references become :class:`~repro.workspace.swizzle.Fault`
  descriptors; the referenced object loads on first traversal (LOOM).
* ``"eager"`` — loading an object immediately loads the objects it
  references (one level; the closure materializes as a traversal runs).
* ``"none"``  — references stay OIDs and every traversal goes back
  through the database layer (the unswizzled baseline).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set

from ..core.oid import OID
from ..errors import KimDBError
from ..obs.metrics import MetricsRegistry
from .swizzle import Fault, MemoryObject

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database

_POLICIES = ("lazy", "eager", "none")


class WorkspaceStats:
    """Swizzle-cache counters — a view over ``workspace.*`` metrics.

    Each workspace owns a private registry (``workspace.metrics``):
    workspaces are per-application caches, and the E5 ablation compares
    several of them over one database, so their counts must not mix in
    the database-wide registry.
    """

    __slots__ = ("_loads", "_hits", "_faults", "_writebacks")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._loads = registry.counter("workspace.loads")
        self._hits = registry.counter("workspace.hits")
        self._faults = registry.counter("workspace.faults")
        self._writebacks = registry.counter("workspace.writebacks")
        registry.derived("workspace.hit_rate", lambda: self.hit_rate)

    @property
    def loads(self) -> int:
        return self._loads.value

    @loads.setter
    def loads(self, value: int) -> None:
        self._loads.value = value

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def faults(self) -> int:
        return self._faults.value

    @faults.setter
    def faults(self, value: int) -> None:
        self._faults.value = value

    @property
    def writebacks(self) -> int:
        return self._writebacks.value

    @writebacks.setter
    def writebacks(self, value: int) -> None:
        self._writebacks.value = value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.faults
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self._loads.reset()
        self._hits.reset()
        self._faults.reset()
        self._writebacks.reset()


class ObjectWorkspace:
    """An application's private cache of memory-resident objects."""

    def __init__(self, db: "Database", policy: str = "lazy") -> None:
        if policy not in _POLICIES:
            raise KimDBError(
                "unknown swizzling policy %r (expected one of %s)"
                % (policy, ", ".join(_POLICIES))
            )
        self.db = db
        self.policy = policy
        self._resident: Dict[OID, MemoryObject] = {}
        self.metrics = MetricsRegistry()
        self.stats = WorkspaceStats(self.metrics)

    # -- loading ------------------------------------------------------------

    def __contains__(self, oid: OID) -> bool:
        return oid in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def load(self, oid: OID) -> MemoryObject:
        """Fetch an object into the workspace (cache hit if resident).

        Under the eager policy, loading pulls the referenced objects in
        iteratively (breadth-first), so arbitrarily deep reference chains
        never hit the interpreter's recursion limit.
        """
        resident = self._resident.get(oid)
        if resident is not None:
            self.stats._hits.inc()
            return resident
        memory_object = self._admit(oid)
        if self.policy == "eager":
            queue = [memory_object]
            while queue:
                for referenced in queue.pop()._pending_refs():
                    if referenced not in self._resident and self.db.exists(referenced):
                        queue.append(self._admit(referenced))
        return memory_object

    def _admit(self, oid: OID) -> MemoryObject:
        self.stats._faults.inc()
        state = self.db.get_state(oid)
        self.stats._loads.inc()
        memory_object = MemoryObject(state.oid, state.class_name, dict(state.values), self)
        self._resident[oid] = memory_object
        if self.policy != "none":
            self._swizzle(memory_object)
        return memory_object

    def load_many(self, oids: Iterable[OID]) -> List[MemoryObject]:
        return [self.load(oid) for oid in oids]

    def _swizzle(self, memory_object: MemoryObject) -> None:
        """Convert embedded OIDs to pointers/descriptors."""
        for name, value in list(memory_object.values.items()):
            if isinstance(value, OID):
                memory_object.values[name] = self._pointer_for(value)
            elif isinstance(value, list):
                memory_object.values[name] = [
                    self._pointer_for(element) if isinstance(element, OID) else element
                    for element in value
                ]

    def _pointer_for(self, oid: OID):
        resident = self._resident.get(oid)
        if resident is not None:
            return resident
        return Fault(oid, self)

    # -- traversal helpers -----------------------------------------------------

    def closure(
        self,
        roots: Iterable[OID],
        attributes: Iterable[str],
        max_depth: Optional[int] = None,
    ) -> List[MemoryObject]:
        """Transitive closure through the named reference attributes.

        The CAx access pattern of the paper: "traverse a large collection
        of objects, recursively from one object to other objects related
        to it."  Returns objects in first-visit order.
        """
        attribute_list = list(attributes)
        visited: Set[OID] = set()
        order: List[MemoryObject] = []
        frontier = [(self.load(oid), 0) for oid in roots]
        while frontier:
            memory_object, depth = frontier.pop()
            if memory_object.oid in visited:
                continue
            visited.add(memory_object.oid)
            order.append(memory_object)
            if max_depth is not None and depth >= max_depth:
                continue
            for attr in attribute_list:
                for neighbour in memory_object.refs(attr):
                    if neighbour.oid not in visited:
                        frontier.append((neighbour, depth + 1))
        return order

    # -- write-back --------------------------------------------------------------

    def dirty_objects(self) -> List[MemoryObject]:
        return [obj for obj in self._resident.values() if obj.dirty]

    def flush(self) -> int:
        """Write all dirty objects back through the database.

        Runs in one transaction so a workspace flush is atomic.  Returns
        the number of objects written.
        """
        dirty = self.dirty_objects()
        if not dirty:
            return 0
        with self.db._auto_txn():
            for memory_object in dirty:
                self.db.update(memory_object.oid, memory_object.to_state_values())
                memory_object.dirty = False
                self.stats._writebacks.inc()
        return len(dirty)

    def evict(self, oid: OID) -> None:
        """Drop one object (must not be dirty)."""
        memory_object = self._resident.get(oid)
        if memory_object is None:
            return
        if memory_object.dirty:
            raise KimDBError("cannot evict dirty object %r; flush first" % (oid,))
        del self._resident[oid]

    def clear(self) -> None:
        """Drop everything (dirty objects lose their local edits)."""
        self._resident.clear()

    def __repr__(self) -> str:
        return "<ObjectWorkspace %s: %d resident, %d dirty>" % (
            self.policy,
            len(self._resident),
            len(self.dirty_objects()),
        )
