"""The temporal dimension of data (Section 2.2).

The paper lists "the concept of temporal evolution of data (i.e.,
temporal dimension of data, and versioning of data)" among the
post-relational requirements.  Versioning is covered by
:mod:`repro.versions`; this module adds *transaction-time* history:
every mutation appends a (tick, state) entry to the object's history, so
past states and past extents can be queried "as of" any point.

Ticks are a monotonically increasing logical clock (one per mutation),
which keeps replays deterministic; callers map ticks to wall-clock time
at a higher layer if they need to.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..core.obj import ObjectState
from ..core.oid import OID
from ..errors import KimDBError

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database


class HistoryEntry:
    """One temporal version: the state written at ``tick`` (None = deleted)."""

    __slots__ = ("tick", "state")

    def __init__(self, tick: int, state: Optional[ObjectState]) -> None:
        self.tick = tick
        self.state = state

    def __repr__(self) -> str:
        kind = "delete" if self.state is None else "write"
        return "<HistoryEntry t=%d %s>" % (self.tick, kind)


class TemporalManager:
    """Transaction-time history recorder and as-of reader."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        self._clock = 0
        self._history: Dict[OID, List[HistoryEntry]] = {}
        #: class name -> OIDs that ever existed in it.
        self._ever: Dict[str, set] = {}
        db.add_post_hook(self._post_hook)

    # -- recording ----------------------------------------------------------

    def _post_hook(self, kind: str, old, new) -> None:
        self._clock += 1
        if kind == "delete":
            self._history.setdefault(old.oid, []).append(
                HistoryEntry(self._clock, None)
            )
            return
        state = new.copy()
        self._history.setdefault(state.oid, []).append(
            HistoryEntry(self._clock, state)
        )
        self._ever.setdefault(state.class_name, set()).add(state.oid)

    @property
    def now(self) -> int:
        """The current logical tick."""
        return self._clock

    # -- point queries -----------------------------------------------------------

    def history_of(self, oid: OID) -> List[HistoryEntry]:
        """Full history of one object, oldest first."""
        return list(self._history.get(oid, ()))

    def as_of(self, oid: OID, tick: int) -> Optional[ObjectState]:
        """The state of an object as of ``tick`` (None if not alive then)."""
        latest: Optional[ObjectState] = None
        for entry in self._history.get(oid, ()):
            if entry.tick > tick:
                break
            latest = entry.state
        return latest.copy() if latest is not None else None

    def value_as_of(self, oid: OID, attribute: str, tick: int) -> Any:
        state = self.as_of(oid, tick)
        if state is None:
            raise KimDBError("object %r was not alive at tick %d" % (oid, tick))
        return state.values.get(attribute)

    def lifetime_of(self, oid: OID) -> Tuple[Optional[int], Optional[int]]:
        """(birth tick, death tick) — death is None while alive."""
        entries = self._history.get(oid)
        if not entries:
            return None, None
        birth = entries[0].tick
        death = entries[-1].tick if entries[-1].state is None else None
        return birth, death

    # -- extent queries ------------------------------------------------------------

    def extent_as_of(self, class_name: str, tick: int, hierarchy: bool = True) -> List[OID]:
        """OIDs alive as direct/hierarchy instances of a class at ``tick``."""
        classes = (
            self.db.schema.hierarchy_of(class_name) if hierarchy else [class_name]
        )
        out = []
        for cls in classes:
            for oid in self._ever.get(cls, ()):
                state = self.as_of(oid, tick)
                if state is not None and state.class_name == cls:
                    out.append(oid)
        return sorted(out)

    def changed_between(self, low: int, high: int) -> List[OID]:
        """Objects written or deleted in the (low, high] tick interval."""
        out = set()
        for oid, entries in self._history.items():
            for entry in entries:
                if low < entry.tick <= high:
                    out.add(oid)
                    break
        return sorted(out)

    def snapshot_count(self) -> int:
        return sum(len(entries) for entries in self._history.values())


def attach_temporal(db: "Database") -> TemporalManager:
    manager = TemporalManager(db)
    db.temporal = manager
    return manager
