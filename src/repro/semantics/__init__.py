"""Semantic modeling extensions: roles [PERN90], temporal data."""

from .roles import RoleManager, attach_roles
from .temporal import HistoryEntry, TemporalManager, attach_temporal

__all__ = [
    "RoleManager",
    "attach_roles",
    "HistoryEntry",
    "TemporalManager",
    "attach_temporal",
]
