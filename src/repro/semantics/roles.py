"""Objects with roles [PERN90].

Section 5.4 names role modeling "a worthy example" of semantic concepts
beyond the core model: the same real-world entity (a person) plays
several roles (employee, customer, club member) with role-specific
state, acquired and abandoned dynamically — which a single-class
instance (core concept 3) cannot express directly.

kimdb models a role as a system-managed *role object* linked to its
player: the player keeps its one class and identity, each role is an
instance of a role class holding the role's attributes plus a ``player``
reference.  The manager adds and drops roles at run time, dispatches
attribute access across the player and its roles, and answers
role-scoped queries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from ..core.attribute import AttributeDef
from ..core.oid import OID
from ..errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database

#: Suffix used for generated role classes.
ROLE_CLASS_SUFFIX = "Role"


class RoleManager:
    """Dynamic roles over stored objects."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        #: role name -> (role class name, player class name)
        self._roles: Dict[str, tuple] = {}
        db.add_post_hook(self._post_hook)

    # -- definition ---------------------------------------------------------

    def define_role(
        self,
        name: str,
        player_class: str,
        attributes: Sequence[AttributeDef] = (),
    ) -> str:
        """Declare a role playable by instances of ``player_class``.

        Creates the backing role class ``<name>Role`` with the given
        attributes plus the system ``player`` reference.  Returns the
        role class name.
        """
        if name in self._roles:
            raise SchemaError("role %r is already defined" % (name,))
        self.db.schema.get_class(player_class)
        role_class = name + ROLE_CLASS_SUFFIX
        self.db.define_class(
            role_class,
            attributes=list(attributes)
            + [AttributeDef("player", player_class, required=True)],
            doc="Role object for the %r role of %s." % (name, player_class),
        )
        self._roles[name] = (role_class, player_class)
        return role_class

    def role_names(self) -> List[str]:
        return sorted(self._roles)

    def _entry(self, name: str) -> tuple:
        entry = self._roles.get(name)
        if entry is None:
            raise SchemaError("no role named %r" % (name,))
        return entry

    # -- play / abandon ---------------------------------------------------------

    def add_role(self, player: OID, name: str, values: Optional[Dict[str, Any]] = None) -> OID:
        """Make ``player`` start playing a role; returns the role object."""
        role_class, player_class = self._entry(name)
        if not self.db.schema.is_subclass(self.db.class_of(player), player_class):
            raise SchemaError(
                "object %r is a %s and cannot play role %r (needs %s)"
                % (player, self.db.class_of(player), name, player_class)
            )
        if self.role_of(player, name) is not None:
            raise SchemaError("object %r already plays role %r" % (player, name))
        values = dict(values or {})
        values["player"] = player
        return self.db.new(role_class, values).oid

    def drop_role(self, player: OID, name: str) -> None:
        role_oid = self.role_of(player, name)
        if role_oid is None:
            raise SchemaError("object %r does not play role %r" % (player, name))
        self.db.delete(role_oid)

    def _post_hook(self, kind: str, old, new) -> None:
        """Deleting a player cascades to its role objects."""
        if kind != "delete":
            return
        if old.class_name.endswith(ROLE_CLASS_SUFFIX):
            return
        for name in list(self._roles):
            role_oid = self.role_of(old.oid, name)
            if role_oid is not None and self.db.exists(role_oid):
                self.db.delete(role_oid)

    # -- access ---------------------------------------------------------------------

    def role_of(self, player: OID, name: str) -> Optional[OID]:
        """The role object through which ``player`` plays ``name``."""
        role_class, _player_class = self._entry(name)
        for state in self.db.storage.scan_class(role_class):
            if state.values.get("player") == player:
                return state.oid
        return None

    def roles_of(self, player: OID) -> List[str]:
        """All roles the object currently plays, sorted."""
        return [
            name for name in self.role_names() if self.role_of(player, name) is not None
        ]

    def plays(self, player: OID, name: str) -> bool:
        return self.role_of(player, name) is not None

    def get(self, player: OID, name: str, attribute: str) -> Any:
        """Read a role attribute of a player."""
        role_oid = self.role_of(player, name)
        if role_oid is None:
            raise SchemaError("object %r does not play role %r" % (player, name))
        return self.db.get(role_oid)[attribute]

    def set(self, player: OID, name: str, changes: Dict[str, Any]) -> None:
        """Update role attributes of a player."""
        role_oid = self.role_of(player, name)
        if role_oid is None:
            raise SchemaError("object %r does not play role %r" % (player, name))
        self.db.update(role_oid, changes)

    def players(self, name: str) -> List[OID]:
        """All objects currently playing a role, sorted by OID."""
        role_class, _player_class = self._entry(name)
        return sorted(
            state.values["player"]
            for state in self.db.storage.scan_class(role_class)
            if isinstance(state.values.get("player"), OID)
        )

    def query_role(self, name: str, where: str = "") -> List[OID]:
        """Players whose role object satisfies an OQL predicate tail.

        ``where`` uses the variable ``r`` over the role class, e.g.
        ``"r.salary > 50000"``.  Returns player OIDs.
        """
        role_class, _player_class = self._entry(name)
        text = "SELECT r FROM %s r" % role_class
        if where:
            text += " WHERE " + where
        out = []
        for handle in self.db.select(text):
            player = handle["player"]
            if isinstance(player, OID):
                out.append(player)
        return sorted(out)


def attach_roles(db: "Database") -> RoleManager:
    manager = RoleManager(db)
    db.roles = manager
    return manager
