"""Deductive capabilities: rules, inference, truth maintenance."""

from .engine import ClassMapping, Fact, Literal, Rule, RuleEngine, Var, fact, rule
from .truth import Contradiction, TruthMaintenance

__all__ = [
    "ClassMapping",
    "Fact",
    "Literal",
    "Rule",
    "RuleEngine",
    "Var",
    "fact",
    "rule",
    "Contradiction",
    "TruthMaintenance",
]
