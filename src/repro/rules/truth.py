"""Truth maintenance and contradiction resolution (Section 5.4).

"An object-oriented database system will become a deductive
object-oriented database system once it can directly support rules and
various reasoning concepts, such as truth maintenance and contradiction
resolution."

:class:`TruthMaintenance` wraps a rule engine:

* ``why(fact)`` explains a derived fact by its justification tree;
* retracting a base fact automatically withdraws every derivation that
  no longer has independent support (implemented by recomputing the
  fixpoint — monotone datalog makes this exact);
* contradiction pairs (``p`` vs ``not_p``) are declared up front; after
  inference, conflicting fact pairs are detected and resolved by the
  configured strategy.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..errors import RuleError
from .engine import Fact, RuleEngine, fact


class Contradiction:
    """A detected conflict: the same arguments in both predicates."""

    __slots__ = ("positive", "negative", "args")

    def __init__(self, positive: Fact, negative: Fact) -> None:
        self.positive = positive
        self.negative = negative
        self.args = positive[1]

    def __repr__(self) -> str:
        return "<Contradiction %r vs %r>" % (self.positive, self.negative)


class TruthMaintenance:
    """Justification bookkeeping + contradiction detection/resolution."""

    #: Resolution strategies: raise, report (collect), or prefer one side.
    STRATEGIES = ("raise", "report", "prefer_positive", "prefer_negative")

    def __init__(self, engine: RuleEngine, strategy: str = "raise") -> None:
        if strategy not in self.STRATEGIES:
            raise RuleError(
                "unknown contradiction strategy %r (expected one of %s)"
                % (strategy, ", ".join(self.STRATEGIES))
            )
        self.engine = engine
        self.strategy = strategy
        self._contradiction_pairs: List[Tuple[str, str]] = []
        self.detected: List[Contradiction] = []
        #: Facts suppressed by a prefer_* resolution.
        self.suppressed: Set[Fact] = set()

    # -- declarations ----------------------------------------------------------

    def declare_contradiction(self, positive_pred: str, negative_pred: str) -> None:
        self._contradiction_pairs.append((positive_pred, negative_pred))

    # -- explanation ------------------------------------------------------------

    def why(self, predicate: str, *args: Any) -> List[Tuple[str, List[Fact]]]:
        """Justifications of a fact: (rule name, supporting facts) pairs.

        Base facts return an empty list (they are self-justifying);
        unknown facts raise.
        """
        if not self.engine._fresh:
            self.engine.infer()
        goal = fact(predicate, *args)
        if goal not in self.engine._all_known:
            raise RuleError("fact %r is not known" % (goal,))
        entries = self.engine.justifications.get(goal, [])
        return [(name, sorted(support, key=repr)) for name, support in entries]

    def support_closure(self, predicate: str, *args: Any) -> Set[Fact]:
        """All base facts a derived fact ultimately rests on."""
        if not self.engine._fresh:
            self.engine.infer()
        goal = fact(predicate, *args)
        closure: Set[Fact] = set()
        frontier = [goal]
        seen: Set[Fact] = set()
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            entries = self.engine.justifications.get(current)
            if not entries:
                closure.add(current)  # base (or mapped) fact
                continue
            _name, support = entries[0]
            frontier.extend(support)
        closure.discard(goal)
        return closure

    # -- retraction (truth maintenance proper) ------------------------------------

    def retract(self, predicate: str, *args: Any) -> Set[Fact]:
        """Retract a base fact; returns the derived facts that fell out."""
        before = set(self.engine._derived) if self.engine._fresh else self.engine.infer()
        removed = self.engine.retract_fact(predicate, *args)
        if not removed:
            raise RuleError("fact %s%r is not a base fact" % (predicate, args))
        after = self.engine.infer()
        return before - after

    # -- contradictions ---------------------------------------------------------------

    def check(self) -> List[Contradiction]:
        """Detect (and per strategy resolve) contradictions."""
        if not self.engine._fresh:
            self.engine.infer()
        self.detected = []
        known = self.engine._all_known
        by_pred: Dict[str, Set[Fact]] = {}
        for entry in known:
            by_pred.setdefault(entry[0], set()).add(entry)
        for positive_pred, negative_pred in self._contradiction_pairs:
            negatives = {entry[1]: entry for entry in by_pred.get(negative_pred, ())}
            for positive in by_pred.get(positive_pred, ()):
                negative = negatives.get(positive[1])
                if negative is not None:
                    self.detected.append(Contradiction(positive, negative))
        if not self.detected:
            return []
        if self.strategy == "raise":
            first = self.detected[0]
            raise RuleError(
                "contradiction: %r and %r both hold (supports: %s / %s)"
                % (
                    first.positive,
                    first.negative,
                    sorted(self.support_closure(*_split(first.positive)), key=repr),
                    sorted(self.support_closure(*_split(first.negative)), key=repr),
                )
            )
        if self.strategy in ("prefer_positive", "prefer_negative"):
            for conflict in self.detected:
                loser = (
                    conflict.negative
                    if self.strategy == "prefer_positive"
                    else conflict.positive
                )
                self.suppressed.add(loser)
                self.engine._all_known.discard(loser)
                self.engine._derived.discard(loser)
        return list(self.detected)


def _split(entry: Fact):
    return (entry[0],) + entry[1]
