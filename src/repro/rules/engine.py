"""Deductive capabilities (Section 5.4).

A datalog-flavoured rule engine over objects: base facts come from
explicit assertions or from *class mappings* that project stored objects
into predicates (the [BALL88] coupling of a rule system with an OODB).
Inference is semi-naive forward chaining to fixpoint with stratified
negation; a backward-chaining prover handles goal-directed queries.
Every derivation is recorded as a justification, feeding the truth
maintenance and contradiction machinery in :mod:`repro.rules.truth`.

Terms: constants are arbitrary hashable values (OIDs included); variables
are :class:`Var` instances or strings starting with ``?``.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import RuleError

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database


class Var:
    """A logic variable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))

    def __repr__(self) -> str:
        return "?%s" % self.name


def _term(value: Any) -> Any:
    """Convenience: strings beginning with '?' become variables."""
    if isinstance(value, str) and value.startswith("?") and len(value) > 1:
        return Var(value[1:])
    return value


Fact = Tuple[str, Tuple[Any, ...]]


def fact(predicate: str, *args: Any) -> Fact:
    return (predicate, tuple(args))


class Literal:
    """One body element of a rule: an atom, possibly negated."""

    __slots__ = ("predicate", "terms", "negated")

    def __init__(self, predicate: str, terms: Sequence[Any], negated: bool = False) -> None:
        self.predicate = predicate
        self.terms = tuple(_term(t) for t in terms)
        self.negated = negated

    def variables(self) -> Set[Var]:
        return {t for t in self.terms if isinstance(t, Var)}

    def __repr__(self) -> str:
        text = "%s(%s)" % (self.predicate, ", ".join(repr(t) for t in self.terms))
        return "not " + text if self.negated else text


class Rule:
    """``head :- body``; safety-checked at construction."""

    __slots__ = ("head", "body", "name")

    def __init__(self, head: Literal, body: Sequence[Literal], name: str = "") -> None:
        if head.negated:
            raise RuleError("rule heads may not be negated")
        positive_vars: Set[Var] = set()
        for literal in body:
            if not literal.negated:
                positive_vars |= literal.variables()
        unsafe = head.variables() - positive_vars
        if unsafe:
            raise RuleError(
                "unsafe rule: head variables %s not bound by a positive body literal"
                % sorted(v.name for v in unsafe)
            )
        for literal in body:
            if literal.negated and literal.variables() - positive_vars:
                raise RuleError(
                    "unsafe negation in %r: variables must be bound positively"
                    % (literal,)
                )
        self.head = head
        self.body = list(body)
        self.name = name or "rule_%s" % head.predicate

    def __repr__(self) -> str:
        return "<%s: %r :- %s>" % (
            self.name,
            self.head,
            ", ".join(repr(l) for l in self.body),
        )


def rule(head_pred: str, head_terms: Sequence[Any], *body: Tuple, name: str = "") -> Rule:
    """Builder: ``rule("anc", ["?x","?z"], ("par", ["?x","?y"]), ...)``.

    Body tuples are ``(predicate, terms)`` or ``(predicate, terms, "not")``.
    """
    literals = []
    for element in body:
        negated = len(element) == 3 and element[2] == "not"
        literals.append(Literal(element[0], element[1], negated))
    return Rule(Literal(head_pred, head_terms), literals, name=name)


class ClassMapping:
    """Projects instances of a class into base facts.

    ``predicate(oid, attr1_value, attr2_value, ...)`` for every instance
    in the hierarchy of ``class_name``.
    """

    __slots__ = ("predicate", "class_name", "attributes")

    def __init__(self, predicate: str, class_name: str, attributes: Sequence[str]) -> None:
        self.predicate = predicate
        self.class_name = class_name
        self.attributes = list(attributes)


class RuleEngine:
    """Forward/backward inference with justification recording."""

    def __init__(self, db: Optional["Database"] = None) -> None:
        self.db = db
        self._base: Set[Fact] = set()
        self._rules: List[Rule] = []
        self._mappings: List[ClassMapping] = []
        #: derived fact -> list of (rule name, frozenset of supporting facts)
        self.justifications: Dict[Fact, List[Tuple[str, FrozenSet[Fact]]]] = {}
        self._derived: Set[Fact] = set()
        self._fresh = False

    # -- knowledge base ------------------------------------------------------

    def assert_fact(self, predicate: str, *args: Any) -> Fact:
        entry = fact(predicate, *args)
        self._base.add(entry)
        self._fresh = False
        return entry

    def retract_fact(self, predicate: str, *args: Any) -> bool:
        entry = fact(predicate, *args)
        present = entry in self._base
        self._base.discard(entry)
        self._fresh = False  # truth maintenance: derived facts recomputed
        return present

    def add_rule(self, new_rule: Rule) -> None:
        self._rules.append(new_rule)
        self._fresh = False

    def map_class(self, predicate: str, class_name: str, attributes: Sequence[str]) -> None:
        """Register a class-to-predicate projection (requires a database)."""
        if self.db is None:
            raise RuleError("class mappings require a database-bound engine")
        self.db.schema.get_class(class_name)
        for attr in attributes:
            self.db.schema.attribute(class_name, attr)
        self._mappings.append(ClassMapping(predicate, class_name, attributes))
        self._fresh = False

    def _mapped_facts(self) -> Iterable[Fact]:
        for mapping in self._mappings:
            for cls in self.db.schema.hierarchy_of(mapping.class_name):
                for state in self.db.storage.scan_class(cls):
                    args: List[Any] = [state.oid]
                    for attr in mapping.attributes:
                        args.append(state.values.get(attr))
                    yield fact(mapping.predicate, *args)

    # -- stratification -----------------------------------------------------------

    def _strata_of(self, rules: List[Rule]) -> List[List[Rule]]:
        """Order rules into strata; negative dependencies must not cycle."""
        predicates = {r.head.predicate for r in rules}
        stratum: Dict[str, int] = {p: 0 for p in predicates}
        changed = True
        iterations = 0
        limit = (len(predicates) + 1) * (len(rules) + 1) + 1
        while changed:
            changed = False
            iterations += 1
            if iterations > limit:
                raise RuleError(
                    "rules are not stratifiable (negation through recursion)"
                )
            for r in rules:
                head = r.head.predicate
                for literal in r.body:
                    if literal.predicate not in stratum:
                        continue
                    needed = stratum[literal.predicate] + (1 if literal.negated else 0)
                    if stratum[head] < needed:
                        stratum[head] = needed
                        changed = True
        levels: Dict[int, List[Rule]] = {}
        for r in rules:
            levels.setdefault(stratum[r.head.predicate], []).append(r)
        return [levels[level] for level in sorted(levels)]

    # -- forward chaining -------------------------------------------------------------

    def infer(self) -> Set[Fact]:
        """Run to fixpoint; returns the set of derived (non-base) facts."""
        base: Set[Fact] = set(self._base)
        if self.db is not None:
            base |= set(self._mapped_facts())
        known, derived, justifications = self._fixpoint(base, self._rules)
        self.justifications = justifications
        self._derived = derived
        self._all_known = known
        self._fresh = True
        return set(self._derived)

    def _fixpoint(self, base_facts: Set[Fact], rules: List[Rule]):
        """Semi-naive evaluation of ``rules`` over ``base_facts``."""
        known: Set[Fact] = set(base_facts)
        base_snapshot = set(known)
        justifications: Dict[Fact, List[Tuple[str, FrozenSet[Fact]]]] = {}

        by_predicate: Dict[str, Set[Fact]] = {}
        for entry in known:
            by_predicate.setdefault(entry[0], set()).add(entry)

        for stratum_rules in self._strata_of(rules):
            # Semi-naive iteration: after the first full round, a rule
            # only re-fires through bindings that touch at least one fact
            # derived in the previous round (the delta), so a transitive
            # closure costs O(edges x paths) instead of re-joining the
            # whole relation every round.
            delta_by_predicate: Dict[str, Set[Fact]] = dict(by_predicate)
            first_round = True
            while True:
                new_facts: Set[Fact] = set()
                for r in stratum_rules:
                    positive_positions = [
                        index
                        for index, literal in enumerate(r.body)
                        if not literal.negated
                    ]
                    if first_round or not positive_positions:
                        evaluations = [(None, self._satisfy(r.body, known, by_predicate))]
                    else:
                        evaluations = [
                            (
                                position,
                                self._satisfy(
                                    r.body,
                                    known,
                                    by_predicate,
                                    delta_by_predicate,
                                    position,
                                ),
                            )
                            for position in positive_positions
                        ]
                    for _position, matches in evaluations:
                        for binding, support in matches:
                            derived = self._substitute(r.head, binding)
                            if derived not in known and derived not in new_facts:
                                new_facts.add(derived)
                            if derived not in base_snapshot:
                                justifications.setdefault(derived, [])
                                just = (r.name, frozenset(support))
                                if just not in justifications[derived]:
                                    justifications[derived].append(just)
                first_round = False
                if not new_facts:
                    break
                known |= new_facts
                delta_by_predicate = {}
                for entry in new_facts:
                    by_predicate.setdefault(entry[0], set()).add(entry)
                    delta_by_predicate.setdefault(entry[0], set()).add(entry)

        return known, known - base_snapshot, justifications

    def _satisfy(
        self,
        body: Sequence[Literal],
        known: Set[Fact],
        by_predicate: Dict[str, Set[Fact]],
        delta_by_predicate: Optional[Dict[str, Set[Fact]]] = None,
        delta_position: Optional[int] = None,
    ) -> Iterable[Tuple[Dict[Var, Any], List[Fact]]]:
        """All bindings satisfying a conjunctive body against ``known``.

        With ``delta_position`` set, the literal at that index matches
        only facts from ``delta_by_predicate`` (the semi-naive restriction).
        """

        def candidates_for(index: int, literal: Literal):
            if index == delta_position and delta_by_predicate is not None:
                return delta_by_predicate.get(literal.predicate, ())
            return by_predicate.get(literal.predicate, ())

        def extend(
            index: int, binding: Dict[Var, Any], support: List[Fact]
        ) -> Iterable[Tuple[Dict[Var, Any], List[Fact]]]:
            if index == len(body):
                yield dict(binding), list(support)
                return
            literal = body[index]
            if literal.negated:
                ground = self._substitute(literal, binding)
                if ground not in known:
                    yield from extend(index + 1, binding, support)
                return
            for candidate in candidates_for(index, literal):
                new_binding = self._unify(literal.terms, candidate[1], binding)
                if new_binding is not None:
                    support.append(candidate)
                    yield from extend(index + 1, new_binding, support)
                    support.pop()

        yield from extend(0, {}, [])

    @staticmethod
    def _unify(
        terms: Tuple[Any, ...], args: Tuple[Any, ...], binding: Dict[Var, Any]
    ) -> Optional[Dict[Var, Any]]:
        if len(terms) != len(args):
            return None
        out = dict(binding)
        for term, arg in zip(terms, args):
            if isinstance(term, Var):
                bound = out.get(term, _UNBOUND)
                if bound is _UNBOUND:
                    out[term] = arg
                elif bound != arg:
                    return None
            elif term != arg:
                return None
        return out

    @staticmethod
    def _substitute(literal: Literal, binding: Dict[Var, Any]) -> Fact:
        args = tuple(
            binding[t] if isinstance(t, Var) else t for t in literal.terms
        )
        return (literal.predicate, args)

    # -- goal-directed (backward-style) evaluation ------------------------------

    def relevant_predicates(self, goal: str) -> Set[str]:
        """Predicates the goal can depend on (rule-graph closure)."""
        rules_by_head: Dict[str, List[Rule]] = {}
        for r in self._rules:
            rules_by_head.setdefault(r.head.predicate, []).append(r)
        relevant: Set[str] = set()
        stack = [goal]
        while stack:
            predicate = stack.pop()
            if predicate in relevant:
                continue
            relevant.add(predicate)
            for r in rules_by_head.get(predicate, ()):
                for literal in r.body:
                    stack.append(literal.predicate)
        return relevant

    def ask(self, predicate: str, *pattern: Any) -> List[Tuple[Any, ...]]:
        """Goal-directed query: infer only what the goal can depend on.

        The relevance restriction (a light-weight magic-sets transform,
        [BANC86]'s "recursive query processing strategies") evaluates only
        rules whose head predicate the goal transitively references, over
        only the base facts of relevant predicates — so asking about one
        small predicate never materializes the whole model.  Semantics
        match :meth:`query`; the full fixpoint cache is left untouched.
        """
        relevant = self.relevant_predicates(predicate)
        rules = [r for r in self._rules if r.head.predicate in relevant]
        base = {entry for entry in self._base if entry[0] in relevant}
        if self.db is not None:
            base |= {
                entry for entry in self._mapped_facts() if entry[0] in relevant
            }
        known, _derived, _just = self._fixpoint(base, rules)
        out = []
        for pred, args in sorted(known, key=_fact_sort_key):
            if pred != predicate or len(args) != len(pattern):
                continue
            if all(
                wanted is None or isinstance(_term(wanted), Var) or wanted == got
                for wanted, got in zip(pattern, args)
            ):
                out.append(args)
        return out

    # -- queries --------------------------------------------------------------------------

    def query(self, predicate: str, *pattern: Any) -> List[Tuple[Any, ...]]:
        """All known facts matching a pattern (``None``/vars are wildcards)."""
        if not self._fresh:
            self.infer()
        out = []
        for pred, args in sorted(self._all_known, key=_fact_sort_key):
            if pred != predicate or len(args) != len(pattern):
                continue
            if all(
                wanted is None or isinstance(_term(wanted), Var) or wanted == got
                for wanted, got in zip(pattern, args)
            ):
                out.append(args)
        return out

    def holds(self, predicate: str, *args: Any) -> bool:
        """Backward-style ground query (over the forward fixpoint)."""
        if not self._fresh:
            self.infer()
        return fact(predicate, *args) in self._all_known

    def prove(self, predicate: str, *args: Any) -> Optional[List[str]]:
        """Goal-directed proof of a ground fact.

        Returns the chain of rule names justifying the goal (empty list
        for base facts), or None when unprovable.  Uses the recorded
        justifications, so it reflects the same semantics as :meth:`infer`.
        """
        if not self._fresh:
            self.infer()
        goal = fact(predicate, *args)
        if goal in self._base or (self._all_known - self._derived) >= {goal}:
            if goal in self._all_known and goal not in self._derived:
                return []
        if goal not in self._all_known:
            return None
        chain: List[str] = []
        current = goal
        seen: Set[Fact] = set()
        while current in self.justifications and current not in seen:
            seen.add(current)
            rule_name, support = self.justifications[current][0]
            chain.append(rule_name)
            next_derived = [f for f in support if f in self.justifications]
            if not next_derived:
                break
            current = next_derived[0]
        return chain

    # -- introspection ------------------------------------------------------------

    @property
    def base_fact_count(self) -> int:
        return len(self._base)

    @property
    def derived_fact_count(self) -> int:
        if not self._fresh:
            self.infer()
        return len(self._derived)

    _all_known: Set[Fact] = set()


_UNBOUND = object()


def _fact_sort_key(entry: Fact):
    pred, args = entry
    return (pred, tuple(repr(a) for a in args))
