"""kimdb DL: the complete database-language surface.

Section 3.1: "A conventional database language consists of three
components (or sublanguages): data definition language for specifying
the schema; query and data manipulation language for querying and
updating the database; and data control language for transaction
management, integrity control, authorization, and resource management.
All these facilities must be provided for object-oriented database
systems."

kimdb DL provides all three over one interpreter:

* **DDL** — ``CREATE CLASS``, ``ALTER CLASS`` (the [BANE87] taxonomy),
  ``DROP/RENAME CLASS``, ``CREATE/DROP INDEX`` (all three kinds),
  ``CREATE/DROP VIEW``;
* **DML** — ``INSERT``, ``UPDATE ... WHERE``, ``DELETE ... WHERE`` and
  ``SELECT`` (delegated to the OQL engine), with ``@n`` OID literals for
  references;
* **DCL** — ``BEGIN`` / ``COMMIT`` / ``ABORT``, ``CHECKPOINT``,
  ``GRANT`` / ``DENY`` (discretionary authorization).

Statements are ``;``-separated; :meth:`Interpreter.run_script` executes
a batch and returns the per-statement results.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..core.attribute import AttributeDef
from ..core.oid import OID
from ..errors import QuerySyntaxError
from ..evolution.changes import SchemaEvolution

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<float>-?\d+\.\d+)
  | (?P<oid>@\d+)
  | (?P<int>-?\d+)
  | (?P<string>'([^'\\]|\\.)*'|"([^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|<|>|\*)
  | (?P<punct>[(),.\[\]=;:])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:
        return "%s(%r)" % (self.kind, self.text)


def _tokenize(text: str) -> List[_Token]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QuerySyntaxError(
                "unexpected character %r at position %d" % (text[pos], pos)
            )
        kind = match.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, match.group()))
        pos = match.end()
    tokens.append(_Token("eof", ""))
    return tokens


class StatementResult:
    """Uniform result wrapper: what happened + any payload."""

    __slots__ = ("kind", "detail", "value")

    def __init__(self, kind: str, detail: str = "", value: Any = None) -> None:
        self.kind = kind
        self.detail = detail
        self.value = value

    def __repr__(self) -> str:
        return "<%s %s>" % (self.kind, self.detail)


class Interpreter:
    """Statement interpreter bound to one database."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        self.evolution = SchemaEvolution(db)
        self._txn = None

    # -- public API ---------------------------------------------------------

    def execute(self, statement: str) -> StatementResult:
        """Execute one statement and return its result."""
        self._tokens = _tokenize(statement)
        self._index = 0
        head = self._peek()
        if head.kind != "name":
            raise QuerySyntaxError("statement must start with a keyword")
        dispatch = {
            "create": self._create,
            "alter": self._alter,
            "drop": self._drop,
            "rename": self._rename,
            "insert": self._insert,
            "update": self._update,
            "delete": self._delete,
            "select": self._select,
            "begin": self._begin,
            "commit": self._commit,
            "abort": self._abort,
            "rollback": self._abort,
            "checkpoint": self._checkpoint,
            "grant": lambda: self._grant_or_deny(deny=False),
            "deny": lambda: self._grant_or_deny(deny=True),
            "describe": self._describe,
        }
        handler = dispatch.get(head.text.lower())
        if handler is None:
            raise QuerySyntaxError("unknown statement %r" % (head.text,))
        result = handler()
        self._expect_end()
        return result

    def run_script(self, script: str) -> List[StatementResult]:
        """Execute a ``;``-separated batch (comments with ``--``)."""
        results = []
        for statement in self._split(script):
            if statement.strip():
                results.append(self.execute(statement))
        return results

    @staticmethod
    def _split(script: str) -> List[str]:
        """Split on ';' outside string literals."""
        parts, current, quote = [], [], None
        for char in script:
            if quote:
                current.append(char)
                if char == quote:
                    quote = None
            elif char in "'\"":
                quote = char
                current.append(char)
            elif char == ";":
                parts.append("".join(current))
                current = []
            else:
                current.append(char)
        parts.append("".join(current))
        return parts

    # -- token helpers ---------------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _accept_kw(self, *words: str) -> Optional[str]:
        token = self._peek()
        if token.kind == "name" and token.text.lower() in words:
            self._advance()
            return token.text.lower()
        return None

    def _expect_kw(self, word: str) -> None:
        if self._accept_kw(word) is None:
            raise QuerySyntaxError(
                "expected %r, found %r" % (word.upper(), self._peek().text)
            )

    def _expect_name(self) -> str:
        token = self._peek()
        if token.kind != "name":
            raise QuerySyntaxError("expected a name, found %r" % (token.text,))
        return self._advance().text

    def _accept_punct(self, text: str) -> bool:
        token = self._peek()
        if token.kind == "punct" and token.text == text:
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> None:
        if not self._accept_punct(text):
            raise QuerySyntaxError(
                "expected %r, found %r" % (text, self._peek().text)
            )

    def _expect_end(self) -> None:
        self._accept_punct(";")
        if self._peek().kind != "eof":
            raise QuerySyntaxError(
                "unexpected trailing input at %r" % (self._peek().text,)
            )

    def _literal(self) -> Any:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return int(token.text)
        if token.kind == "float":
            self._advance()
            return float(token.text)
        if token.kind == "oid":
            self._advance()
            return OID(int(token.text[1:]))
        if token.kind == "string":
            self._advance()
            return token.text[1:-1].replace("\\'", "'").replace('\\"', '"')
        if token.kind == "name" and token.text.lower() in ("true", "false", "null"):
            self._advance()
            return {"true": True, "false": False, "null": None}[token.text.lower()]
        if self._accept_punct("["):
            values = []
            if not self._accept_punct("]"):
                values.append(self._literal())
                while self._accept_punct(","):
                    values.append(self._literal())
                self._expect_punct("]")
            return values
        raise QuerySyntaxError("expected a literal, found %r" % (token.text,))

    # -- DDL --------------------------------------------------------------------

    def _attribute_def(self) -> AttributeDef:
        name = self._expect_name()
        domain = self._expect_name()
        kwargs: Dict[str, Any] = {}
        while True:
            word = self._accept_kw(
                "multi", "required", "default", "composite", "exclusive", "dependent"
            )
            if word is None:
                break
            if word == "default":
                kwargs["default"] = self._literal()
            else:
                kwargs[word] = True
        return AttributeDef(name, domain, **kwargs)

    def _create(self) -> StatementResult:
        self._expect_kw("create")
        kind = self._accept_kw("class", "index", "view")
        if kind == "class":
            return self._create_class()
        if kind == "index":
            return self._create_index()
        if kind == "view":
            return self._create_view()
        raise QuerySyntaxError("CREATE expects CLASS, INDEX or VIEW")

    def _create_class(self) -> StatementResult:
        name = self._expect_name()
        supers = ["Object"]
        if self._accept_kw("under"):
            supers = [self._expect_name()]
            while self._accept_punct(","):
                supers.append(self._expect_name())
        attributes = []
        if self._accept_punct("("):
            if not self._accept_punct(")"):
                attributes.append(self._attribute_def())
                while self._accept_punct(","):
                    attributes.append(self._attribute_def())
                self._expect_punct(")")
        abstract = self._accept_kw("abstract") is not None
        self.db.define_class(
            name, superclasses=supers, attributes=attributes, abstract=abstract
        )
        return StatementResult("class-created", name)

    def _create_index(self) -> StatementResult:
        explicit_name = None
        if not self._accept_kw("on"):
            explicit_name = self._expect_name()
            self._expect_kw("on")
        class_name = self._expect_name()
        self._expect_punct("(")
        path = [self._expect_name()]
        while self._accept_punct("."):
            path.append(self._expect_name())
        self._expect_punct(")")
        scope = self._accept_kw("hierarchy", "class") or "hierarchy"
        if len(path) > 1:
            index = self.db.create_nested_index(class_name, path, explicit_name)
        elif scope == "class":
            index = self.db.create_class_index(class_name, path[0], explicit_name)
        else:
            index = self.db.create_hierarchy_index(class_name, path[0], explicit_name)
        return StatementResult("index-created", index.name, index)

    def _create_view(self) -> StatementResult:
        if self.db.views is None:
            raise QuerySyntaxError("views are not attached to this database")
        name = self._expect_name()
        self._expect_kw("as")
        # Everything after AS is the view's OQL text.
        rest = self._remaining_text()
        view = self.db.views.define_view(name, rest)
        return StatementResult("view-created", view.name, view)

    def _remaining_text(self) -> str:
        """Consume the rest of the statement as raw text (for OQL)."""
        parts: List[str] = []
        while self._peek().kind != "eof":
            token = self._advance()
            if token.kind == "punct" and token.text == ";":
                break
            parts.append(token.text)
        return self._join_tokens(parts)

    @staticmethod
    def _join_tokens(parts: List[str]) -> str:
        """Re-assemble token texts, keeping dotted paths glued together."""
        out: List[str] = []
        for text in parts:
            if text == "." or (out and out[-1].endswith(".")):
                if out:
                    out[-1] += text
                else:
                    out.append(text)
            else:
                out.append(text)
        return " ".join(out)

    def _alter(self) -> StatementResult:
        self._expect_kw("alter")
        self._expect_kw("class")
        class_name = self._expect_name()
        action = self._accept_kw("add", "drop", "rename")
        if action == "add":
            what = self._accept_kw("attribute", "superclass")
            if what == "attribute":
                attr = self._attribute_def()
                self.evolution.add_attribute(class_name, attr)
                return StatementResult("attribute-added", "%s.%s" % (class_name, attr.name))
            if what == "superclass":
                superclass = self._expect_name()
                self.evolution.add_superclass(class_name, superclass)
                return StatementResult("superclass-added", superclass)
        elif action == "drop":
            what = self._accept_kw("attribute", "superclass")
            if what == "attribute":
                attr_name = self._expect_name()
                self.evolution.drop_attribute(class_name, attr_name)
                return StatementResult("attribute-dropped", attr_name)
            if what == "superclass":
                superclass = self._expect_name()
                self.evolution.drop_superclass(class_name, superclass)
                return StatementResult("superclass-dropped", superclass)
        elif action == "rename":
            self._expect_kw("attribute")
            old = self._expect_name()
            self._expect_kw("to")
            new = self._expect_name()
            count = self.evolution.rename_attribute(class_name, old, new)
            return StatementResult("attribute-renamed", "%s -> %s" % (old, new), count)
        raise QuerySyntaxError("ALTER CLASS expects ADD/DROP/RENAME")

    def _drop(self) -> StatementResult:
        self._expect_kw("drop")
        kind = self._accept_kw("class", "index", "view")
        if kind == "class":
            name = self._expect_name()
            migrate_to = None
            if self._accept_kw("migrate"):
                self._expect_kw("to")
                migrate_to = self._expect_name()
            count = self.evolution.drop_class(name, migrate_to)
            return StatementResult("class-dropped", name, count)
        if kind == "index":
            name = self._expect_name()
            self.db.indexes.drop_index(name)
            return StatementResult("index-dropped", name)
        if kind == "view":
            if self.db.views is None:
                raise QuerySyntaxError("views are not attached to this database")
            name = self._expect_name()
            self.db.views.drop_view(name)
            return StatementResult("view-dropped", name)
        raise QuerySyntaxError("DROP expects CLASS, INDEX or VIEW")

    def _rename(self) -> StatementResult:
        self._expect_kw("rename")
        self._expect_kw("class")
        old = self._expect_name()
        self._expect_kw("to")
        new = self._expect_name()
        count = self.evolution.rename_class(old, new)
        return StatementResult("class-renamed", "%s -> %s" % (old, new), count)

    # -- DML --------------------------------------------------------------------

    def _assignments(self) -> Dict[str, Any]:
        values: Dict[str, Any] = {}
        while True:
            name = self._expect_name()
            self._expect_punct("=")
            values[name] = self._literal()
            if not self._accept_punct(","):
                break
        return values

    def _insert(self) -> StatementResult:
        self._expect_kw("insert")
        self._accept_kw("into")
        class_name = self._expect_name()
        values: Dict[str, Any] = {}
        if self._accept_kw("set"):
            values = self._assignments()
        handle = self.db.new(class_name, values)
        return StatementResult("inserted", repr(handle.oid), handle)

    def _where_tail(self, class_name: str, variable: str = "x") -> List[OID]:
        """Parse an optional WHERE tail by delegating to the OQL engine."""
        rest = self._remaining_text()
        query = "SELECT %s FROM %s %s" % (variable, class_name, variable)
        if rest:
            query += " " + self._requalify(rest, variable)
        return [h.oid for h in self.db.select(query)]

    @staticmethod
    def _requalify(where_text: str, variable: str) -> str:
        """Prefix bare identifiers in a WHERE tail with the variable."""
        keywords = {
            "where", "and", "or", "not", "in", "like", "null", "true",
            "false", "contains", "order", "by", "asc", "desc", "limit",
        }
        token_re = re.compile(r"'[^']*'|\"[^\"]*\"|[A-Za-z_][\w.]*|\S")
        out, pos = [], 0
        for match in token_re.finditer(where_text):
            out.append(where_text[pos : match.start()])
            token = match.group()
            if (
                (token[0].isalpha() or token[0] == "_")
                and token.lower() not in keywords
                and not token.startswith(variable + ".")
            ):
                out.append("%s.%s" % (variable, token))
            else:
                out.append(token)
            pos = match.end()
        out.append(where_text[pos:])
        return "".join(out)

    def _update(self) -> StatementResult:
        self._expect_kw("update")
        class_name = self._expect_name()
        self._expect_kw("set")
        changes = self._assignments()
        oids = self._where_tail(class_name)
        for oid in oids:
            self.db.update(oid, dict(changes))
        return StatementResult("updated", "%d objects" % len(oids), len(oids))

    def _delete(self) -> StatementResult:
        self._expect_kw("delete")
        self._accept_kw("from")
        class_name = self._expect_name()
        oids = self._where_tail(class_name)
        for oid in oids:
            self.db.delete(oid)
        return StatementResult("deleted", "%d objects" % len(oids), len(oids))

    def _select(self) -> StatementResult:
        # The whole statement is OQL; re-assemble and delegate.
        text = self._statement_text()
        result = self.db.execute(text)
        self._index = len(self._tokens) - 1  # consume everything
        if result.rows is not None:
            return StatementResult("rows", "%d rows" % len(result.rows), result.rows)
        handles = [self.db.get(oid) for oid in result.oids]
        return StatementResult("objects", "%d objects" % len(handles), handles)

    def _statement_text(self) -> str:
        parts = []
        for token in self._tokens[self._index : -1]:
            if token.kind == "punct" and token.text == ";":
                break
            parts.append(token.text)
        return self._join_tokens(parts)

    # -- DCL --------------------------------------------------------------------

    def _begin(self) -> StatementResult:
        self._expect_kw("begin")
        self._accept_kw("transaction")
        self._txn = self.db.transaction()
        return StatementResult("transaction-started", str(self._txn.txn_id))

    def _commit(self) -> StatementResult:
        self._expect_kw("commit")
        if self._txn is None or not self._txn.is_active:
            raise QuerySyntaxError("no active transaction")
        self._txn.commit()
        self._txn = None
        return StatementResult("committed")

    def _abort(self) -> StatementResult:
        self._accept_kw("abort", "rollback")
        if self._txn is None or not self._txn.is_active:
            raise QuerySyntaxError("no active transaction")
        self._txn.abort()
        self._txn = None
        return StatementResult("aborted")

    def _checkpoint(self) -> StatementResult:
        self._expect_kw("checkpoint")
        self.db.checkpoint()
        return StatementResult("checkpointed")

    def _grant_or_deny(self, deny: bool) -> StatementResult:
        self._accept_kw("grant", "deny")
        if self.db.authz is None:
            raise QuerySyntaxError("authorization is not attached to this database")
        action = self._expect_name().lower()
        self._expect_kw("on")
        resource: Any = self._expect_name()
        if resource.lower() == "database":
            resource = "database"
        self._expect_kw("to")
        role = self._expect_name()
        if deny:
            self.db.authz.deny(role, action, resource)
            return StatementResult("denied", "%s on %s to %s" % (action, resource, role))
        self.db.authz.grant(role, action, resource)
        return StatementResult("granted", "%s on %s to %s" % (action, resource, role))

    # -- introspection ---------------------------------------------------------------

    def _describe(self) -> StatementResult:
        self._expect_kw("describe")
        name = self._expect_name()
        from ..tools.browser import describe_class

        return StatementResult("description", name, describe_class(self.db, name))
