"""kimdb DL: the unified DDL/DML/DCL database language (Section 3.1)."""

from .ddl import Interpreter, StatementResult

__all__ = ["Interpreter", "StatementResult"]
