"""EXPLAIN ANALYZE: plan trees annotated from live operator counters.

The planner's :class:`~repro.query.planner.Plan` records *what* it
chose (access path, residual, cost estimate); a timed execution leaves
actual row counts and wall-clock on the physical operators themselves
(:mod:`repro.query.operators`).  :func:`operator_tree` reads those
counters off the executed pipeline into a :class:`PlanNode` tree — no
separate annotation pass instruments the run.  ``Database.explain(query)``
returns the :class:`ExplainResult`: structured data (``.tree``) for
tools and a rendered string (``.render()``) for humans, closing the
Section 2.2 feedback loop between the optimizer's estimates and
observed work.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class PlanNode:
    """One pipeline stage of a plan, annotated with estimates + actuals."""

    __slots__ = ("op", "detail", "estimated_rows", "actual_rows", "actual_seconds", "meta", "children")

    def __init__(
        self,
        op: str,
        detail: str = "",
        estimated_rows: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.op = op
        self.detail = detail
        self.estimated_rows = estimated_rows
        self.actual_rows: Optional[int] = None
        self.actual_seconds: Optional[float] = None
        self.meta = meta or {}
        self.children: List["PlanNode"] = []

    def add(self, child: "PlanNode") -> "PlanNode":
        self.children.append(child)
        return child

    def annotate(self, rows: Optional[int] = None, seconds: Optional[float] = None) -> None:
        if rows is not None:
            self.actual_rows = (self.actual_rows or 0) + rows
        if seconds is not None:
            self.actual_seconds = (self.actual_seconds or 0.0) + seconds

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": self.op, "detail": self.detail}
        if self.estimated_rows is not None:
            out["estimated_rows"] = self.estimated_rows
        if self.actual_rows is not None:
            out["actual_rows"] = self.actual_rows
        if self.actual_seconds is not None:
            out["actual_seconds"] = self.actual_seconds
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def render(self, depth: int = 0) -> str:
        parts = []
        if self.estimated_rows is not None:
            parts.append("est=%.1f" % self.estimated_rows)
        if self.actual_rows is not None:
            parts.append("rows=%d" % self.actual_rows)
        if self.actual_seconds is not None:
            parts.append("time=%.3fms" % (self.actual_seconds * 1e3))
        parts.extend("%s=%s" % kv for kv in sorted(self.meta.items()))
        annotation = " (%s)" % " ".join(parts) if parts else ""
        prefix = "%s-> " % ("  " * depth) if depth else ""
        detail = " [%s]" % self.detail if self.detail else ""
        lines = ["%s%s%s%s" % (prefix, self.op, detail, annotation)]
        lines.extend(child.render(depth + 1) for child in self.children)
        return "\n".join(lines)

    def find(self, op: str) -> Optional["PlanNode"]:
        """First node with the given op, depth-first from this node."""
        if self.op == op:
            return self
        for child in self.children:
            found = child.find(op)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:
        return "<PlanNode %s rows=%r>" % (self.op, self.actual_rows)


def operator_tree(plan, pipeline) -> PlanNode:
    """The executed pipeline's live counters as a PlanNode tree.

    Reads ``rows_out``/``elapsed`` straight off the physical operators
    (the pipeline must have run, normally timed).  Per-node seconds are
    *exclusive* — an operator's inclusive clock minus its input's — so
    stages add up to the root's total.  Imported lazily where needed so
    the query layer stays importable without obs loaded first.
    """
    from ..query.planner import (
        AdtIndexProbe,
        EmptyScan,
        ExtentScan,
        IndexEqProbe,
        IndexInProbe,
        IndexOrderScan,
        IndexRangeProbe,
        SystemScan,
    )

    query = plan.query
    root = PlanNode(
        "query",
        "%s%s" % (query.target_class, "" if query.hierarchy else " (ONLY)"),
        estimated_rows=plan.estimated_cost,
        meta={"scope": ",".join(sorted(plan.scope))},
    )
    root.annotate(rows=pipeline.root.rows_out, seconds=pipeline.root.elapsed)

    access = plan.access
    if isinstance(access, ExtentScan):
        op, access_kind = "extent-scan", "scan"
    elif isinstance(access, EmptyScan):
        op, access_kind = "empty-scan", "empty"
    elif isinstance(access, IndexEqProbe):
        op, access_kind = "index-eq-probe", "index"
    elif isinstance(access, IndexInProbe):
        op, access_kind = "index-in-probe", "index"
    elif isinstance(access, IndexRangeProbe):
        op, access_kind = "index-range-probe", "index"
    elif isinstance(access, AdtIndexProbe):
        op, access_kind = "adt-index-probe", "index"
    elif isinstance(access, IndexOrderScan):
        op, access_kind = "index-order-scan", "index-order"
    elif isinstance(access, SystemScan):
        op, access_kind = "system-scan", "system"
    else:  # future access paths degrade gracefully
        op, access_kind = type(access).__name__, "unknown"
    source = pipeline.source
    access_node = root.add(
        PlanNode(
            op,
            access.description,
            estimated_rows=plan.estimated_cost,
            meta={"access": access_kind},
        )
    )
    access_node.annotate(rows=source.rows_out, seconds=source.elapsed)
    if pipeline.probe is not None:
        access_node.meta["probe_rows"] = pipeline.probe.rows_out

    def stage(node_op: str, detail: str, operator) -> None:
        node = root.add(PlanNode(node_op, detail))
        upstream = operator.child.elapsed if operator.child is not None else 0.0
        node.annotate(
            rows=operator.rows_out,
            seconds=max(0.0, operator.elapsed - upstream),
        )

    if query.where is not None and pipeline.filter is not None:
        stage("filter", repr(query.where), pipeline.filter)
    if pipeline.aggregate is not None:
        stage("aggregate", pipeline.aggregate.detail, pipeline.aggregate)
    if pipeline.sort is not None:
        stage("sort", pipeline.sort.detail, pipeline.sort)
    if pipeline.limit is not None:
        stage("limit", pipeline.limit.detail, pipeline.limit)
    if pipeline.project is not None:
        stage("project", pipeline.project.detail, pipeline.project)
    return root


class ExplainResult:
    """What ``Database.explain`` returns: tree + stats + rendering."""

    def __init__(
        self, plan, root: PlanNode, result, diagnostics=None, querystats=None
    ) -> None:
        self.plan = plan
        self.root = root
        self.result = result
        #: The :class:`~repro.analysis.diagnostics.DiagnosticReport` from
        #: the semantic-analysis pass (None when analysis was skipped).
        self.diagnostics = diagnostics
        #: The query's accumulated SysQueryStat entry (duck-typed
        #: :class:`~repro.obs.querystats.QueryStatEntry` or None): the
        #: observed-rows side of the ``-- cost --`` section.
        self.querystats = querystats

    @property
    def tree(self) -> Dict[str, Any]:
        """The annotated plan as plain nested dicts (JSON-ready)."""
        return self.root.to_dict()

    def render(self) -> str:
        stats = self.result.stats
        lines = [self.plan.explain(), "-- execution --"]
        lines.append("objects examined: %d" % stats.examined)
        lines.append("objects matched: %d" % stats.matched)
        lines.append("index probes: %d" % stats.index_probes)
        if self.plan.estimated_cost:
            lines.append(
                "estimate accuracy: %.2fx (examined/estimated)"
                % (stats.examined / self.plan.estimated_cost)
            )
        lines.append("-- plan --")
        lines.append(self.root.render())
        lines.extend(self._cost_lines())
        rewrite = getattr(self.plan, "rewrite", None)
        if rewrite is not None and (rewrite.rules or getattr(self.plan, "cached", False)):
            lines.append("-- rewrite --")
            if getattr(self.plan, "cached", False):
                lines.append("plan cache: hit")
            for name, detail in rewrite.rules:
                lines.append("%s: %s" % (name, detail) if detail else name)
        if self.diagnostics is not None and len(self.diagnostics):
            lines.append("-- analysis --")
            lines.append(self.diagnostics.render())
        return "\n".join(lines)

    def _cost_lines(self) -> List[str]:
        """The ``-- cost --`` section: the decision, every candidate's
        pages/rows totals, and estimated vs. SysQueryStat-observed rows."""
        decision = getattr(self.plan, "cost", None)
        lines = ["-- cost --"]
        if decision is None:
            lines.append(
                "model: heuristic (no ANALYZE statistics — run "
                "Database.analyze() to enable cost-based choices)"
            )
        elif decision.mode == "statistics":
            lines.append(
                "model: statistics (ANALYZE schema v%d, index epoch %d)"
                % (decision.schema_version, decision.index_epoch)
            )
            for candidate in decision.candidates:
                marker = "  <- chosen" if candidate.chosen else ""
                lines.append("candidate %s%s" % (candidate.describe(), marker))
            lines.append("estimated rows: %.1f" % decision.estimated_rows)
        else:
            lines.append("model: heuristic (%s)" % decision.reason)
            if decision.stale_reason is not None:
                lines.append(
                    "WARNING: statistics are stale (%s) — costing fell "
                    "back to live-count heuristics; re-run "
                    "Database.analyze()" % decision.stale_reason
                )
        entry = self.querystats
        if entry is not None and entry.calls:
            avg_examined = entry.rows_examined / float(entry.calls)
            avg_matched = entry.rows_matched / float(entry.calls)
            lines.append(
                "observed (SysQueryStat, %d call(s)): avg examined %.1f, "
                "avg matched %.1f" % (entry.calls, avg_examined, avg_matched)
            )
            if (
                decision is not None
                and decision.mode == "statistics"
                and avg_matched > 0
            ):
                lines.append(
                    "estimated/observed rows: %.2fx"
                    % (decision.estimated_rows / avg_matched)
                )
        return lines

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return "<ExplainResult %s rows=%r>" % (
            self.plan.access.description,
            self.root.actual_rows,
        )
