"""EXPLAIN ANALYZE: annotated plan trees with per-node actuals.

The planner's :class:`~repro.query.planner.Plan` already records *what*
it chose (access path, residual, cost estimate); this module turns that
choice into a tree of :class:`PlanNode` pipeline stages, and the
executor — when run in analyze mode — records per-node produced rows and
elapsed time.  ``Database.explain(query)`` returns the
:class:`ExplainResult`: structured data (``.tree``) for tools and a
rendered string (``.render()``) for humans, closing the Section 2.2
feedback loop between the optimizer's estimates and observed work.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class PlanNode:
    """One pipeline stage of a plan, annotated with estimates + actuals."""

    __slots__ = ("op", "detail", "estimated_rows", "actual_rows", "actual_seconds", "meta", "children")

    def __init__(
        self,
        op: str,
        detail: str = "",
        estimated_rows: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.op = op
        self.detail = detail
        self.estimated_rows = estimated_rows
        self.actual_rows: Optional[int] = None
        self.actual_seconds: Optional[float] = None
        self.meta = meta or {}
        self.children: List["PlanNode"] = []

    def add(self, child: "PlanNode") -> "PlanNode":
        self.children.append(child)
        return child

    def annotate(self, rows: Optional[int] = None, seconds: Optional[float] = None) -> None:
        if rows is not None:
            self.actual_rows = (self.actual_rows or 0) + rows
        if seconds is not None:
            self.actual_seconds = (self.actual_seconds or 0.0) + seconds

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": self.op, "detail": self.detail}
        if self.estimated_rows is not None:
            out["estimated_rows"] = self.estimated_rows
        if self.actual_rows is not None:
            out["actual_rows"] = self.actual_rows
        if self.actual_seconds is not None:
            out["actual_seconds"] = self.actual_seconds
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def render(self, depth: int = 0) -> str:
        parts = []
        if self.estimated_rows is not None:
            parts.append("est=%.1f" % self.estimated_rows)
        if self.actual_rows is not None:
            parts.append("rows=%d" % self.actual_rows)
        if self.actual_seconds is not None:
            parts.append("time=%.3fms" % (self.actual_seconds * 1e3))
        parts.extend("%s=%s" % kv for kv in sorted(self.meta.items()))
        annotation = " (%s)" % " ".join(parts) if parts else ""
        prefix = "%s-> " % ("  " * depth) if depth else ""
        detail = " [%s]" % self.detail if self.detail else ""
        lines = ["%s%s%s%s" % (prefix, self.op, detail, annotation)]
        lines.extend(child.render(depth + 1) for child in self.children)
        return "\n".join(lines)

    def find(self, op: str) -> Optional["PlanNode"]:
        """First node with the given op, depth-first from this node."""
        if self.op == op:
            return self
        for child in self.children:
            found = child.find(op)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:
        return "<PlanNode %s rows=%r>" % (self.op, self.actual_rows)


def build_plan_tree(plan) -> "ExplainContext":
    """Annotate a :class:`~repro.query.planner.Plan` as a PlanNode tree.

    Imported lazily by the planner/executor so the query layer stays
    importable without the obs package being loaded first.
    """
    from ..query.planner import (
        AdtIndexProbe,
        ExtentScan,
        IndexEqProbe,
        IndexInProbe,
        IndexRangeProbe,
    )

    query = plan.query
    root = PlanNode(
        "query",
        "%s%s" % (query.target_class, "" if query.hierarchy else " (ONLY)"),
        estimated_rows=plan.estimated_cost,
        meta={"scope": ",".join(sorted(plan.scope))},
    )
    nodes: Dict[str, PlanNode] = {"query": root}

    access = plan.access
    if isinstance(access, ExtentScan):
        op, access_kind = "extent-scan", "scan"
    elif isinstance(access, IndexEqProbe):
        op, access_kind = "index-eq-probe", "index"
    elif isinstance(access, IndexInProbe):
        op, access_kind = "index-in-probe", "index"
    elif isinstance(access, IndexRangeProbe):
        op, access_kind = "index-range-probe", "index"
    elif isinstance(access, AdtIndexProbe):
        op, access_kind = "adt-index-probe", "index"
    else:  # future access paths degrade gracefully
        op, access_kind = type(access).__name__, "unknown"
    nodes["access"] = root.add(
        PlanNode(
            op,
            access.description,
            estimated_rows=plan.estimated_cost,
            meta={"access": access_kind},
        )
    )

    if query.where is not None:
        nodes["filter"] = root.add(PlanNode("filter", repr(query.where)))
    if query.aggregates:
        detail = ", ".join(a.label() for a in query.aggregates)
        if query.group_by is not None:
            detail += " group by %s" % query.group_by.dotted()
        nodes["aggregate"] = root.add(PlanNode("aggregate", detail))
    else:
        if query.order_by is not None:
            detail = "%s%s" % (
                query.order_by.dotted(),
                " desc" if query.descending else "",
            )
        else:
            detail = "oid"
        nodes["sort"] = root.add(PlanNode("sort", detail))
        if query.limit is not None:
            nodes["limit"] = root.add(PlanNode("limit", str(query.limit)))
        if query.projections is not None:
            detail = ", ".join(p.dotted() for p in query.projections)
            nodes["project"] = root.add(PlanNode("project", detail))
    return ExplainContext(root, nodes)


class ExplainContext:
    """Carries the PlanNode tree through an analyzed execution.

    The executor calls :meth:`instrument` to wrap its candidate iterator
    (per-``next`` timing + row counts), :meth:`timed` around whole
    phases, and :meth:`annotate` for plain row counts — all no-ops for
    nodes the plan does not have.
    """

    def __init__(self, root: PlanNode, nodes: Dict[str, PlanNode]) -> None:
        self.root = root
        self.nodes = nodes
        #: Semantic-analysis report for the query, attached by Database
        #: so EXPLAIN output can surface warnings and pruning facts.
        self.report = None
        self._clock = time.perf_counter

    def node(self, key: str) -> Optional[PlanNode]:
        return self.nodes.get(key)

    def annotate(self, key: str, rows: Optional[int] = None, seconds: Optional[float] = None) -> None:
        node = self.nodes.get(key)
        if node is not None:
            node.annotate(rows, seconds)

    @contextmanager
    def timed(self, key: str) -> Iterator[None]:
        start = self._clock()
        try:
            yield
        finally:
            self.annotate(key, seconds=self._clock() - start)

    def instrument(self, key: str, iterator: Iterator[Any]) -> Iterator[Any]:
        """Count and time each item the wrapped iterator produces."""
        node = self.nodes.get(key)
        if node is None:
            for item in iterator:
                yield item
            return
        node.actual_rows = node.actual_rows or 0
        node.actual_seconds = node.actual_seconds or 0.0
        clock = self._clock
        while True:
            start = clock()
            try:
                item = next(iterator)
            except StopIteration:
                node.actual_seconds += clock() - start
                return
            node.actual_seconds += clock() - start
            node.actual_rows += 1
            yield item


class ExplainResult:
    """What ``Database.explain`` returns: tree + stats + rendering."""

    def __init__(self, plan, root: PlanNode, result, diagnostics=None) -> None:
        self.plan = plan
        self.root = root
        self.result = result
        #: The :class:`~repro.analysis.diagnostics.DiagnosticReport` from
        #: the semantic-analysis pass (None when analysis was skipped).
        self.diagnostics = diagnostics

    @property
    def tree(self) -> Dict[str, Any]:
        """The annotated plan as plain nested dicts (JSON-ready)."""
        return self.root.to_dict()

    def render(self) -> str:
        stats = self.result.stats
        lines = [self.plan.explain(), "-- execution --"]
        lines.append("objects examined: %d" % stats.examined)
        lines.append("objects matched: %d" % stats.matched)
        lines.append("index probes: %d" % stats.index_probes)
        if self.plan.estimated_cost:
            lines.append(
                "estimate accuracy: %.2fx (examined/estimated)"
                % (stats.examined / self.plan.estimated_cost)
            )
        lines.append("-- plan --")
        lines.append(self.root.render())
        if self.diagnostics is not None and len(self.diagnostics):
            lines.append("-- analysis --")
            lines.append(self.diagnostics.render())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return "<ExplainResult %s rows=%r>" % (
            self.plan.access.description,
            self.root.actual_rows,
        )
