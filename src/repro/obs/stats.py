"""ANALYZE-style class and index statistics for the planner.

``Database.analyze()`` walks every user class extent and every
secondary index and distills them into a :class:`StatisticsCatalog`:
per-class row counts and average encoded object size, per-index entry
and distinct-key counts plus an *equi-depth* value histogram (bucket
boundaries chosen so each bucket holds roughly the same number of index
entries — the classical selectivity-estimation structure, robust to
skew where equi-width is not).

The catalog is deliberately inert for now: it is persisted in the
storage catalog (``save_metadata``), reloaded on reopen, exposed as the
``SysClassStat`` / ``SysIndexStat`` system views, and handed to
``Planner.plan(..., stats=)`` as facts — the cost model that will
consume those facts for scan-vs-probe-vs-ordered-walk decisions is the
next ROADMAP item, not this module's job.

Like the query-fingerprint accumulator, a catalog describes one world:
it is stamped with the schema version and index epoch it was collected
under, and ``stale_reason()`` reports when either has moved on.

This module reaches only public engine APIs (``scan_class``,
``encode_object``, ``Index.tree.range``), so it can be reused against
any storage manager; the database imports it lazily (like sysviews) to
keep ``repro.obs`` importable without the storage package.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry

#: Target bucket count for equi-depth index histograms.
HISTOGRAM_BUCKETS = 16


def _plain(value: Any) -> Any:
    """A JSON-able stand-in for a histogram boundary or bound value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class ClassStat:
    """Row count and sizing for one class extent (direct instances)."""

    __slots__ = ("class_name", "rows", "total_bytes", "avg_bytes")

    def __init__(
        self, class_name: str, rows: int, total_bytes: int, avg_bytes: float
    ) -> None:
        self.class_name = class_name
        self.rows = rows
        self.total_bytes = total_bytes
        self.avg_bytes = avg_bytes

    def to_dict(self) -> Dict[str, Any]:
        return {
            "class_name": self.class_name,
            "rows": self.rows,
            "total_bytes": self.total_bytes,
            "avg_bytes": self.avg_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassStat":
        return cls(
            str(data["class_name"]),
            int(data["rows"]),
            int(data["total_bytes"]),
            float(data["avg_bytes"]),
        )

    def row(self) -> Dict[str, Any]:
        return self.to_dict()


class IndexStat:
    """Cardinality and value distribution of one secondary index.

    ``boundaries`` are the equi-depth bucket upper bounds over the
    index's normalized key payloads: ``boundaries[i]`` is the largest
    key in bucket ``i``, each bucket holding ~``entries / buckets``
    entries.  ``low``/``high`` are the extreme keys.  Boundaries are
    stored in display form (:func:`_plain`) because they must round-trip
    through the JSON catalog; the future cost model estimates range
    selectivity by counting covered buckets, which needs only ordering.
    """

    __slots__ = (
        "name",
        "kind",
        "target_class",
        "path",
        "entries",
        "distinct_keys",
        "boundaries",
        "depths",
        "low",
        "high",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        target_class: str,
        path: str,
        entries: int,
        distinct_keys: int,
        boundaries: List[Any],
        low: Any,
        high: Any,
        depths: Optional[List[int]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.target_class = target_class
        self.path = path
        self.entries = entries
        self.distinct_keys = distinct_keys
        self.boundaries = boundaries
        # Per-bucket entry counts, parallel to ``boundaries``.  Catalogs
        # persisted before depths existed load with an empty list; the
        # cost model then assumes uniform bucket depth.
        self.depths = list(depths) if depths else []
        self.low = low
        self.high = high

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target_class": self.target_class,
            "path": self.path,
            "entries": self.entries,
            "distinct_keys": self.distinct_keys,
            "boundaries": list(self.boundaries),
            "depths": list(self.depths),
            "low": self.low,
            "high": self.high,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "IndexStat":
        return cls(
            str(data["name"]),
            str(data["kind"]),
            str(data["target_class"]),
            str(data["path"]),
            int(data["entries"]),
            int(data["distinct_keys"]),
            list(data.get("boundaries", [])),
            data.get("low"),
            data.get("high"),
            depths=[int(d) for d in data.get("depths", [])],
        )

    def row(self) -> Dict[str, Any]:
        """One ``SysIndexStat`` row (histogram rendered as a string)."""
        return {
            "index": self.name,
            "kind": self.kind,
            "target": self.target_class,
            "path": self.path,
            "entries": self.entries,
            "distinct_keys": self.distinct_keys,
            "buckets": len(self.boundaries),
            "low": self.low,
            "high": self.high,
            "histogram": "|".join(str(b) for b in self.boundaries),
        }


class StatisticsCatalog:
    """One ANALYZE run's worth of class and index statistics."""

    def __init__(
        self,
        class_stats: Dict[str, ClassStat],
        index_stats: Dict[str, IndexStat],
        schema_version: int,
        index_epoch: int,
    ) -> None:
        self.class_stats = class_stats
        self.index_stats = index_stats
        self.schema_version = schema_version
        self.index_epoch = index_epoch

    # -- planner-facing reads ---------------------------------------------

    def class_rows(self, class_name: str) -> Optional[int]:
        stat = self.class_stats.get(class_name)
        return stat.rows if stat is not None else None

    def index_selectivity(self, index_name: str) -> Optional[float]:
        """Average fraction of entries matched by an equality probe."""
        stat = self.index_stats.get(index_name)
        if stat is None or stat.entries == 0 or stat.distinct_keys == 0:
            return None
        return 1.0 / stat.distinct_keys

    def stale_reason(self, schema_version: int, index_epoch: int) -> Optional[str]:
        """Why this catalog no longer describes the live engine, if so."""
        if schema_version != self.schema_version:
            return "schema version moved %d -> %d" % (
                self.schema_version,
                schema_version,
            )
        if index_epoch != self.index_epoch:
            return "index epoch moved %d -> %d" % (self.index_epoch, index_epoch)
        return None

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "index_epoch": self.index_epoch,
            "classes": [stat.to_dict() for stat in self.class_stats.values()],
            "indexes": [stat.to_dict() for stat in self.index_stats.values()],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StatisticsCatalog":
        class_stats = {}
        for item in data.get("classes", []):
            stat = ClassStat.from_dict(item)
            class_stats[stat.class_name] = stat
        index_stats = {}
        for item in data.get("indexes", []):
            stat = IndexStat.from_dict(item)
            index_stats[stat.name] = stat
        return cls(
            class_stats,
            index_stats,
            int(data.get("schema_version", 0)),
            int(data.get("index_epoch", 0)),
        )

    def class_rows_table(self) -> List[Dict[str, Any]]:
        """``SysClassStat`` rows, alphabetical."""
        return [
            self.class_stats[name].row() for name in sorted(self.class_stats)
        ]

    def index_rows_table(self) -> List[Dict[str, Any]]:
        """``SysIndexStat`` rows, alphabetical."""
        return [
            self.index_stats[name].row() for name in sorted(self.index_stats)
        ]

    def __repr__(self) -> str:
        return "<StatisticsCatalog %d classes, %d indexes, schema v%d>" % (
            len(self.class_stats),
            len(self.index_stats),
            self.schema_version,
        )


def equi_depth_histogram(
    key_counts: Iterable[Tuple[Any, int]], buckets: int = HISTOGRAM_BUCKETS
) -> Tuple[List[Any], List[int]]:
    """Equi-depth bucket upper bounds and depths from (key, count) pairs.

    ``key_counts`` must arrive in key order (as ``BTree.range`` yields).
    Each boundary is the key at which the cumulative entry count crosses
    the next 1/buckets quantile; the final boundary is always the
    maximum key, and boundaries never repeat, so heavy keys simply
    widen their bucket's depth rather than duplicating bounds.  The
    returned ``depths`` list is parallel to the boundaries: ``depths[i]``
    is the exact number of entries whose key falls in
    ``(boundaries[i-1], boundaries[i]]`` (first bucket: ``[low,
    boundaries[0]]``), so ``sum(depths) == total entries``.
    """
    ordered = list(key_counts)
    if not ordered:
        return [], []
    total = sum(count for _key, count in ordered)
    if total <= 0:
        return [], []
    boundaries: List[Any] = []
    depths: List[int] = []
    depth = total / float(buckets)
    threshold = depth
    cumulative = 0
    emitted = 0
    for key, count in ordered:
        cumulative += count
        if cumulative >= threshold:
            boundaries.append(_plain(key))
            depths.append(cumulative - emitted)
            emitted = cumulative
            while threshold <= cumulative:
                threshold += depth
    last = _plain(ordered[-1][0])
    if not boundaries or boundaries[-1] != last:
        boundaries.append(last)
        depths.append(cumulative - emitted)
    return boundaries, depths


def equi_depth_boundaries(
    key_counts: Iterable[Tuple[Any, int]], buckets: int = HISTOGRAM_BUCKETS
) -> List[Any]:
    """Just the bucket upper bounds of :func:`equi_depth_histogram`."""
    return equi_depth_histogram(key_counts, buckets)[0]


def collect_statistics(
    schema: Any,
    scan_class: Callable[[str], Iterator[Any]],
    indexes: Any,
    encoded_size: Callable[[Any], int],
    metrics: Optional[MetricsRegistry] = None,
    buckets: int = HISTOGRAM_BUCKETS,
) -> StatisticsCatalog:
    """One full ANALYZE pass over all user classes and indexes.

    ``scan_class`` yields direct-instance states for one class,
    ``encoded_size`` measures one state's stored footprint (the
    serializer's encoding, not Python object overhead).  Metrics land
    under ``analyze.*``.
    """
    registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
    m_runs = registry.counter("analyze.runs")
    m_classes = registry.counter("analyze.classes")
    m_rows = registry.counter("analyze.rows_scanned")
    m_indexes = registry.counter("analyze.indexes")
    m_keys = registry.counter("analyze.index_keys")

    class_stats: Dict[str, ClassStat] = {}
    for class_def in schema.user_classes():
        name = class_def.name
        rows = 0
        total_bytes = 0
        for state in scan_class(name):
            rows += 1
            total_bytes += encoded_size(state)
        class_stats[name] = ClassStat(
            name,
            rows,
            total_bytes,
            (total_bytes / float(rows)) if rows else 0.0,
        )
        m_classes.inc()
        m_rows.inc(rows)

    index_stats: Dict[str, IndexStat] = {}
    for index in indexes.all_indexes():
        entries = 0
        distinct = 0
        low: Any = None
        high: Any = None
        key_counts: List[Tuple[Any, int]] = []
        for key, key_entries in index.tree.range():
            count = len(key_entries)
            entries += count
            distinct += 1
            if low is None:
                low = key
            high = key
            key_counts.append((key, count))
        boundaries, depths = equi_depth_histogram(key_counts, buckets)
        index_stats[index.name] = IndexStat(
            index.name,
            index.kind,
            index.target_class,
            ".".join(index.path),
            entries,
            distinct,
            boundaries,
            _plain(low),
            _plain(high),
            depths=depths,
        )
        m_indexes.inc()
        m_keys.inc(distinct)

    m_runs.inc()
    return StatisticsCatalog(
        class_stats,
        index_stats,
        getattr(schema, "version", 0),
        getattr(indexes, "epoch", 0),
    )
