"""Export of observability data: JSON payloads and Prometheus text.

The benchmarks suite uses :func:`write_bench_artifact` to drop a
``BENCH_<name>.json`` next to the run — engine-internal counters
(buffer faults, lock waits, WAL flushes) alongside the measured series,
so a perf PR can diff artifacts instead of eyeballing stdout tables.
:func:`render_prometheus` renders the same registry in the Prometheus
text exposition format for scraping.

**Clock convention.**  Exported payloads carry exactly one wall-clock
field, ``generated_at`` (``time.time()``, seconds since the epoch) —
it says *when* the snapshot was taken.  Every *duration* field —
histogram sums, span ``elapsed``, slow-op thresholds, wait-event
seconds — comes from ``time.perf_counter`` instruments, which are
monotonic and immune to NTP steps; the payload states this in its
``duration_clock`` field.  The ``wall-clock-duration`` engine lint
enforces the split: ``time.time()`` in ``src/repro`` is flagged unless
the site marks a genuine timestamp with a pragma, as below.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import Tracer


def observability_payload(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One JSON-ready dict of everything the obs layer knows."""
    payload: Dict[str, Any] = {
        "generated_at": time.time(),  # lint: ignore[wall-clock-duration]
        "duration_clock": "perf_counter",
    }
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    if tracer is not None:
        payload["slow_ops"] = [op.to_dict() for op in tracer.slow_ops()]
        payload["spans"] = [span.to_dict() for span in tracer.roots()]
    if extra:
        payload.update(extra)
    return payload


def export_json(
    path: str,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Write an observability payload to ``path``; returns the path."""
    payload = observability_payload(registry, tracer, extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=repr)
        handle.write("\n")
    return path


def write_bench_artifact(
    name: str,
    data: Dict[str, Any],
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    directory: Optional[str] = None,
) -> str:
    """Emit ``BENCH_<name>.json`` for one benchmark run.

    ``data`` is the benchmark's own series (rows, timings, parameters);
    the engine's metric snapshot rides along under ``"metrics"``.
    """
    safe = "".join(ch if (ch.isalnum() or ch in "-_") else "_" for ch in name)
    path = os.path.join(directory or os.getcwd(), "BENCH_%s.json" % safe)
    return export_json(path, registry, tracer, extra={"bench": name, **data})


# -- Prometheus text exposition ---------------------------------------------


def _prom_name(name: str, prefix: str) -> str:
    safe = "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in name)
    return "%s_%s" % (prefix, safe) if prefix else safe


def _prom_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return repr(value)


def _escape_label_value(value: Any) -> str:
    """Escape a label value per the Prometheus text-format rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_histogram(
    lines: List[str], prom: str, histogram: Any, labels: str = ""
) -> None:
    """Append one histogram's ``_bucket``/``_sum``/``_count`` series.

    ``labels`` is a pre-rendered ``name="value"`` list (or empty); the
    ``le`` label is appended after it, as Prometheus convention puts the
    bucket bound last.
    """
    sep = "," if labels else ""
    cumulative = 0
    for i, bound in enumerate(histogram.bounds):
        cumulative += histogram.bucket_counts[i]
        lines.append(
            '%s_bucket{%s%sle="%g"} %d' % (prom, labels, sep, bound, cumulative)
        )
    lines.append(
        '%s_bucket{%s%sle="+Inf"} %d' % (prom, labels, sep, histogram.count)
    )
    braces = "{%s}" % labels if labels else ""
    lines.append("%s_sum%s %s" % (prom, braces, _prom_value(histogram.total)))
    lines.append("%s_count%s %d" % (prom, braces, histogram.count))


def render_prometheus(
    registry: MetricsRegistry, prefix: str = "kimdb", querystats: Any = None
) -> str:
    """The registry in Prometheus text exposition format.

    Counters render as ``<name>_total``, gauges plainly, histograms as
    cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``;
    derived metrics render as gauges.  Every instrument in the registry
    appears — the round-trip test parses this text back and compares it
    against :meth:`MetricsRegistry.snapshot`.

    ``querystats`` (a :class:`~repro.obs.querystats.QueryStats`) adds
    one labeled latency-histogram family,
    ``<prefix>_query_latency_seconds{fingerprint=...,target=...}``, so a
    scrape carries per-query-fingerprint latency distributions alongside
    the registry-wide instruments.
    """
    lines: List[str] = []
    for name in registry.names():
        prom = _prom_name(name, prefix)
        try:
            metric = registry.get(name)
        except Exception:
            metric = None  # derived: value only
        if isinstance(metric, Counter):
            lines.append("# TYPE %s_total counter" % prom)
            lines.append("%s_total %s" % (prom, _prom_value(metric.value)))
        elif isinstance(metric, Histogram):
            lines.append("# TYPE %s histogram" % prom)
            _render_histogram(lines, prom, metric)
        elif isinstance(metric, Gauge):
            lines.append("# TYPE %s gauge" % prom)
            lines.append("%s %s" % (prom, _prom_value(metric.value)))
        else:
            value = registry.value(name)
            lines.append("# TYPE %s gauge" % prom)
            lines.append("%s %s" % (prom, _prom_value(value)))
    if querystats is not None:
        entries = querystats.entries()
        if entries:
            family = _prom_name("query_latency_seconds", prefix)
            lines.append("# TYPE %s histogram" % family)
            for entry in entries:
                labels = 'fingerprint="%s",target="%s"' % (
                    _escape_label_value(entry.fingerprint),
                    _escape_label_value(entry.target),
                )
                _render_histogram(lines, family, entry.latency, labels)
    return "\n".join(lines) + "\n"
