"""JSON export of observability data.

The benchmarks suite uses :func:`write_bench_artifact` to drop a
``BENCH_<name>.json`` next to the run — engine-internal counters
(buffer faults, lock waits, WAL flushes) alongside the measured series,
so a perf PR can diff artifacts instead of eyeballing stdout tables.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional

from .metrics import MetricsRegistry
from .tracing import Tracer


def observability_payload(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One JSON-ready dict of everything the obs layer knows."""
    payload: Dict[str, Any] = {"generated_at": time.time()}
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    if tracer is not None:
        payload["slow_ops"] = [op.to_dict() for op in tracer.slow_ops()]
        payload["spans"] = [span.to_dict() for span in tracer.roots()]
    if extra:
        payload.update(extra)
    return payload


def export_json(
    path: str,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Write an observability payload to ``path``; returns the path."""
    payload = observability_payload(registry, tracer, extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=repr)
        handle.write("\n")
    return path


def write_bench_artifact(
    name: str,
    data: Dict[str, Any],
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    directory: Optional[str] = None,
) -> str:
    """Emit ``BENCH_<name>.json`` for one benchmark run.

    ``data`` is the benchmark's own series (rows, timings, parameters);
    the engine's metric snapshot rides along under ``"metrics"``.
    """
    safe = "".join(ch if (ch.isalnum() or ch in "-_") else "_" for ch in name)
    path = os.path.join(directory or os.getcwd(), "BENCH_%s.json" % safe)
    return export_json(path, registry, tracer, extra={"bench": name, **data})
