"""Per-query-fingerprint statistics: kimdb's ``pg_stat_statements``.

Every executed user query is keyed on the normalized-AST fingerprint
the rewrite pass computes for the plan cache (PR 7), so *structurally
equal* queries accumulate into one row regardless of how they were
spelled.  Each entry carries the counters the future cost model and the
clustering work need: call count, rows examined/matched, index probes,
plan-cache hits, snapshot plan downgrades, per-kind wait seconds and a
bucketed latency histogram whose p50/p95/p99 come straight off the
cumulative buckets.

The accumulator is written once per query at executor close (the
database facade's ``_execute`` and the streaming path's
``QueryStream.close``) and read three ways: the ``SysQueryStat`` system
view, the monitor front end (text panel and Prometheus labeled
histogram series) and the server ``stats`` op.

Invalidation contract (see DESIGN.md): accumulated statistics describe
one world.  A schema-epoch bump (``Schema.version``) or an index-epoch
bump (``IndexManager.epoch``) changes what a fingerprint *means* — the
same normalized AST may now plan differently — so either purges every
entry, counted under ``query.stats.invalidations``.  System-view
queries are never recorded: observing the observer must not perturb it.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry

#: How the wait-kind taxonomy rolls up into per-query wait columns.
WAIT_GROUPS = {
    "Lock": "lock_wait",
    "BufferRead": "io_wait",
    "BufferWrite": "io_wait",
    "PageRead": "io_wait",
    "PageWrite": "io_wait",
    "WALFlush": "wal_wait",
    "WALSync": "wal_wait",
}


class QueryStatEntry:
    """Accumulated statistics for one query fingerprint."""

    __slots__ = (
        "fingerprint",
        "target",
        "source",
        "calls",
        "rows_examined",
        "rows_matched",
        "index_probes",
        "plan_cache_hits",
        "snapshot_downgrades",
        "latency",
        "wait_seconds",
    )

    def __init__(
        self,
        fingerprint: str,
        target: str,
        source: Optional[str],
        bounds: Sequence[float],
    ) -> None:
        self.fingerprint = fingerprint
        self.target = target
        #: First query text seen for this fingerprint (display only;
        #: None for hand-built Query objects).
        self.source = source
        self.calls = 0
        self.rows_examined = 0
        self.rows_matched = 0
        self.index_probes = 0
        self.plan_cache_hits = 0
        self.snapshot_downgrades = 0
        self.latency = Histogram("query.stats.latency", bounds)
        #: Rolled-up wait seconds per group (lock_wait/io_wait/wal_wait).
        self.wait_seconds: Dict[str, float] = {}

    def row(self) -> Dict[str, Any]:
        """One ``SysQueryStat`` row (plain, wire-encodable values)."""
        latency = self.latency
        return {
            "fingerprint": self.fingerprint,
            "target": self.target,
            "source": self.source or "",
            "calls": self.calls,
            "rows_examined": self.rows_examined,
            "rows_matched": self.rows_matched,
            "index_probes": self.index_probes,
            "plan_cache_hits": self.plan_cache_hits,
            "snapshot_downgrades": self.snapshot_downgrades,
            "total_seconds": latency.total,
            "mean_seconds": latency.mean,
            "p50": latency.quantile(0.5),
            "p95": latency.quantile(0.95),
            "p99": latency.quantile(0.99),
            "lock_wait": self.wait_seconds.get("lock_wait", 0.0),
            "io_wait": self.wait_seconds.get("io_wait", 0.0),
            "wal_wait": self.wait_seconds.get("wal_wait", 0.0),
        }


class QueryStats:
    """The per-fingerprint accumulator, one per database.

    Thread-safe: server pool threads record concurrently while the
    monitor scans.  ``_querystats_mutex`` is a leaf in the engine lock
    lattice — nothing else is ever acquired while holding it, and it is
    taken only after the query's pipeline has closed.
    """

    #: Retained fingerprints; beyond this the coldest entry (fewest
    #: calls, oldest on ties) is evicted so an ad-hoc query storm cannot
    #: grow the accumulator without bound.
    DEFAULT_CAPACITY = 512

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        capacity: int = DEFAULT_CAPACITY,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.capacity = capacity
        self._bounds = tuple(bounds)
        self._querystats_mutex = threading.Lock()
        self._entries: Dict[str, QueryStatEntry] = {}
        #: The (schema epoch, index epoch) the current entries describe.
        self._epoch_token: Optional[Tuple[int, int]] = None
        registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self._m_recorded = registry.counter("query.stats.recorded")
        self._m_invalidations = registry.counter("query.stats.invalidations")
        self._m_evictions = registry.counter("query.stats.evictions")
        self._m_fingerprints = registry.gauge("query.stats.fingerprints")

    # -- recording ---------------------------------------------------------

    def record(
        self,
        fingerprint: str,
        target: str,
        source: Optional[str],
        seconds: float,
        examined: int,
        matched: int,
        index_probes: int,
        cache_hit: bool,
        downgraded: bool,
        waits: Optional[Dict[str, float]] = None,
        epoch_token: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Fold one finished query execution into its fingerprint's entry.

        ``waits`` maps raw wait kinds (``Lock``, ``BufferRead``, ...) to
        seconds blocked during this query, as captured by the wait
        profiler on the executing thread; kinds roll up per
        :data:`WAIT_GROUPS`.  ``epoch_token`` is the current
        (schema epoch, index epoch) pair — a change purges first.
        """
        with self._querystats_mutex:
            if epoch_token is not None and epoch_token != self._epoch_token:
                if self._entries:
                    self._m_invalidations.inc(len(self._entries))
                    self._entries.clear()
                self._epoch_token = epoch_token
            entry = self._entries.get(fingerprint)
            if entry is None:
                entry = QueryStatEntry(fingerprint, target, source, self._bounds)
                self._entries[fingerprint] = entry
            entry.calls += 1
            entry.rows_examined += examined
            entry.rows_matched += matched
            entry.index_probes += index_probes
            if cache_hit:
                entry.plan_cache_hits += 1
            if downgraded:
                entry.snapshot_downgrades += 1
            if entry.source is None and source is not None:
                entry.source = source
            entry.latency.observe(seconds)
            for kind, seconds_waited in (waits or {}).items():
                group = WAIT_GROUPS.get(kind)
                if group is None:
                    continue
                entry.wait_seconds[group] = (
                    entry.wait_seconds.get(group, 0.0) + seconds_waited
                )
            # Evict only after this call's counters folded in, so a new
            # fingerprint arriving at capacity (calls=1) outlives a
            # colder resident instead of evicting itself at calls=0.
            while len(self._entries) > self.capacity:
                coldest = min(
                    self._entries, key=lambda fp: self._entries[fp].calls
                )
                del self._entries[coldest]
                self._m_evictions.inc()
            self._m_fingerprints.set(len(self._entries))
        self._m_recorded.inc()

    # -- invalidation ------------------------------------------------------

    def on_schema_change(self, class_name: str) -> None:
        """``Schema.on_change`` listener: evolution purges everything.

        The epoch token is also dropped so the next :meth:`record`
        re-establishes it instead of double-counting the purge.
        """
        with self._querystats_mutex:
            if self._entries:
                self._m_invalidations.inc(len(self._entries))
                self._entries.clear()
            self._epoch_token = None
            self._m_fingerprints.set(0)

    def reset(self) -> None:
        with self._querystats_mutex:
            self._entries.clear()
            self._epoch_token = None
            self._m_fingerprints.set(0)

    # -- reading -----------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[QueryStatEntry]:
        with self._querystats_mutex:
            return self._entries.get(fingerprint)

    def entries(self) -> List[QueryStatEntry]:
        """Live entries, hottest (most calls) first."""
        with self._querystats_mutex:
            entries = list(self._entries.values())
        entries.sort(key=lambda e: (-e.calls, e.fingerprint))
        return entries

    def rows(self) -> List[Dict[str, Any]]:
        """``SysQueryStat`` rows, hottest first (fresh snapshot per scan)."""
        return [entry.row() for entry in self.entries()]

    def __len__(self) -> int:
        with self._querystats_mutex:
            return len(self._entries)

    def __repr__(self) -> str:
        return "<QueryStats %d fingerprints>" % len(self)
